"""Legacy setup shim: the sandbox lacks the ``wheel`` package, so editable
installs must go through ``setup.py develop`` (``pip install -e . --no-use-pep517``)."""

from setuptools import setup

setup()
