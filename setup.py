"""Legacy escape hatch for sandboxes without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; normal environments
(including CI) should use ``pip install -e .``.  Environments that cannot
install ``wheel`` (setuptools < 70.1 needs it to build PEP 660 editable
wheels) can fall back to::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
