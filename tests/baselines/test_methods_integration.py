"""Integration tests: every registered method runs end-to-end and behaves.

These are the workhorse tests of the reproduction: a tiny federation is
trained with every algorithm in the registry, checking accuracy sanity,
determinism, state-shape discipline, and method-specific invariants.
"""

import numpy as np
import pytest

from repro.data import make_cifar10_like, partition_dirichlet
from repro.eval import available_methods, build_method
from repro.fl import FederatedConfig, FederatedServer, build_federation
from repro.nn import MLPEncoder

NUM_CLASSES = 10
IMAGE_SIZE = 8
INPUT_DIM = 3 * IMAGE_SIZE * IMAGE_SIZE


def encoder_factory():
    return MLPEncoder(INPUT_DIM, hidden_dims=(24, 12), rng=np.random.default_rng(42))


def tiny_config(**overrides):
    defaults = dict(num_clients=4, clients_per_round=2, rounds=2, local_epochs=1,
                    batch_size=16, personalization_epochs=3, seed=0)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


def tiny_federation(config, seed=0):
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=24,
                                test_per_class=4, seed=seed)
    parts = partition_dirichlet(dataset.train.labels, config.num_clients, 0.5,
                                samples_per_client=40,
                                rng=np.random.default_rng(seed))
    return dataset, build_federation(dataset, parts, seed=seed)


def run_method(name, config=None, seed=0, **overrides):
    config = config if config is not None else tiny_config(seed=seed)
    dataset, clients = tiny_federation(config, seed=seed)
    algorithm = build_method(name, config, NUM_CLASSES, encoder_factory, **overrides)
    server = FederatedServer(algorithm, clients, config)
    return server.run()


ALL_METHODS = available_methods()
FAST_METHODS = [m for m in ALL_METHODS if not m.startswith(("calibre", "pfl"))]
SSL_METHODS = [m for m in ALL_METHODS if m.startswith(("calibre", "pfl"))]


class TestRegistry:
    def test_expected_methods_present(self):
        expected = {
            "fedavg", "fedavg-ft", "scaffold", "scaffold-ft", "lg-fedavg",
            "fedper", "fedrep", "fedbabu", "perfedavg", "apfl", "ditto",
            "fedema", "script-fair", "script-convergent",
            "pfl-simclr", "pfl-byol", "pfl-simsiam", "pfl-mocov2",
            "calibre-simclr", "calibre-byol", "calibre-swav", "calibre-smog",
        }
        assert expected <= set(ALL_METHODS)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            build_method("nope", tiny_config(), NUM_CLASSES, encoder_factory)

    def test_registry_count(self):
        # 14 non-SSL + 6 pfl-* + 6 calibre-* = 26 rows available.
        assert len(ALL_METHODS) == 26


@pytest.mark.parametrize("name", ALL_METHODS)
class TestEveryMethodRuns:
    def test_end_to_end(self, name):
        result = run_method(name)
        assert len(result.accuracies) == 4
        assert all(0.0 <= acc <= 1.0 for acc in result.accuracies.values())
        # Two tiny rounds cannot train every method well, but nothing should
        # sit below uniform 10-class chance.
        assert result.mean_accuracy > 0.05, (
            f"{name} mean accuracy {result.mean_accuracy:.3f} is below chance"
        )


@pytest.mark.parametrize("name", ["fedavg-ft", "fedrep", "calibre-simclr",
                                  "script-fair"])
class TestKeyMethodsLearn:
    def test_clearly_above_chance(self, name):
        # 4 rounds x 3 local epochs: enough for the SSL methods to clear
        # the bar with margin now that RandomSampler draws participants
        # purely from (seed, round_index) — the old stateful draw happened
        # to sample a friendlier sequence at 3x2.
        result = run_method(name, config=tiny_config(rounds=4, local_epochs=3))
        assert result.mean_accuracy > 0.3, (
            f"{name} mean accuracy {result.mean_accuracy:.3f} too low"
        )


@pytest.mark.parametrize("name", ["fedavg", "fedper", "calibre-simclr", "apfl"])
class TestDeterminism:
    def test_same_seed_same_result(self, name):
        first = run_method(name, seed=3)
        second = run_method(name, seed=3)
        assert first.accuracies == second.accuracies


class TestNovelClients:
    @pytest.mark.parametrize("name", ["fedavg-ft", "calibre-simclr", "ditto", "apfl",
                                      "fedbabu", "lg-fedavg"])
    def test_methods_handle_unseen_clients(self, name):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        from repro.fl import build_novel_clients

        def partition_fn(labels, n, rng):
            return partition_dirichlet(labels, n, 0.5, samples_per_client=20, rng=rng)

        novel = build_novel_clients(dataset, 2, partition_fn)
        algorithm = build_method(name, config, NUM_CLASSES, encoder_factory)
        server = FederatedServer(algorithm, clients, config, novel_clients=novel)
        result = server.run()
        assert len(result.novel_accuracies) == 2
        assert all(0.0 <= a <= 1.0 for a in result.novel_accuracies.values())


class TestMethodSpecificInvariants:
    def test_fedavg_ft_beats_fedavg(self):
        """Head fine-tuning must help under label skew (the paper's premise)."""
        config = tiny_config(rounds=3)
        plain = run_method("fedavg", config=config)
        tuned = run_method("fedavg-ft", config=config)
        assert tuned.mean_accuracy > plain.mean_accuracy

    def test_fedper_communicates_encoder_only(self):
        config = tiny_config()
        algorithm = build_method("fedper", config, NUM_CLASSES, encoder_factory)
        state = algorithm.build_global_state()
        assert all(k.startswith("encoder.") for k in state)

    def test_lgfedavg_communicates_head_only(self):
        config = tiny_config()
        algorithm = build_method("lg-fedavg", config, NUM_CLASSES, encoder_factory)
        state = algorithm.build_global_state()
        assert all(k.startswith("head.") for k in state)

    def test_fedbabu_head_is_frozen_during_training(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("fedbabu", config, NUM_CLASSES, encoder_factory)
        global_state = algorithm.build_global_state()
        initial_head = {
            k: v.copy() for k, v in algorithm._initial_state.items()
            if k.startswith("head.")
        }
        algorithm.local_update(clients[0], global_state, 0)
        # Template head must still equal the fixed initialization.
        for key, value in initial_head.items():
            np.testing.assert_array_equal(algorithm._template.state_dict()[key], value)

    def test_scaffold_maintains_control_variates(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("scaffold", config, NUM_CLASSES, encoder_factory)
        global_state = algorithm.build_global_state()
        update = algorithm.local_update(clients[0], global_state, 0)
        assert "control" in update.payload
        control = clients[0].store["scaffold/control"]
        assert any(np.any(v != 0) for v in control.values())

    def test_apfl_stores_personal_model_and_alpha(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("apfl", config, NUM_CLASSES, encoder_factory)
        global_state = algorithm.build_global_state()
        update = algorithm.local_update(clients[0], global_state, 0)
        slot = clients[0].store["apfl/personal"]
        assert 0.0 <= slot["alpha"] <= 1.0
        assert "alpha" in update.metrics

    def test_ditto_personal_model_differs_from_global(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("ditto", config, NUM_CLASSES, encoder_factory)
        global_state = algorithm.build_global_state()
        algorithm.local_update(clients[0], global_state, 0)
        personal = clients[0].store["ditto/personal"]
        changed = any(
            not np.allclose(personal[k], global_state[k]) for k in global_state
        )
        assert changed

    def test_script_methods_skip_federation(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("script-fair", config, NUM_CLASSES, encoder_factory)
        assert algorithm.build_global_state() == {}
        update = algorithm.local_update(clients[0], {}, 0)
        assert update.state == {}

    def test_calibre_reports_divergence(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("calibre-simclr", config, NUM_CLASSES, encoder_factory,
                                 num_prototypes=3)
        global_state = algorithm.build_global_state()
        update = algorithm.local_update(clients[0], global_state, 0)
        assert update.metrics["divergence"] > 0
        assert "l_n" in update.metrics
        assert "l_p" in update.metrics or True  # l_p can be skipped on tiny batches
        assert "l_c" in update.metrics

    def test_calibre_ablation_toggles(self):
        config = tiny_config()
        dataset, clients = tiny_federation(config)
        algorithm = build_method("calibre-simclr", config, NUM_CLASSES, encoder_factory,
                                 num_prototypes=3, use_ln=False, use_lp=False,
                                 use_lc=False)
        global_state = algorithm.build_global_state()
        update = algorithm.local_update(clients[0], global_state, 0)
        assert "l_n" not in update.metrics
        assert "l_c" not in update.metrics

    def test_fedema_mixes_rather_than_overwrites(self):
        config = tiny_config(rounds=1)
        dataset, clients = tiny_federation(config)
        algorithm = build_method("fedema", config, NUM_CLASSES, encoder_factory,
                                 ema_lambda=10.0)
        global_state = algorithm.build_global_state()
        # First participation: plain load; store local state.
        algorithm.local_update(clients[0], global_state, 0)
        key = "fedema/local"
        assert key in clients[0].store
        # Second participation with a perturbed global: local model should be
        # mixed, not replaced, so the loaded state differs from pure global.
        perturbed = {k: v + 1.0 for k, v in global_state.items()}
        method = algorithm._restore_client_method(clients[0], perturbed)
        loaded = method.global_state()
        differs_from_global = any(
            not np.allclose(loaded[k], perturbed[k]) for k in perturbed
        )
        assert differs_from_global

    def test_perfedavg_adapts_at_personalization(self):
        result = run_method("perfedavg")
        assert result.mean_accuracy > 0.15
