"""Tests for the pFL-SSL base algorithm: state persistence and wire format."""

import numpy as np
import pytest

from repro.baselines import PFLSSL, FedEMA
from repro.data import make_cifar10_like, make_stl10_like, partition_dirichlet
from repro.fl import FederatedConfig, build_federation
from repro.nn import MLPEncoder

IMAGE_SIZE = 8
INPUT_DIM = 3 * IMAGE_SIZE * IMAGE_SIZE


def encoder_factory():
    return MLPEncoder(INPUT_DIM, hidden_dims=(24, 12), rng=np.random.default_rng(42))


def make_setup(seed=0, unlabeled=0):
    config = FederatedConfig(num_clients=3, clients_per_round=2, rounds=1,
                             local_epochs=1, batch_size=16,
                             personalization_epochs=2, seed=seed)
    factory = make_stl10_like if unlabeled else make_cifar10_like
    kwargs = dict(image_size=IMAGE_SIZE, train_per_class=20, test_per_class=4,
                  seed=seed)
    if unlabeled:
        kwargs["unlabeled_size"] = unlabeled
    dataset = factory(**kwargs)
    parts = partition_dirichlet(dataset.train.labels, 3, 0.5, samples_per_client=30,
                                rng=np.random.default_rng(seed))
    return config, dataset, build_federation(dataset, parts, seed=seed)


class TestWireFormat:
    def test_global_state_is_encoder_plus_projector(self):
        config, _, _ = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simclr")
        state = algorithm.build_global_state()
        prefixes = {key.split(".")[0] for key in state}
        assert prefixes == {"encoder", "projector"}

    def test_update_state_matches_global_keys(self):
        config, _, clients = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simclr")
        global_state = algorithm.build_global_state()
        update = algorithm.local_update(clients[0], global_state, 0)
        assert set(update.state) == set(global_state)

    def test_weight_is_sample_count(self):
        config, _, clients = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simclr")
        update = algorithm.local_update(clients[0], algorithm.build_global_state(), 0)
        assert update.weight == float(clients[0].num_train_samples)


class TestLocalStatePersistence:
    def test_store_written_after_update(self):
        config, _, clients = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simsiam")
        algorithm.local_update(clients[0], algorithm.build_global_state(), 0)
        assert "pfl-simsiam/local" in clients[0].store

    def test_predictor_state_persists_across_rounds(self):
        """SimSiam's predictor is client-local; the state saved at round r
        must be restored at round r+1."""
        config, _, clients = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simsiam")
        global_state = algorithm.build_global_state()
        algorithm.local_update(clients[0], global_state, 0)
        saved_state, _ = clients[0].store["pfl-simsiam/local"]
        predictor_keys = [k for k in saved_state if k.startswith("predictor.")]
        assert predictor_keys
        method = algorithm._restore_client_method(clients[0], global_state)
        for key in predictor_keys:
            np.testing.assert_array_equal(method.state_dict()[key], saved_state[key])

    def test_moco_queue_persists(self):
        config, _, clients = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="mocov2",
                           ssl_kwargs={"queue_size": 16})
        global_state = algorithm.build_global_state()
        algorithm.local_update(clients[0], global_state, 0)
        _, extra = clients[0].store["pfl-mocov2/local"]
        assert "queue" in extra
        method = algorithm._restore_client_method(clients[0], global_state)
        np.testing.assert_array_equal(method.queue, extra["queue"])

    def test_persistence_can_be_disabled(self):
        config, _, clients = make_setup()
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simclr",
                           persist_local_state=False)
        algorithm.local_update(clients[0], algorithm.build_global_state(), 0)
        assert "pfl-simclr/local" not in clients[0].store


class TestUnlabeledPool:
    def test_ssl_trains_on_unlabeled_shard(self):
        config, dataset, clients = make_setup(unlabeled=30)
        assert len(clients[0].unlabeled) > 0
        algorithm = PFLSSL(config, 10, encoder_factory, ssl_name="simclr")
        update = algorithm.local_update(clients[0], algorithm.build_global_state(), 0)
        assert np.isfinite(update.metrics["loss"])


class TestFedEMAMixing:
    def test_lambda_validation(self):
        config, _, _ = make_setup()
        with pytest.raises(ValueError):
            FedEMA(config, 10, encoder_factory, ema_lambda=-1.0)

    def test_lambda_zero_overwrites_with_global(self):
        """μ = min(0 · div, 1) = 0 ⇒ the client adopts the global model."""
        config, _, clients = make_setup()
        algorithm = FedEMA(config, 10, encoder_factory, ema_lambda=0.0)
        global_state = algorithm.build_global_state()
        algorithm.local_update(clients[0], global_state, 0)
        perturbed = {k: v + 0.5 for k, v in global_state.items()}
        method = algorithm._restore_client_method(clients[0], perturbed)
        loaded = method.global_state()
        for key in perturbed:
            np.testing.assert_allclose(loaded[key], perturbed[key], atol=1e-10)

    def test_large_lambda_keeps_local_model(self):
        """μ saturates at 1 ⇒ the client keeps its local online network."""
        config, _, clients = make_setup()
        algorithm = FedEMA(config, 10, encoder_factory, ema_lambda=1e6)
        global_state = algorithm.build_global_state()
        algorithm.local_update(clients[0], global_state, 0)
        local_state, _ = clients[0].store["fedema/local"]
        perturbed = {k: v + 0.5 for k, v in global_state.items()}
        method = algorithm._restore_client_method(clients[0], perturbed)
        loaded = method.global_state()
        for key in loaded:
            np.testing.assert_allclose(loaded[key], local_state[key], atol=1e-10)
