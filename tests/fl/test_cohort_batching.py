"""Cohort-level client batching: the vectorized engine must be invisible.

``client_batch`` is a wall-clock knob, never a results knob: every method,
every backend, and every cohort cap must produce bitwise-identical run
results with batching on or off.  These tests pin that contract, plus the
grouping/caching machinery around it (cohort planning, trace-cache keying,
config validation, fingerprint exclusion).
"""

import json

import numpy as np
import pytest

from repro.data import make_cifar10_like
from repro.eval import available_methods, build_method
from repro.fl import FederatedConfig, TrainingSession, build_federation
from repro.nn import MLPEncoder

NUM_CLASSES = 10
IMAGE_SIZE = 6
INPUT_DIM = 3 * IMAGE_SIZE * IMAGE_SIZE

ALL_METHODS = available_methods()


def encoder_factory():
    return MLPEncoder(INPUT_DIM, hidden_dims=(16, 8), rng=np.random.default_rng(7))


def cohort_config(**overrides):
    defaults = dict(num_clients=4, clients_per_round=4, rounds=1, local_epochs=1,
                    batch_size=4, personalization_epochs=2, seed=0)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


def homogeneous_federation(config, samples_per_client=12, seed=0):
    """Single-class, equal-size partitions -> identical SSL pool shapes.

    Stratified test-splitting of a one-class partition always holds out the
    same count, so every client's pool is shape-homogeneous and the whole
    round forms one cohort.
    """
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=48,
                                test_per_class=4, seed=seed)
    labels = dataset.train.labels
    parts = [np.where(labels == c)[0][:samples_per_client]
             for c in range(config.num_clients)]
    return dataset, build_federation(dataset, parts, test_fraction=0.25,
                                     seed=seed)


def run_session(name, config, backend=None, seed=0, **method_kwargs):
    dataset, clients = homogeneous_federation(config, seed=seed)
    algorithm = build_method(name, config, NUM_CLASSES, encoder_factory,
                             **method_kwargs)
    session = TrainingSession(algorithm, clients, config, backend=backend)
    try:
        result = session.execute()
    finally:
        session.close()
    return algorithm, session, result


def assert_identical_results(first, second):
    """Bitwise equality of the two runs' observable outputs.

    Serialized comparison: floats survive ``json.dumps`` bit-for-bit via
    ``repr``, and the script-* methods' NaN round losses compare equal as
    text where ``nan != nan`` would fail.
    """
    assert json.dumps(first.to_json()) == json.dumps(second.to_json())


@pytest.mark.parametrize("name", ALL_METHODS)
class TestEveryMethodBitwiseIdentical:
    def test_batched_equals_per_client(self, name):
        _, _, per_client = run_session(name, cohort_config(client_batch=1))
        _, _, batched = run_session(name, cohort_config(client_batch=None))
        assert_identical_results(per_client, batched)


class TestBatchedEngineEngages:
    def test_trace_cache_populated_only_when_batching(self):
        algorithm, _, _ = run_session("pfl-simclr", cohort_config(client_batch=1))
        assert algorithm._trace_cache == {}
        algorithm, _, _ = run_session("pfl-simclr",
                                      cohort_config(client_batch=None))
        assert algorithm._trace_cache
        assert not algorithm._untraceable

    def test_multiple_rounds_reuse_one_trace(self):
        algorithm, _, _ = run_session("pfl-simclr",
                                      cohort_config(rounds=2, client_batch=None))
        # 9-sample pools at batch_size=4 yield one kept batch shape (4), so
        # one trace serves every step of every round.
        assert len(algorithm._trace_cache) == 1

    def test_uneven_batch_shapes_record_separate_traces(self):
        # batch_size=6 over 9-sample pools gives kept batches of 6 and 3:
        # a second view shape must key a second trace, not replay the first.
        algorithm, _, _ = run_session(
            "pfl-simclr", cohort_config(batch_size=6, client_batch=None))
        assert len(algorithm._trace_cache) == 2

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, backend):
        config = cohort_config(client_batch=None, workers=2)
        _, _, serial = run_session("pfl-simclr", config)
        _, _, parallel = run_session("pfl-simclr", config, backend=backend)
        assert_identical_results(serial, parallel)


class TestCohortKeying:
    def _client(self, samples=12):
        config = cohort_config()
        _, clients = homogeneous_federation(config, samples_per_client=samples)
        return clients[0]

    def test_key_distinguishes_methods(self):
        config = cohort_config()
        client = self._client()
        simclr = build_method("pfl-simclr", config, NUM_CLASSES, encoder_factory)
        simsiam = build_method("pfl-simsiam", config, NUM_CLASSES, encoder_factory)
        assert simclr.cohort_key(client) is not None
        assert simclr.cohort_key(client) != simsiam.cohort_key(client)

    def test_key_distinguishes_pool_shapes(self):
        config = cohort_config()
        algorithm = build_method("pfl-simclr", config, NUM_CLASSES,
                                 encoder_factory)
        small, large = self._client(samples=12), self._client(samples=16)
        assert algorithm.cohort_key(small) != algorithm.cohort_key(large)

    def test_non_batchable_method_has_no_key(self):
        config = cohort_config()
        client = self._client()
        for name in ("fedavg", "calibre-simclr"):
            algorithm = build_method(name, config, NUM_CLASSES, encoder_factory)
            assert algorithm.cohort_key(client) is None


class TestPlanCohorts:
    def _session(self, name="pfl-simclr", **overrides):
        config = cohort_config(**overrides)
        _, clients = homogeneous_federation(config)
        algorithm = build_method(name, config, NUM_CLASSES, encoder_factory)
        return TrainingSession(algorithm, clients, config), clients

    def test_client_batch_one_disables_planning(self):
        session, clients = self._session(client_batch=1)
        assert session._plan_cohorts(clients) is None

    def test_auto_groups_whole_homogeneous_round(self):
        session, clients = self._session(client_batch=None)
        assert session._plan_cohorts(clients) == [[0, 1, 2, 3]]

    def test_cap_chunks_cohorts(self):
        session, clients = self._session(client_batch=3)
        assert session._plan_cohorts(clients) == [[0, 1, 2], [3]]

    def test_single_participant_is_not_a_cohort(self):
        session, clients = self._session(client_batch=None)
        assert session._plan_cohorts(clients[:1]) is None

    def test_all_solo_returns_none(self):
        session, clients = self._session(name="fedavg", client_batch=None)
        assert session._plan_cohorts(clients) is None


class TestConfigKnob:
    @pytest.mark.parametrize("bad", [0, -1, True, 2.5, "auto"])
    def test_invalid_client_batch_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            cohort_config(client_batch=bad)

    @pytest.mark.parametrize("ok", [None, 1, 2, 64])
    def test_valid_client_batch_accepted(self, ok):
        assert cohort_config(client_batch=ok).client_batch == ok

    def test_client_batch_excluded_from_fingerprints(self):
        from repro.runs.serialize import EXECUTION_FIELDS, config_to_jsonable
        assert "client_batch" in EXECUTION_FIELDS
        plain = cohort_config()
        batched = cohort_config(client_batch=8)
        assert config_to_jsonable(plain, include_execution=False) == \
            config_to_jsonable(batched, include_execution=False)
        assert config_to_jsonable(plain, include_execution=True) != \
            config_to_jsonable(batched, include_execution=True)
