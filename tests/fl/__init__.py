"""Package marker so pytest imports tests as the ``tests.fl`` package."""
