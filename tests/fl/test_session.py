"""TrainingSession mechanics: events, callbacks, streaming aggregation,
checkpoint files, and the FederatedServer compatibility shim."""

import io
import json

import numpy as np
import pytest

from repro.data import make_cifar10_like, partition_iid
from repro.fl import (
    ClientUpdate,
    EarlyStopping,
    EvalCadence,
    FederatedAlgorithm,
    FederatedConfig,
    FederatedServer,
    HistoryStreamer,
    RoundCheckpointer,
    RoundRobinSampler,
    SessionCallback,
    TrainingSession,
    UpdateAccumulator,
    build_federation,
    read_checkpoint,
)
from repro.fl.personalization import PersonalizationResult
from repro.fl.session.state import checkpoint_sidecar
from repro.fl.session.events import (
    AggregateDone,
    ClientUpdateDone,
    PersonalizeDone,
    RoundBegin,
    RoundEnd,
)
from repro.nn import Linear


class TraceAlgorithm(FederatedAlgorithm):
    """Instrumented algorithm recording every call in sequence."""

    name = "trace"

    def __init__(self, config, num_classes=10, loss_per_round=None):
        super().__init__(config, num_classes)
        self.calls = []
        self.loss_per_round = loss_per_round or {}

    def build_global_state(self):
        return {"w": np.zeros(3)}

    def local_update(self, client, global_state, round_index):
        self.calls.append(("update", round_index, client.client_id))
        return ClientUpdate(
            client_id=client.client_id,
            state={"w": global_state["w"] + 1.0},
            weight=float(client.num_train_samples),
            metrics={"loss": self.loss_per_round.get(round_index, 1.0)},
        )

    def extract_features(self, client, global_state, images):
        return images.reshape(images.shape[0], -1)

    def personalize(self, client, global_state):
        return PersonalizationResult(accuracy=0.5, train_accuracy=0.5,
                                     head=Linear(2, 2), losses=[])


class Recorder(SessionCallback):
    def __init__(self):
        self.events = []

    def on_event(self, session, event):
        self.events.append(event)


def make_clients(n=4):
    dataset = make_cifar10_like(image_size=8, train_per_class=10,
                                test_per_class=2, seed=0)
    parts = partition_iid(dataset.train.labels, n, np.random.default_rng(0))
    return build_federation(dataset, parts, seed=0)


def tiny_config(**overrides):
    defaults = dict(num_clients=4, clients_per_round=2, rounds=3,
                    personalization_epochs=1, seed=0)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


class TestEventOrder:
    def test_round_event_sequence(self):
        config = tiny_config(rounds=2)
        recorder = Recorder()
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config,
                                  callbacks=[recorder])
        session.execute()
        kinds = [type(e) for e in recorder.events]
        per_round = [RoundBegin, ClientUpdateDone, ClientUpdateDone,
                     AggregateDone, RoundEnd]
        assert kinds == per_round * 2 + [PersonalizeDone]
        begins = [e for e in recorder.events if isinstance(e, RoundBegin)]
        assert [e.round_index for e in begins] == [0, 1]
        assert all(len(e.participant_ids) == 2 for e in begins)
        end = [e for e in recorder.events if isinstance(e, RoundEnd)][-1]
        assert end.record.mean_loss == pytest.approx(1.0)

    def test_round_end_fires_after_state_commit(self):
        config = tiny_config(rounds=1)
        seen = {}

        class Probe(SessionCallback):
            def on_round_end(self, session, event):
                seen["round_index"] = session.round_index
                seen["records"] = len(session.round_records)

        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config,
                                  callbacks=[Probe()])
        session.run()
        assert seen == {"round_index": 1, "records": 1}

    def test_updates_stream_into_aggregator_before_barrier(self):
        """Under the serial backend the round is a true pipeline: client
        i's update is ingested before client i+1 even starts."""
        config = tiny_config(rounds=1, clients_per_round=3)
        trace = []

        class RecordingAccumulator(UpdateAccumulator):
            def ingest(self, update):
                trace.append(("ingest", update.client_id))

        class PipelinedAlgorithm(TraceAlgorithm):
            def local_update(self, client, global_state, round_index):
                trace.append(("update", client.client_id))
                return super().local_update(client, global_state, round_index)

            def make_aggregator(self, global_state, round_index):
                return RecordingAccumulator(self, global_state, round_index)

        session = TrainingSession(PipelinedAlgorithm(config), make_clients(4),
                                  config, sampler=RoundRobinSampler(3))
        session.step()
        assert trace == [("update", 0), ("ingest", 0), ("update", 1),
                         ("ingest", 1), ("update", 2), ("ingest", 2)]

    def test_aggregator_finalize_uses_input_order(self):
        config = tiny_config(rounds=1)
        algorithm = TraceAlgorithm(config)
        accumulator = algorithm.make_aggregator({"w": np.zeros(3)}, 0)
        second = ClientUpdate(client_id=7, state={"w": np.ones(3)}, weight=1.0)
        first = ClientUpdate(client_id=3, state={"w": np.full(3, 3.0)}, weight=1.0)
        accumulator.add(1, second)  # completion order: position 1 first
        accumulator.add(0, first)
        assert [u.client_id for u in accumulator.updates_in_order()] == [3, 7]
        np.testing.assert_allclose(accumulator.finalize()["w"], np.full(3, 2.0))
        with pytest.raises(ValueError):
            accumulator.add(1, second)


class TestStepAndRunUntil:
    def test_step_advances_one_round(self):
        config = tiny_config()
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        assert session.round_index == 0
        record = session.step()
        assert record.round_index == 0
        assert session.round_index == 1
        session.run_until(3)
        assert session.round_index == 3
        assert len(session.round_records) == 3

    def test_run_until_is_idempotent_at_target(self):
        config = tiny_config()
        algorithm = TraceAlgorithm(config)
        session = TrainingSession(algorithm, make_clients(4), config)
        session.run()
        updates = len(algorithm.calls)
        session.run()  # already at config.rounds: nothing recomputes
        assert len(algorithm.calls) == updates

    def test_zero_rounds_still_initializes_and_personalizes(self):
        config = tiny_config(rounds=0)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        result = session.execute()
        assert len(result.accuracies) == 4
        assert result.rounds == []

    def test_personalize_before_init_raises(self):
        config = tiny_config()
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        with pytest.raises(RuntimeError):
            session.personalize()

    def test_requires_clients(self):
        config = tiny_config()
        with pytest.raises(ValueError):
            TrainingSession(TraceAlgorithm(config), [], config)


class TestBuiltinCallbacks:
    def test_history_streamer_to_stream_and_path(self, tmp_path):
        config = tiny_config(rounds=2)
        buffer = io.StringIO()
        path = tmp_path / "history.jsonl"
        session = TrainingSession(
            TraceAlgorithm(config), make_clients(4), config,
            callbacks=[HistoryStreamer(buffer), HistoryStreamer(path)])
        session.execute()
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert [entry["event"] for entry in lines] == ["round", "round", "result"]
        assert lines[0]["record"]["round_index"] == 0
        assert lines[-1]["summary"]["mean_accuracy"] == pytest.approx(0.5)
        assert path.read_text() == buffer.getvalue()

    def test_eval_cadence(self):
        config = tiny_config(rounds=4)
        cadence = EvalCadence(lambda session: {"round": session.round_index},
                              every=2)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config,
                                  callbacks=[cadence])
        session.run()
        # Fires after rounds 1 and 3 (2 and 4 completed rounds); the session
        # has already advanced when the hook runs.
        assert cadence.history == [(1, {"round": 2}), (3, {"round": 4})]

    def test_early_stopping_stops_on_plateau(self):
        config = tiny_config(rounds=10)
        losses = {0: 1.0, 1: 0.5}  # rounds >= 2 plateau at 1.0
        stopper = EarlyStopping(patience=2)
        session = TrainingSession(
            TraceAlgorithm(config, loss_per_round=losses), make_clients(4),
            config, callbacks=[stopper])
        session.run()
        assert session.stop_requested
        assert stopper.best == pytest.approx(0.5)
        # best at round 1, two stale rounds (2, 3) then stop.
        assert stopper.stopped_round == 3
        assert session.round_index == 4
        assert len(session.round_records) == 4

    def test_round_checkpointer_writes_every_k_rounds(self, tmp_path):
        config = tiny_config(rounds=4)
        path = tmp_path / "ckpt.json"
        checkpointer = RoundCheckpointer(path, every=2)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config,
                                  callbacks=[checkpointer])
        session.run()
        assert checkpointer.writes == 2
        state = read_checkpoint(path)
        assert state.round_index == 4
        assert len(state.round_records) == 4
        # Atomic discipline: no temp files left behind — just the manifest
        # and the single .npcol sidecar it references.
        sidecar = checkpoint_sidecar(path)
        assert sidecar is not None
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            sorted(["ckpt.json", sidecar.name])

    def test_round_checkpointer_retains_last_n(self, tmp_path):
        config = tiny_config(rounds=5)
        path = tmp_path / "ckpt.json"
        checkpointer = RoundCheckpointer(path, keep_last=2)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config,
                                  callbacks=[checkpointer])
        session.run()
        assert checkpointer.writes == 5
        # Only the newest two numbered checkpoints survive pruning.
        assert [p.name for p in checkpointer.retained()] == \
            ["ckpt-r000004.json", "ckpt-r000005.json"]
        # The base path always tracks the newest checkpoint, so resume code
        # that only knows the base path keeps working.
        assert read_checkpoint(path).round_index == 5
        assert read_checkpoint(tmp_path / "ckpt-r000004.json").round_index == 4
        manifests = sorted(p.name for p in tmp_path.glob("*.json"))
        assert manifests == ["ckpt-r000004.json", "ckpt-r000005.json",
                             "ckpt.json"]
        # Retention is sidecar-aware: every .npcol on disk is referenced by
        # a surviving manifest — pruned checkpoints never leave orphans.
        on_disk = {p.name for p in tmp_path.glob("*.npcol")}
        referenced = {checkpoint_sidecar(tmp_path / name).name
                      for name in manifests}
        assert on_disk == referenced

    def test_round_checkpointer_retention_respects_cadence(self, tmp_path):
        config = tiny_config(rounds=6)
        path = tmp_path / "ckpt.json"
        checkpointer = RoundCheckpointer(path, every=2, keep_last=2)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config,
                                  callbacks=[checkpointer])
        session.run()
        assert checkpointer.writes == 3
        assert [p.name for p in checkpointer.retained()] == \
            ["ckpt-r000004.json", "ckpt-r000006.json"]

    def test_round_checkpointer_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            RoundCheckpointer(tmp_path / "c.json", every=0)
        with pytest.raises(ValueError):
            RoundCheckpointer(tmp_path / "c.json", keep_last=0)

    def test_add_and_remove_callback(self):
        config = tiny_config(rounds=1)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        recorder = session.add_callback(Recorder())
        session.step()
        count = len(recorder.events)
        assert count > 0
        session.remove_callback(recorder)
        session.step()
        assert len(recorder.events) == count


class TestServerShim:
    def test_shim_matches_session_bitwise(self):
        config = tiny_config()
        result_server = FederatedServer(
            TraceAlgorithm(config), make_clients(4), config).run()
        result_session = TrainingSession(
            TraceAlgorithm(config), make_clients(4), config).execute()
        assert json.dumps(result_server.to_json()) == \
            json.dumps(result_session.to_json())

    def test_shim_exposes_legacy_surface(self):
        config = tiny_config()
        algorithm = TraceAlgorithm(config)
        server = FederatedServer(algorithm, make_clients(4), config)
        assert server.algorithm is algorithm
        assert server.config is config
        assert server.global_state is None
        final = server.train()
        assert server.global_state is final
        assert len(server.round_records) == config.rounds
        result = server.personalize_all()
        assert len(result.accuracies) == 4
        server.close()


class TestServerShimDeprecation:
    def test_legacy_entry_points_warn(self):
        config = tiny_config(rounds=1)
        server = FederatedServer(TraceAlgorithm(config), make_clients(4), config)
        with pytest.warns(DeprecationWarning, match="TrainingSession"):
            server.train()
        with pytest.warns(DeprecationWarning, match="personalize"):
            server.personalize_all()
        server = FederatedServer(TraceAlgorithm(config), make_clients(4), config)
        with pytest.warns(DeprecationWarning, match="execute"):
            server.run()


class TestRestoreValidation:
    def test_algorithm_mismatch_raises(self):
        config = tiny_config(rounds=1)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        session.run()
        state = session.capture_state()
        other = TraceAlgorithm(config)
        other.name = "other"
        fresh = TrainingSession(other, make_clients(4), config)
        with pytest.raises(ValueError, match="other"):
            fresh.restore_state(state)

    def test_unknown_client_ids_raise(self):
        config = tiny_config(rounds=1)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        session.run()
        state = session.capture_state()
        state.client_stores[999] = {"x": 1}
        fresh = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        with pytest.raises(ValueError, match="999"):
            fresh.restore_state(state)

    def test_context_mismatch_raises(self):
        """A checkpoint taken under one configuration must refuse to
        restore into a session over a different one."""
        config = tiny_config(rounds=2)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        session.run_until(1)
        state = session.capture_state()
        other_config = tiny_config(rounds=2, seed=7)
        fresh = TrainingSession(TraceAlgorithm(other_config), make_clients(4),
                                other_config)
        with pytest.raises(ValueError, match="context"):
            fresh.restore_state(state)

    def test_execution_knobs_do_not_change_context(self):
        config = tiny_config()
        thread_config = tiny_config(backend="thread", workers=2)
        serial = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        threaded = TrainingSession(TraceAlgorithm(thread_config), make_clients(4),
                                   thread_config)
        assert serial.context == threaded.context
        threaded.close()

    def test_captured_state_is_detached(self):
        config = tiny_config(rounds=2)
        session = TrainingSession(TraceAlgorithm(config), make_clients(4), config)
        session.run_until(1)
        state = session.capture_state()
        frozen = json.dumps(state.to_json())
        session.run()  # keep training; the snapshot must not move
        assert json.dumps(state.to_json()) == frozen
        assert state.round_index == 1
