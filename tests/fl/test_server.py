"""Server round-loop mechanics and failure injection."""

import numpy as np
import pytest

from repro.data import make_cifar10_like, partition_iid
from repro.fl import (
    ClientData,
    ClientUpdate,
    FederatedAlgorithm,
    FederatedConfig,
    FederatedServer,
    RoundRobinSampler,
    build_federation,
)
from repro.fl.personalization import PersonalizationResult
from repro.nn import Linear


class CountingAlgorithm(FederatedAlgorithm):
    """Instrumented algorithm recording every call the server makes."""

    name = "counting"

    def __init__(self, config, num_classes=10):
        super().__init__(config, num_classes)
        self.local_updates = []
        self.aggregations = 0
        self.personalizations = []

    def build_global_state(self):
        return {"w": np.zeros(3)}

    def local_update(self, client, global_state, round_index):
        self.local_updates.append((round_index, client.client_id))
        return ClientUpdate(
            client_id=client.client_id,
            state={"w": global_state["w"] + 1.0},
            weight=float(client.num_train_samples),
            metrics={"loss": 1.0},
        )

    def aggregate(self, updates, global_state, round_index):
        self.aggregations += 1
        return super().aggregate(updates, global_state, round_index)

    def extract_features(self, client, global_state, images):
        return images.reshape(images.shape[0], -1)

    def personalize(self, client, global_state):
        self.personalizations.append(client.client_id)
        return PersonalizationResult(accuracy=0.5, train_accuracy=0.5,
                                     head=Linear(2, 2), losses=[])


def make_clients(n=4):
    dataset = make_cifar10_like(image_size=8, train_per_class=10, test_per_class=2,
                                seed=0)
    parts = partition_iid(dataset.train.labels, n, np.random.default_rng(0))
    return build_federation(dataset, parts, seed=0)


class TestServerLoop:
    def test_round_and_personalization_counts(self):
        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=3,
                                 personalization_epochs=1, seed=0)
        algorithm = CountingAlgorithm(config)
        server = FederatedServer(algorithm, make_clients(4), config)
        result = server.run()
        assert algorithm.aggregations == 3
        assert len(algorithm.local_updates) == 3 * 2
        assert sorted(algorithm.personalizations) == [0, 1, 2, 3]
        assert len(result.rounds) == 3
        assert result.rounds[0].mean_loss == pytest.approx(1.0)

    def test_global_state_advances_each_round(self):
        config = FederatedConfig(num_clients=4, clients_per_round=4, rounds=2, seed=0)
        algorithm = CountingAlgorithm(config)
        server = FederatedServer(algorithm, make_clients(4), config)
        final = server.train()
        np.testing.assert_allclose(final["w"], np.full(3, 2.0))

    def test_personalize_before_train_raises(self):
        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1, seed=0)
        server = FederatedServer(CountingAlgorithm(config), make_clients(4), config)
        with pytest.raises(RuntimeError):
            server.personalize_all()

    def test_zero_rounds_still_personalizes(self):
        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=0, seed=0)
        algorithm = CountingAlgorithm(config)
        server = FederatedServer(algorithm, make_clients(4), config)
        result = server.run()
        assert algorithm.aggregations == 0
        assert len(result.accuracies) == 4

    def test_requires_clients(self):
        config = FederatedConfig(num_clients=1, clients_per_round=1, rounds=1, seed=0)
        with pytest.raises(ValueError):
            FederatedServer(CountingAlgorithm(config), [], config)

    def test_round_robin_sampler_injected(self):
        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=2, seed=0)
        algorithm = CountingAlgorithm(config)
        server = FederatedServer(algorithm, make_clients(4), config,
                                 sampler=RoundRobinSampler(2))
        server.train()
        assert [cid for _, cid in algorithm.local_updates] == [0, 1, 2, 3]

    def test_non_finite_losses_surfaced_not_swallowed(self):
        import warnings

        class DivergingAlgorithm(CountingAlgorithm):
            def local_update(self, client, global_state, round_index):
                update = super().local_update(client, global_state, round_index)
                if client.client_id == 0:
                    update.metrics["loss"] = float("nan")
                return update

        config = FederatedConfig(num_clients=4, clients_per_round=4, rounds=2, seed=0)
        server = FederatedServer(DivergingAlgorithm(config), make_clients(4), config)
        with pytest.warns(RuntimeWarning, match="non-finite"):
            server.train()
        for record in server.round_records:
            assert record.metrics["non_finite_losses"] == 1
            assert record.mean_loss == pytest.approx(1.0)  # finite clients only
        # The warning fires once per run, not once per round.
        server2 = FederatedServer(DivergingAlgorithm(config), make_clients(4), config)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            server2.train()
        assert sum("non-finite" in str(w.message) for w in caught) == 1

    def test_all_finite_losses_leave_no_warning(self):
        import warnings

        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=2, seed=0)
        server = FederatedServer(CountingAlgorithm(config), make_clients(4), config)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            server.train()
        assert all(r.metrics["non_finite_losses"] == 0 for r in server.round_records)

    def test_novel_clients_not_trained(self):
        config = FederatedConfig(num_clients=4, clients_per_round=4, rounds=2, seed=0)
        algorithm = CountingAlgorithm(config)
        clients = make_clients(4)
        novel = [ClientData(client_id=99, train=clients[0].train,
                            test=clients[0].test, is_novel=True)]
        server = FederatedServer(algorithm, clients, config, novel_clients=novel)
        result = server.run()
        trained_ids = {cid for _, cid in algorithm.local_updates}
        assert 99 not in trained_ids
        assert 99 in result.novel_accuracies


class TestDefaultAggregation:
    def test_identical_updates_are_fixed_point(self):
        config = FederatedConfig(num_clients=2, clients_per_round=2, rounds=1, seed=0)
        algorithm = CountingAlgorithm(config)
        state = {"w": np.array([1.0, 2.0])}
        updates = [
            ClientUpdate(client_id=0, state={"w": np.array([1.0, 2.0])}, weight=3.0),
            ClientUpdate(client_id=1, state={"w": np.array([1.0, 2.0])}, weight=7.0),
        ]
        merged = algorithm.aggregate(updates, state, 0)
        np.testing.assert_allclose(merged["w"], [1.0, 2.0])

    def test_empty_round_keeps_global_state(self):
        config = FederatedConfig(num_clients=2, clients_per_round=2, rounds=1, seed=0)
        algorithm = CountingAlgorithm(config)
        state = {"w": np.array([5.0])}
        assert algorithm.aggregate([], state, 0) is state

    def test_weighting_by_samples(self):
        config = FederatedConfig(num_clients=2, clients_per_round=2, rounds=1, seed=0)
        algorithm = CountingAlgorithm(config)
        updates = [
            ClientUpdate(client_id=0, state={"w": np.array([0.0])}, weight=1.0),
            ClientUpdate(client_id=1, state={"w": np.array([10.0])}, weight=3.0),
        ]
        merged = algorithm.aggregate(updates, {"w": np.array([0.0])}, 0)
        np.testing.assert_allclose(merged["w"], [7.5])
