"""Checkpoint exactness: the acceptance contract of the session API.

Three properties, for every registered method:

1. ``ServerState`` → JSON → ``ServerState`` is *exact* (dtypes, shapes,
   key order, tuples, NaNs);
2. a run checkpointed at an arbitrary round and resumed in a fresh
   session produces a ``RunResult`` bitwise identical to the
   uninterrupted run — including across the thread/process execution
   backends;
3. the legacy schema-1 (inline JSON) and schema-2 (manifest + ``.npcol``
   sidecar) checkpoint formats are *differentially* identical: the same
   state written both ways reads back bitwise equal, and both resume to
   the same run result.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arrays import CorruptArrayFile
from repro.data import make_cifar10_like, partition_dirichlet
from repro.eval import available_methods, build_method
from repro.eval.harness import EncoderSpec
from repro.fl import FederatedConfig, TrainingSession, build_federation
from repro.fl.session import (
    PackedState,
    ServerState,
    decode_value,
    encode_value,
    read_checkpoint,
    write_checkpoint,
)
from repro.fl.session.state import (
    checkpoint_sidecar,
    sweep_checkpoint_sidecars,
)

NUM_CLASSES = 10
IMAGE_SIZE = 8

# Picklable (EncoderSpec) so the process-backend resume test works too.
ENCODER = EncoderSpec(kind="mlp", channels=3, image_size=IMAGE_SIZE,
                      hidden_dims=(24, 12), seed=42)


def tiny_config(**overrides):
    defaults = dict(num_clients=4, clients_per_round=2, rounds=3, local_epochs=1,
                    batch_size=16, personalization_epochs=2, seed=0)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


def tiny_federation(config, seed=0):
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=24,
                                test_per_class=4, seed=seed)
    parts = partition_dirichlet(dataset.train.labels, config.num_clients, 0.5,
                                samples_per_client=40,
                                rng=np.random.default_rng(seed))
    return build_federation(dataset, parts, seed=seed)


def make_session(method, config, backend=None):
    algorithm = build_method(method, config, NUM_CLASSES, ENCODER)
    return TrainingSession(algorithm, tiny_federation(config), config,
                           backend=backend)


def state_through_json(state: ServerState) -> ServerState:
    """The full wire trip: to_json → dumps → loads → from_json."""
    return ServerState.from_json(json.loads(json.dumps(state.to_json())))


def state_through_files(state: ServerState, directory: Path):
    """Write ``state`` in both on-disk formats, read both back."""
    legacy = write_checkpoint(state, directory / "legacy.json", arrays="json")
    columnar = write_checkpoint(state, directory / "columnar.json")
    return read_checkpoint(legacy), read_checkpoint(columnar)


def assert_exact(left, right, path="$"):
    """Recursive exact equality: types, dtypes, shapes, order, bits."""
    assert type(left) is type(right), f"{path}: {type(left)} != {type(right)}"
    if isinstance(left, dict):
        assert list(left.keys()) == list(right.keys()), f"{path}: key order"
        for key in left:
            assert_exact(left[key], right[key], f"{path}.{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), f"{path}: length"
        for index, (a, b) in enumerate(zip(left, right)):
            assert_exact(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, f"{path}: dtype"
        assert left.shape == right.shape, f"{path}: shape"
        np.testing.assert_array_equal(left, right, err_msg=path)
    elif isinstance(left, float) and np.isnan(left):
        assert np.isnan(right), path
    else:
        assert left == right, path


# ----------------------------------------------------------------------
# Codec property tests
# ----------------------------------------------------------------------
_dtypes = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "|b1"])
_arrays = _dtypes.flatmap(
    lambda dtype: hnp.arrays(
        dtype=np.dtype(dtype),
        shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=4),
        elements=(st.floats(width=32 if dtype == "<f4" else 64,
                            allow_nan=True, allow_infinity=True)
                  if dtype in ("<f8", "<f4") else None),
    )
)
_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=True), st.text(max_size=8),
)
_store_values = st.recursive(
    st.one_of(_scalars, _arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
        st.dictionaries(st.integers(-10, 10), children, max_size=3),
    ),
    max_leaves=12,
)


class TestCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(value=_store_values)
    def test_encode_decode_round_trip_is_exact(self, value):
        wire = json.loads(json.dumps(encode_value(value)))
        assert_exact(decode_value(wire), value)

    @settings(max_examples=30, deadline=None)
    @given(value=_store_values)
    def test_encoding_is_deterministic(self, value):
        assert json.dumps(encode_value(value)) == json.dumps(encode_value(value))

    def test_tag_collision_keys_survive(self):
        tricky = {"__nd__": [1, 2], "__tu__": (3,), 4: "int key"}
        assert_exact(decode_value(json.loads(json.dumps(encode_value(tricky)))),
                     tricky)

    def test_unencodable_objects_raise(self):
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            encode_value(np.array([object()]))


# ----------------------------------------------------------------------
# Whole-run exactness, every registered method
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", available_methods())
class TestEveryMethodCheckpoints:
    def test_state_round_trip_and_resume_bitwise(self, method):
        config = tiny_config()
        # Uninterrupted reference.
        reference = json.dumps(make_session(method, config).execute().to_json())

        # Interrupt at round 2: capture, push through JSON, restore into a
        # *fresh* session (new algorithm instance, freshly built clients).
        partial = make_session(method, config)
        partial.run_until(2)
        state = partial.capture_state()
        revived = state_through_json(state)
        assert_exact(revived.to_json(), state.to_json())
        assert revived.round_index == 2

        resumed = make_session(method, config)
        resumed.restore_state(revived)
        assert json.dumps(resumed.execute().to_json()) == reference

    def test_json_and_columnar_files_differentially_identical(
            self, method, tmp_path):
        """The same state written in both on-disk formats reads back
        bitwise equal — ServerState, round records and all — and the
        columnar read resumes to the uninterrupted run's exact result."""
        config = tiny_config()
        reference = json.dumps(make_session(method, config).execute().to_json())

        partial = make_session(method, config)
        partial.run_until(2)
        state = partial.capture_state()
        from_legacy, from_columnar = state_through_files(state, tmp_path)
        assert_exact(from_columnar.to_json(), from_legacy.to_json())
        assert_exact(from_columnar.to_json(), state.to_json())
        assert [record.to_json() for record in from_columnar.round_records] \
            == [record.to_json() for record in from_legacy.round_records]

        resumed = make_session(method, config)
        resumed.restore_state(from_columnar)
        assert json.dumps(resumed.execute().to_json()) == reference


@pytest.mark.parametrize("method", ["scaffold", "calibre-simclr"])
@pytest.mark.parametrize("backend", ["thread", "process"])
class TestResumeAcrossBackends:
    def test_resume_matches_serial_uninterrupted(self, method, backend):
        """A checkpoint taken under serial resumes bitwise under every
        backend (and vice versa: state is backend-independent)."""
        config = tiny_config(clients_per_round=4)
        reference = json.dumps(make_session(method, config).execute().to_json())

        partial = make_session(method, config, backend=backend)
        partial.run_until(1)
        state = state_through_json(partial.capture_state())
        partial.close()

        resumed = make_session(method, config, backend=backend)
        resumed.restore_state(state)
        assert json.dumps(resumed.execute().to_json()) == reference

    def test_columnar_and_json_files_resume_identically(self, method,
                                                        backend, tmp_path):
        """Both on-disk formats, written under one backend, restore and
        resume to the same bitwise result under that backend — the
        process backend additionally exercises the PackedState IPC
        path end to end."""
        config = tiny_config(clients_per_round=4)
        reference = json.dumps(make_session(method, config).execute().to_json())

        partial = make_session(method, config, backend=backend)
        partial.run_until(1)
        from_legacy, from_columnar = state_through_files(
            partial.capture_state(), tmp_path)
        partial.close()
        assert_exact(from_columnar.to_json(), from_legacy.to_json())

        resumed = make_session(method, config, backend=backend)
        resumed.restore_state(from_columnar)
        result = json.dumps(resumed.execute().to_json())
        resumed.close()
        assert result == reference


class TestCheckpointFiles:
    def test_save_load_file_round_trip(self, tmp_path):
        config = tiny_config()
        session = make_session("scaffold", config)
        session.run_until(2)
        path = session.save_checkpoint(tmp_path / "ckpt.json")
        fresh = make_session("scaffold", config)
        state = fresh.load_checkpoint(path)
        assert state.round_index == 2
        assert fresh.round_index == 2
        assert json.dumps(fresh.capture_state().to_json()) == \
            json.dumps(session.capture_state().to_json())

    def test_checkpoint_bytes_are_deterministic(self, tmp_path):
        config = tiny_config()
        session = make_session("calibre-simclr", config)
        session.run_until(1)
        first = session.save_checkpoint(tmp_path / "a.json").read_bytes()
        second = session.save_checkpoint(tmp_path / "b.json").read_bytes()
        assert first == second

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="schema"):
            ServerState.from_json({"schema": 999, "algorithm": "x",
                                   "round_index": 0})

    def test_manifest_round_index_is_plain_json(self, tmp_path):
        # Progress pollers (mid_cell_resume_smoke) read the cursor with a
        # bare json.loads — no codec, no sidecar.
        session = make_session("scaffold", tiny_config())
        session.run_until(2)
        path = session.save_checkpoint(tmp_path / "ckpt.json")
        assert json.loads(path.read_text())["round_index"] == 2

    def test_columnar_is_much_smaller_than_json(self, tmp_path):
        from repro.fl.session import checkpoint_total_bytes

        session = make_session("calibre-simclr", tiny_config())
        session.run_until(2)
        state = session.capture_state()
        legacy = write_checkpoint(state, tmp_path / "l.json", arrays="json")
        columnar = write_checkpoint(state, tmp_path / "c.json")
        # The all-f8 state bounds the ratio: 8 raw bytes per element vs
        # ~38 chars of indented legacy JSON, ~4.6x on this workload.  The
        # CI bench smoke (bench_substrate_throughput --smoke) gates the
        # ratios on the bench workload; this pins the floor.
        assert checkpoint_total_bytes(columnar) * 4 <= \
            checkpoint_total_bytes(legacy)


class TestSidecarLifecycle:
    def capture(self, rounds=1):
        session = make_session("scaffold", tiny_config())
        session.run_until(rounds)
        return session.capture_state()

    def test_sidecar_is_content_addressed_and_shared(self, tmp_path):
        state = self.capture()
        a = write_checkpoint(state, tmp_path / "a.json")
        b = write_checkpoint(state, tmp_path / "b.json")
        assert checkpoint_sidecar(a) == checkpoint_sidecar(b)
        assert len(list(tmp_path.glob("*.npcol"))) == 1

    def test_rewrite_sweeps_the_stale_sidecar(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(self.capture(rounds=1), path)
        first = checkpoint_sidecar(path)
        write_checkpoint(self.capture(rounds=2), path)
        second = checkpoint_sidecar(path)
        assert first != second
        assert not first.is_file()  # swept: nothing references it anymore
        assert second.is_file()

    def test_sweep_never_touches_referenced_sidecars(self, tmp_path):
        write_checkpoint(self.capture(), tmp_path / "live.json")
        orphan = tmp_path / "0123456789ab.npcol"
        orphan.write_bytes(b"stale")
        removed = sweep_checkpoint_sidecars(tmp_path)
        assert [p.name for p in removed] == [orphan.name]
        assert checkpoint_sidecar(tmp_path / "live.json").is_file()

    def test_missing_sidecar_fails_loudly(self, tmp_path):
        path = write_checkpoint(self.capture(), tmp_path / "ckpt.json")
        checkpoint_sidecar(path).unlink()
        with pytest.raises(CorruptArrayFile, match="does not exist"):
            read_checkpoint(path)

    def test_swapped_sidecar_fails_the_digest_check(self, tmp_path):
        state = self.capture()
        path = write_checkpoint(state, tmp_path / "ckpt.json")
        sidecar = checkpoint_sidecar(path)
        other = write_checkpoint(self.capture(rounds=2), tmp_path / "o.json")
        sidecar.write_bytes(checkpoint_sidecar(other).read_bytes())
        with pytest.raises(CorruptArrayFile, match="digest"):
            read_checkpoint(path)

    def test_torn_sidecar_fails_the_container_checksum(self, tmp_path):
        path = write_checkpoint(self.capture(), tmp_path / "ckpt.json")
        sidecar = checkpoint_sidecar(path)
        raw = sidecar.read_bytes()
        sidecar.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptArrayFile):
            read_checkpoint(path)


class TestPackedStateProperties:
    @settings(max_examples=60, deadline=None)
    @given(value=_store_values)
    def test_pack_unpack_round_trip_is_exact(self, value):
        assert_exact(PackedState.pack(value).unpack(), value)

    @settings(max_examples=30, deadline=None)
    @given(value=_store_values)
    def test_pickle_round_trip_is_exact(self, value):
        import pickle

        packed = PackedState.pack(value)
        assert_exact(pickle.loads(pickle.dumps(packed)).unpack(), value)

    @settings(max_examples=30, deadline=None)
    @given(value=_store_values)
    def test_unpacked_arrays_are_writable(self, value):
        def all_writable(item):
            if isinstance(item, np.ndarray):
                return item.flags.writeable
            if isinstance(item, dict):
                return all(all_writable(v) for v in item.values())
            if isinstance(item, (list, tuple)):
                return all(all_writable(v) for v in item)
            return True

        assert all_writable(PackedState.pack(value).unpack())

    def test_empty_store_passes_through_pack_store(self):
        from repro.fl.session.codec import pack_store, unpack_store

        assert pack_store({}) == {}
        assert pack_store(None) is None
        store = {"w": np.arange(3.0)}
        packed = pack_store(store)
        assert isinstance(packed, PackedState)
        assert pack_store(packed) is packed  # idempotent
        assert_exact(unpack_store(packed), store)
        assert unpack_store(store) is store


GOLDEN_CHECKPOINT = Path(__file__).parent / "data" / \
    "golden_checkpoint_schema1.json"

# A deliberately small workload so the committed fixture stays compact.
GOLDEN_ENCODER = EncoderSpec(kind="mlp", channels=3, image_size=IMAGE_SIZE,
                             hidden_dims=(8,), seed=42)


def golden_session():
    config = tiny_config(num_clients=3)
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=12,
                                test_per_class=2, seed=0)
    parts = partition_dirichlet(dataset.train.labels, config.num_clients, 0.5,
                                samples_per_client=24,
                                rng=np.random.default_rng(0))
    clients = build_federation(dataset, parts, seed=0)
    algorithm = build_method("scaffold", config, NUM_CLASSES, GOLDEN_ENCODER)
    return TrainingSession(algorithm, clients, config)


class TestGoldenLegacyCheckpoint:
    """A pre-columnar schema-1 checkpoint committed as a fixture must keep
    resuming bitwise forever (regenerate with
    ``tests/fl/data/make_golden_checkpoint.py`` only when the *training*
    math legitimately changes — never for format work)."""

    def test_fixture_exists(self):
        assert GOLDEN_CHECKPOINT.is_file()
        assert json.loads(GOLDEN_CHECKPOINT.read_text())["schema"] == 1

    def test_golden_matches_live_state_bitwise(self):
        state = read_checkpoint(GOLDEN_CHECKPOINT)
        live = golden_session()
        live.run_until(2)
        assert_exact(state.to_json(), live.capture_state().to_json())

    def test_golden_resumes_to_the_reference_result(self):
        reference = json.dumps(golden_session().execute().to_json())
        resumed = golden_session()
        resumed.restore_state(read_checkpoint(GOLDEN_CHECKPOINT))
        assert json.dumps(resumed.execute().to_json()) == reference
