"""Checkpoint exactness: the acceptance contract of the session API.

Two properties, for every registered method:

1. ``ServerState`` → JSON → ``ServerState`` is *exact* (dtypes, shapes,
   key order, tuples, NaNs);
2. a run checkpointed at an arbitrary round and resumed in a fresh
   session produces a ``RunResult`` bitwise identical to the
   uninterrupted run — including across the thread/process execution
   backends.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import make_cifar10_like, partition_dirichlet
from repro.eval import available_methods, build_method
from repro.eval.harness import EncoderSpec
from repro.fl import FederatedConfig, TrainingSession, build_federation
from repro.fl.session import ServerState, decode_value, encode_value

NUM_CLASSES = 10
IMAGE_SIZE = 8

# Picklable (EncoderSpec) so the process-backend resume test works too.
ENCODER = EncoderSpec(kind="mlp", channels=3, image_size=IMAGE_SIZE,
                      hidden_dims=(24, 12), seed=42)


def tiny_config(**overrides):
    defaults = dict(num_clients=4, clients_per_round=2, rounds=3, local_epochs=1,
                    batch_size=16, personalization_epochs=2, seed=0)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


def tiny_federation(config, seed=0):
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=24,
                                test_per_class=4, seed=seed)
    parts = partition_dirichlet(dataset.train.labels, config.num_clients, 0.5,
                                samples_per_client=40,
                                rng=np.random.default_rng(seed))
    return build_federation(dataset, parts, seed=seed)


def make_session(method, config, backend=None):
    algorithm = build_method(method, config, NUM_CLASSES, ENCODER)
    return TrainingSession(algorithm, tiny_federation(config), config,
                           backend=backend)


def state_through_json(state: ServerState) -> ServerState:
    """The full wire trip: to_json → dumps → loads → from_json."""
    return ServerState.from_json(json.loads(json.dumps(state.to_json())))


def assert_exact(left, right, path="$"):
    """Recursive exact equality: types, dtypes, shapes, order, bits."""
    assert type(left) is type(right), f"{path}: {type(left)} != {type(right)}"
    if isinstance(left, dict):
        assert list(left.keys()) == list(right.keys()), f"{path}: key order"
        for key in left:
            assert_exact(left[key], right[key], f"{path}.{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), f"{path}: length"
        for index, (a, b) in enumerate(zip(left, right)):
            assert_exact(a, b, f"{path}[{index}]")
    elif isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, f"{path}: dtype"
        assert left.shape == right.shape, f"{path}: shape"
        np.testing.assert_array_equal(left, right, err_msg=path)
    elif isinstance(left, float) and np.isnan(left):
        assert np.isnan(right), path
    else:
        assert left == right, path


# ----------------------------------------------------------------------
# Codec property tests
# ----------------------------------------------------------------------
_dtypes = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "|b1"])
_arrays = _dtypes.flatmap(
    lambda dtype: hnp.arrays(
        dtype=np.dtype(dtype),
        shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=4),
        elements=(st.floats(width=32 if dtype == "<f4" else 64,
                            allow_nan=True, allow_infinity=True)
                  if dtype in ("<f8", "<f4") else None),
    )
)
_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=True), st.text(max_size=8),
)
_store_values = st.recursive(
    st.one_of(_scalars, _arrays),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
        st.dictionaries(st.integers(-10, 10), children, max_size=3),
    ),
    max_leaves=12,
)


class TestCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(value=_store_values)
    def test_encode_decode_round_trip_is_exact(self, value):
        wire = json.loads(json.dumps(encode_value(value)))
        assert_exact(decode_value(wire), value)

    @settings(max_examples=30, deadline=None)
    @given(value=_store_values)
    def test_encoding_is_deterministic(self, value):
        assert json.dumps(encode_value(value)) == json.dumps(encode_value(value))

    def test_tag_collision_keys_survive(self):
        tricky = {"__nd__": [1, 2], "__tu__": (3,), 4: "int key"}
        assert_exact(decode_value(json.loads(json.dumps(encode_value(tricky)))),
                     tricky)

    def test_unencodable_objects_raise(self):
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            encode_value(np.array([object()]))


# ----------------------------------------------------------------------
# Whole-run exactness, every registered method
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", available_methods())
class TestEveryMethodCheckpoints:
    def test_state_round_trip_and_resume_bitwise(self, method):
        config = tiny_config()
        # Uninterrupted reference.
        reference = json.dumps(make_session(method, config).execute().to_json())

        # Interrupt at round 2: capture, push through JSON, restore into a
        # *fresh* session (new algorithm instance, freshly built clients).
        partial = make_session(method, config)
        partial.run_until(2)
        state = partial.capture_state()
        revived = state_through_json(state)
        assert_exact(revived.to_json(), state.to_json())
        assert revived.round_index == 2

        resumed = make_session(method, config)
        resumed.restore_state(revived)
        assert json.dumps(resumed.execute().to_json()) == reference


@pytest.mark.parametrize("method", ["scaffold", "calibre-simclr"])
@pytest.mark.parametrize("backend", ["thread", "process"])
class TestResumeAcrossBackends:
    def test_resume_matches_serial_uninterrupted(self, method, backend):
        """A checkpoint taken under serial resumes bitwise under every
        backend (and vice versa: state is backend-independent)."""
        config = tiny_config(clients_per_round=4)
        reference = json.dumps(make_session(method, config).execute().to_json())

        partial = make_session(method, config, backend=backend)
        partial.run_until(1)
        state = state_through_json(partial.capture_state())
        partial.close()

        resumed = make_session(method, config, backend=backend)
        resumed.restore_state(state)
        assert json.dumps(resumed.execute().to_json()) == reference


class TestCheckpointFiles:
    def test_save_load_file_round_trip(self, tmp_path):
        config = tiny_config()
        session = make_session("scaffold", config)
        session.run_until(2)
        path = session.save_checkpoint(tmp_path / "ckpt.json")
        fresh = make_session("scaffold", config)
        state = fresh.load_checkpoint(path)
        assert state.round_index == 2
        assert fresh.round_index == 2
        assert json.dumps(fresh.capture_state().to_json()) == \
            json.dumps(session.capture_state().to_json())

    def test_checkpoint_bytes_are_deterministic(self, tmp_path):
        config = tiny_config()
        session = make_session("calibre-simclr", config)
        session.run_until(1)
        first = session.save_checkpoint(tmp_path / "a.json").read_bytes()
        second = session.save_checkpoint(tmp_path / "b.json").read_bytes()
        assert first == second

    def test_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="schema"):
            ServerState.from_json({"schema": 999, "algorithm": "x",
                                   "round_index": 0})
