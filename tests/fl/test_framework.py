"""Tests for the FL framework: config, clients, sampler, history, personalization."""

import numpy as np
import pytest

from repro.data import make_cifar10_like, make_stl10_like, partition_dirichlet
from repro.fl import (
    ClientData,
    FederatedConfig,
    PAPER_CONFIG,
    RandomSampler,
    RoundRobinSampler,
    RunResult,
    build_federation,
    build_novel_clients,
    derive_rng,
    evaluate_linear_head,
    train_linear_probe,
)


def small_dataset(seed=0, unlabeled=0):
    factory = make_stl10_like if unlabeled else make_cifar10_like
    kwargs = dict(image_size=8, train_per_class=20, test_per_class=4, seed=seed)
    if unlabeled:
        kwargs["unlabeled_size"] = unlabeled
    return factory(**kwargs)


def small_federation(num_clients=4, seed=0, unlabeled=0):
    dataset = small_dataset(seed=seed, unlabeled=unlabeled)
    parts = partition_dirichlet(dataset.train.labels, num_clients, 0.5,
                                samples_per_client=30,
                                rng=np.random.default_rng(seed))
    return dataset, build_federation(dataset, parts, seed=seed)


class TestConfig:
    def test_paper_config_matches_section_va(self):
        assert PAPER_CONFIG.num_clients == 100
        assert PAPER_CONFIG.clients_per_round == 10
        assert PAPER_CONFIG.rounds == 200
        assert PAPER_CONFIG.local_epochs == 3
        assert PAPER_CONFIG.personalization_epochs == 10
        assert PAPER_CONFIG.personalization_lr == 0.05
        assert PAPER_CONFIG.num_novel_clients == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(num_clients=0)
        with pytest.raises(ValueError):
            FederatedConfig(num_clients=4, clients_per_round=5)
        with pytest.raises(ValueError):
            FederatedConfig(local_epochs=0)
        with pytest.raises(ValueError):
            FederatedConfig(test_fraction=1.5)
        with pytest.raises(ValueError):
            FederatedConfig(learning_rate=0.0)

    def test_with_overrides(self):
        config = FederatedConfig(rounds=5).with_overrides(rounds=7)
        assert config.rounds == 7


class TestFederationBuilding:
    def test_clients_have_disjoint_train_test(self):
        dataset, clients = small_federation()
        for client in clients:
            assert len(client.train) > 0
            assert len(client.test) > 0

    def test_client_count(self):
        _, clients = small_federation(num_clients=5)
        assert len(clients) == 5
        assert [c.client_id for c in clients] == list(range(5))

    def test_unlabeled_shards_distributed(self):
        dataset, clients = small_federation(unlabeled=40)
        total_unlabeled = sum(len(c.unlabeled) for c in clients)
        assert total_unlabeled == 40

    def test_ssl_pool_includes_unlabeled(self):
        _, clients = small_federation(unlabeled=40)
        client = clients[0]
        pool = client.ssl_pool()
        assert len(pool) == len(client.train) + len(client.unlabeled)

    def test_ssl_pool_without_unlabeled_is_train(self):
        _, clients = small_federation()
        pool = clients[0].ssl_pool()
        assert len(pool) == len(clients[0].train)

    def test_novel_clients_flagged_and_offset(self):
        dataset = small_dataset()

        def partition_fn(labels, n, rng):
            return partition_dirichlet(labels, n, 0.5, samples_per_client=20, rng=rng)

        novel = build_novel_clients(dataset, 3, partition_fn)
        assert len(novel) == 3
        assert all(c.is_novel for c in novel)
        assert all(c.client_id >= 10_000 for c in novel)

    def test_zero_novel_clients(self):
        dataset = small_dataset()
        assert build_novel_clients(dataset, 0, None) == []

    def test_derive_rng_deterministic_and_distinct(self):
        a = derive_rng(0, 1, 2).standard_normal(4)
        b = derive_rng(0, 1, 2).standard_normal(4)
        c = derive_rng(0, 1, 3).standard_normal(4)
        np.testing.assert_array_equal(a, b)
        assert not np.allclose(a, c)


class TestSamplers:
    def make_clients(self, n=6):
        return [ClientData(client_id=i,
                           train=small_dataset().train.subset(np.arange(4)),
                           test=small_dataset().test.subset(np.arange(2)))
                for i in range(n)]

    def test_random_sampler_size_and_distinct(self):
        clients = self.make_clients()
        sampler = RandomSampler(3, seed=0)
        chosen = sampler.sample(clients, 0)
        assert len(chosen) == 3
        assert len({c.client_id for c in chosen}) == 3

    def test_random_sampler_deterministic(self):
        clients = self.make_clients()
        ids_a = [c.client_id for c in RandomSampler(3, seed=5).sample(clients, 0)]
        ids_b = [c.client_id for c in RandomSampler(3, seed=5).sample(clients, 0)]
        assert ids_a == ids_b

    def test_random_sampler_pure_in_round_index(self):
        # The determinism contract (repro.fl.execution): the participant
        # set is a function of (seed, round_index), never of call order.
        clients = self.make_clients()

        def ids(sampler, round_index):
            return [c.client_id for c in sampler.sample(clients, round_index)]

        forward = RandomSampler(3, seed=7)
        shuffled = RandomSampler(3, seed=7)
        by_round = {r: ids(forward, r) for r in range(4)}
        for round_index in (2, 0, 3, 1, 2):  # out of order, with a repeat
            assert ids(shuffled, round_index) == by_round[round_index]

    def test_random_sampler_varies_across_rounds(self):
        clients = self.make_clients()
        sampler = RandomSampler(3, seed=0)
        draws = {tuple(c.client_id for c in sampler.sample(clients, r))
                 for r in range(8)}
        assert len(draws) > 1

    def test_random_sampler_validates(self):
        with pytest.raises(ValueError):
            RandomSampler(0)
        with pytest.raises(ValueError):
            RandomSampler(9).sample(self.make_clients(3), 0)

    def test_round_robin_covers_all(self):
        clients = self.make_clients(6)
        sampler = RoundRobinSampler(2)
        seen = set()
        for round_index in range(3):
            seen.update(c.client_id for c in sampler.sample(clients, round_index))
        assert seen == set(range(6))


class TestRunResult:
    def test_summary_metrics(self):
        result = RunResult(algorithm="x", accuracies={0: 0.5, 1: 0.9})
        assert result.mean_accuracy == pytest.approx(0.7)
        assert result.accuracy_variance == pytest.approx(0.04)
        assert result.accuracy_std == pytest.approx(0.2)

    def test_novel_metrics(self):
        result = RunResult(algorithm="x", accuracies={0: 0.5},
                           novel_accuracies={10: 0.25, 11: 0.75})
        assert result.novel_mean_accuracy() == pytest.approx(0.5)
        assert "novel_mean_accuracy" in result.summary()

    def test_empty(self):
        result = RunResult(algorithm="x", accuracies={})
        assert result.mean_accuracy == 0.0


class TestLinearProbe:
    def make_features(self, n_per=30, d=8, seed=0):
        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((3, d)) * 4.0
        features = np.concatenate([centers[k] + rng.standard_normal((n_per, d))
                                   for k in range(3)])
        labels = np.repeat(np.arange(3), n_per)
        perm = rng.permutation(labels.shape[0])
        return features[perm], labels[perm]

    def test_probe_learns_separable_features(self):
        features, labels = self.make_features()
        result = train_linear_probe(features, labels, features, labels, 3,
                                    epochs=10, rng=np.random.default_rng(0))
        assert result.accuracy > 0.9
        assert result.train_accuracy > 0.9
        assert len(result.losses) == 10
        assert result.losses[-1] < result.losses[0]

    def test_probe_validates_input(self):
        with pytest.raises(ValueError):
            train_linear_probe(np.zeros((0, 4)), np.zeros(0), np.zeros((2, 4)),
                               np.zeros(2), 3)
        with pytest.raises(ValueError):
            train_linear_probe(np.zeros((3, 4)), np.zeros(2), np.zeros((2, 4)),
                               np.zeros(2), 3)

    def test_probe_continues_from_existing_head(self):
        features, labels = self.make_features(seed=1)
        first = train_linear_probe(features, labels, features, labels, 3,
                                   epochs=5, rng=np.random.default_rng(1))
        second = train_linear_probe(features, labels, features, labels, 3,
                                    epochs=5, rng=np.random.default_rng(2),
                                    head=first.head)
        assert second.accuracy >= first.accuracy - 0.05

    def test_evaluate_empty_features(self):
        features, labels = self.make_features(seed=2)
        result = train_linear_probe(features, labels, features, labels, 3,
                                    epochs=1, rng=np.random.default_rng(0))
        assert evaluate_linear_head(result.head, np.zeros((0, 8)), np.zeros(0)) == 0.0
