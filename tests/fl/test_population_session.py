"""Integration tests: TrainingSession over a VirtualPopulation.

Covers the population-plane session contracts from docs/population.md:
bitwise backend equivalence under churn, O(active) realization, resume
purity of the availability cursor, default-omitted config fingerprints,
population-wide personalization under the residency budget, and the
empty-round EarlyStopping guard.
"""

import json

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageDataset
from repro.eval.harness import make_encoder_factory
from repro.eval.registry import build_method
from repro.fl import (
    AvailabilitySpec,
    EarlyStopping,
    FederatedConfig,
    RoundRecord,
    TrainingSession,
    VirtualPopulation,
    read_checkpoint,
)
from repro.fl.session.events import RoundEnd
from repro.runs.serialize import DEFAULT_OMITTED_FIELDS, config_to_jsonable
from repro.telemetry import Tracer

CHURN = AvailabilitySpec(availability=0.6, churn=0.4, dropout=0.15,
                         speed_spread=0.3)


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(num_classes=4, train_per_class=80,
                                 test_per_class=10, seed=3)


def build_session(dataset, *, num_clients=60, backend="serial",
                  availability=CHURN, aggregation="sync", rounds=3,
                  clients_per_round=5, max_resident=8, seed=5,
                  tracer=None, **config_overrides):
    config = FederatedConfig(
        num_clients=num_clients, clients_per_round=clients_per_round,
        rounds=rounds, local_epochs=1, batch_size=8, backend=backend,
        availability=availability, aggregation=aggregation,
        personalization_epochs=1, seed=seed, **config_overrides)
    factory = make_encoder_factory("mlp", dataset, hidden_dims=(16, 8),
                                   seed=7)
    algorithm = build_method("fedavg", config, dataset.num_classes, factory)
    population = VirtualPopulation(dataset, num_clients=num_clients,
                                   samples_per_client=12, seed=seed,
                                   max_resident=max_resident)
    session = TrainingSession(algorithm, population, config, tracer=tracer)
    return session, population


def state_snapshot(session):
    return {name: np.asarray(value).copy()
            for name, value in session.global_state.items()}


def records_json(session):
    return json.dumps([record.to_json()
                       for record in session.round_records],
                      sort_keys=True)


def test_churned_run_bitwise_across_backends(dataset):
    results = {}
    for backend in ("serial", "thread", "process"):
        session, population = build_session(dataset, backend=backend)
        try:
            session.run()
            results[backend] = (state_snapshot(session),
                                records_json(session))
        finally:
            session.close()
            population.close()
    serial_state, serial_records = results["serial"]
    for backend in ("thread", "process"):
        state, records = results[backend]
        for name in serial_state:
            np.testing.assert_array_equal(
                serial_state[name], state[name],
                err_msg=f"{name} differs serial vs {backend}")
        assert records == serial_records, \
            f"round records differ serial vs {backend}"
    # Churn actually engaged: some round lost a sampled client to dropout.
    parsed = json.loads(serial_records)
    assert any(record["metrics"].get("dropouts") for record in parsed)


def test_only_sampled_clients_realized(dataset):
    tracer = Tracer()
    with tracer.activate():
        session, population = build_session(
            dataset, tracer=tracer, max_resident=32,
            availability=AvailabilitySpec(availability=0.6, churn=0.4))
        session.run()
    sampled = {pid for record in session.round_records
               for pid in record.participant_ids}
    # Every realization was for a sampled participant — never the whole
    # population — and the LRU kept residency at the budget.
    assert population.realized_total == len(sampled)
    assert population.realized_total < len(population)
    assert population.resident_count <= 32
    assert tracer.counters["population.realized"] == len(sampled)
    population.close()


def test_population_counters_and_staleness(dataset):
    tracer = Tracer()
    with tracer.activate():
        session, population = build_session(
            dataset, tracer=tracer, aggregation="staleness",
            availability=AvailabilitySpec(availability=0.8, churn=0.3,
                                          dropout=0.4, speed_spread=0.5))
        session.run()
    assert tracer.counters.get("round.dropouts", 0) >= 1
    assert "aggregate.staleness" in tracer.counters
    assert tracer.counters["population.realized"] >= 1
    population.close()


def test_resume_bitwise_under_churn(dataset, tmp_path):
    checkpoint = tmp_path / "mid.ckpt.json"

    reference, ref_population = build_session(dataset)
    reference.run()
    expected_state = state_snapshot(reference)
    expected_records = records_json(reference)
    ref_population.close()

    first, first_population = build_session(dataset)
    first.run_until(1)
    first.save_checkpoint(checkpoint)
    first_population.close()

    # The availability model's cursor (the last round whose membership
    # was drawn) rides in the checkpoint: resuming replays the chain
    # from round 0 and lands on the same draws.
    assert read_checkpoint(checkpoint).availability_state == \
        {"round_cursor": 0}

    resumed, resumed_population = build_session(dataset)
    resumed.load_checkpoint(checkpoint)
    resumed.run()
    for name in expected_state:
        np.testing.assert_array_equal(expected_state[name],
                                      resumed.global_state[name])
    assert records_json(resumed) == expected_records
    resumed_population.close()


def test_default_config_omits_population_knobs():
    plain = config_to_jsonable(FederatedConfig(num_clients=8, rounds=2))
    for name in DEFAULT_OMITTED_FIELDS:
        assert name not in plain, \
            f"default-valued {name} must not enter fingerprints"
    churned = config_to_jsonable(FederatedConfig(
        num_clients=8, rounds=2, availability=CHURN,
        aggregation="buffered", aggregation_buffer=4))
    assert churned["aggregation"] == "buffered"
    assert churned["aggregation_buffer"] == 4
    assert churned["availability"]["dropout"] == CHURN.dropout
    assert json.dumps(plain, sort_keys=True) != \
        json.dumps(churned, sort_keys=True)


def test_execute_personalizes_whole_population_bounded(dataset):
    session, population = build_session(
        dataset, num_clients=20, rounds=1, clients_per_round=4,
        max_resident=6)
    result = session.execute()
    # The personalization stage is population-wide (every client gets a
    # personalized accuracy) but realizes in max_resident-sized chunks.
    assert sorted(result.accuracies) == list(range(20))
    assert population.resident_count <= 6
    population.close()


def test_early_stopping_skips_empty_rounds():
    class StopProbe:
        stopped = False

        def request_stop(self):
            self.stopped = True

    def round_end(index, participants, loss):
        record = RoundRecord(round_index=index, participant_ids=participants,
                             mean_loss=loss)
        return RoundEnd(round_index=index, record=record)

    probe = StopProbe()
    stopper = EarlyStopping(patience=1)
    stopper.on_round_end(probe, round_end(0, [1, 2], 1.0))
    # A churned-empty round neither improves nor consumes patience.
    stopper.on_round_end(probe, round_end(1, [], 0.0))
    assert not probe.stopped
    stopper.on_round_end(probe, round_end(2, [1, 2], 1.0))
    assert probe.stopped
    assert stopper.stopped_round == 2
