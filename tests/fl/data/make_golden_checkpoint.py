"""Regenerate the golden legacy (schema-1) checkpoint fixture.

Run from the repo root::

    PYTHONPATH=src:. python tests/fl/data/make_golden_checkpoint.py

The fixture pins the pre-columnar on-disk format: a scaffold session,
interrupted after round 2, written as inline-JSON (``arrays="json"``).
``TestGoldenLegacyCheckpoint`` asserts it still reads and resumes
bitwise, so regenerate it *only* when the training math legitimately
changes — never to paper over a checkpoint-format regression.
"""

from pathlib import Path

from repro.fl.session import write_checkpoint

from tests.fl.test_checkpoint_roundtrip import golden_session

OUT = Path(__file__).parent / "golden_checkpoint_schema1.json"


def main() -> None:
    session = golden_session()
    session.run_until(2)
    written = write_checkpoint(session.capture_state(), OUT, arrays="json")
    print(f"wrote {written} ({written.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
