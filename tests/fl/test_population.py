"""Unit tests for the virtual-population plane (repro.fl.population):
descriptors, lazy realization, the LRU residency budget, the
availability model, and the buffered/staleness aggregation policies."""

import pickle

import numpy as np
import pytest

from repro.data import (
    DataSplitHandle,
    make_cifar10_like,
    partition_iid,
    shared_memory_available,
)
from repro.fl import (
    AvailabilitySpec,
    ClientDescriptor,
    ClientUpdate,
    FederatedAlgorithm,
    FederatedConfig,
    RandomSampler,
    RoundRobinSampler,
    UpdateAccumulator,
    VirtualPopulation,
    build_federation,
)
from repro.fl.population import (
    AvailabilityModel,
    BufferedAccumulator,
    simulated_completion_order,
)


@pytest.fixture(scope="module")
def dataset():
    return make_cifar10_like(image_size=8, train_per_class=12,
                             test_per_class=2, seed=0)


def make_population(dataset, **overrides):
    kwargs = dict(num_clients=20, samples_per_client=12, seed=5,
                  max_resident=4)
    kwargs.update(overrides)
    return VirtualPopulation(dataset, **kwargs)


# ----------------------------------------------------------------------
# VirtualPopulation
# ----------------------------------------------------------------------
class TestVirtualPopulation:
    def test_requires_exactly_one_construction_mode(self, dataset):
        with pytest.raises(ValueError, match="exactly one"):
            VirtualPopulation(dataset)
        with pytest.raises(ValueError, match="exactly one"):
            VirtualPopulation(dataset, num_clients=3,
                              partitions=[np.arange(4)])

    def test_validates_parameters(self, dataset):
        with pytest.raises(ValueError, match="samples_per_client"):
            make_population(dataset, samples_per_client=2)
        with pytest.raises(ValueError, match="test_fraction"):
            make_population(dataset, test_fraction=1.0)
        with pytest.raises(ValueError, match="max_resident"):
            make_population(dataset, max_resident=0)
        with pytest.raises(ValueError, match="at least one"):
            make_population(dataset, num_clients=0)

    def test_ids_are_a_range_and_bounds_checked(self, dataset):
        population = make_population(dataset)
        assert len(population) == 20
        assert population.client_ids == range(20)
        with pytest.raises(KeyError, match="outside population"):
            population.realize(20)
        with pytest.raises(KeyError, match="outside population"):
            population.descriptor(-1)

    def test_million_clients_cost_descriptors_only(self, dataset):
        # Derived mode stores no per-client state: constructing a huge
        # population is O(1) and unrealized clients pickle tiny.
        population = VirtualPopulation(dataset, num_clients=1_000_000,
                                       samples_per_client=8, seed=5)
        descriptor = population.descriptor(734_211)
        assert isinstance(descriptor, ClientDescriptor)
        assert population.payload_nbytes(734_211) < 512
        assert population.resident_count == 0

    def test_realization_is_pure_across_eviction(self, dataset):
        population = make_population(dataset, max_resident=2)
        first = population.realize(3)
        images = first.train.images.copy()
        labels = first.train.labels.copy()
        for client_id in (4, 5, 6):  # push client 3 out of the LRU
            population.realize(client_id)
        assert not population.is_resident(3)
        again = population.realize(3)
        np.testing.assert_array_equal(again.train.images, images)
        np.testing.assert_array_equal(again.train.labels, labels)

    def test_lru_budget_with_round_pinning(self, dataset):
        population = make_population(dataset, max_resident=2)
        clients = population.realize_round([0, 1, 2, 3])
        assert len(clients) == 4
        # Pinned participants overshoot the budget for the round...
        assert population.resident_count == 4
        population.end_round()
        # ...and end_round trims back down.
        assert population.resident_count == 2
        assert population.realized_total == 4
        assert population.evicted_total == 2

    def test_store_survives_eviction(self, dataset):
        population = make_population(dataset, max_resident=1)
        client = population.realize(7)
        client.store["proto"] = np.arange(3.0)
        population.realize(8)  # evicts 7
        assert not population.is_resident(7)
        np.testing.assert_array_equal(
            population.client_store(7)["proto"], np.arange(3.0))
        np.testing.assert_array_equal(
            population.realize(7).store["proto"], np.arange(3.0))

    def test_payload_nbytes_descriptor_vs_realized(self, dataset):
        population = make_population(dataset)
        unrealized = population.payload_nbytes(0)
        assert unrealized == len(pickle.dumps(
            population.descriptor(0), protocol=pickle.HIGHEST_PROTOCOL))
        population.realize(0)
        assert population.payload_nbytes(0) > 10 * unrealized

    def test_context_payload_is_o1_in_derived_mode(self, dataset):
        payload = make_population(dataset).context_payload()
        assert payload["population"] == 20
        assert "partitions_sha256" not in payload

    def test_explicit_partitions_fingerprint_and_realize(self, dataset):
        parts = partition_iid(dataset.train.labels, 4,
                              np.random.default_rng(0))
        population = VirtualPopulation(dataset, partitions=parts, seed=5)
        payload = population.context_payload()
        assert len(payload["partitions_sha256"]) == 16
        other = VirtualPopulation(dataset, partitions=parts[::-1], seed=5)
        assert payload["partitions_sha256"] != \
            other.context_payload()["partitions_sha256"]
        client = population.realize(1)
        assert len(client.train) + len(client.test) == len(parts[1])

    def test_close_is_idempotent_and_context_manager(self, dataset):
        with make_population(dataset) as population:
            population.realize(0)
        assert population.resident_count == 0
        population.close()  # idempotent


# ----------------------------------------------------------------------
# Samplers: the id-based surface
# ----------------------------------------------------------------------
class TestSamplerIdSurface:
    def test_sample_ids_matches_sample(self, dataset):
        clients = build_federation(
            dataset, partition_iid(dataset.train.labels, 8,
                                   np.random.default_rng(0)), seed=2)
        for sampler in (RandomSampler(3, seed=5), RoundRobinSampler(3)):
            for round_index in range(4):
                by_obj = [c.client_id for c in
                          sampler.sample(clients, round_index)]
                by_id = sampler.sample_ids(
                    [c.client_id for c in clients], round_index)
                assert by_obj == by_id

    def test_random_sampler_count_clamping(self):
        sampler = RandomSampler(5, seed=0)
        assert sampler.sample_ids(range(10), 0, count=0) == []
        with pytest.raises(ValueError, match="cannot sample"):
            sampler.sample_ids(range(3), 0)
        clamped = sampler.sample_ids(range(3), 0, count=3)
        assert sorted(clamped) == clamped and len(clamped) == 3

    def test_round_robin_stride_is_availability_independent(self):
        sampler = RoundRobinSampler(4)
        # Shrinking the per-round count must not change the rotation
        # start: round r always begins at (r * self.count) % n.
        full = sampler.sample_ids(range(10), 2)
        clamped = sampler.sample_ids(range(10), 2, count=2)
        assert clamped == full[:2]


# ----------------------------------------------------------------------
# AvailabilityModel
# ----------------------------------------------------------------------
class TestAvailabilityModel:
    def test_stationary_online_fraction(self):
        spec = AvailabilitySpec(availability=0.5, churn=0.3)
        model = AvailabilityModel(spec, num_clients=4000, seed=1)
        for round_index in (0, 5):
            online = model.available_positions(round_index)
            assert abs(len(online) / 4000 - 0.5) < 0.05

    def test_zero_churn_freezes_membership(self):
        spec = AvailabilitySpec(availability=0.5, churn=0.0)
        model = AvailabilityModel(spec, num_clients=200, seed=1)
        first = model.available_positions(0)
        np.testing.assert_array_equal(first, model.available_positions(7))

    def test_rewind_replays_identically(self):
        spec = AvailabilitySpec(availability=0.6, churn=0.4)
        forward = AvailabilityModel(spec, num_clients=100, seed=2)
        expected = forward.available_positions(3).copy()
        rewound = AvailabilityModel(spec, num_clients=100, seed=2)
        rewound.available_positions(9)
        np.testing.assert_array_equal(rewound.available_positions(3),
                                      expected)

    def test_state_dict_round_trip(self):
        spec = AvailabilitySpec(availability=0.6, churn=0.4)
        model = AvailabilityModel(spec, num_clients=100, seed=2)
        model.available_positions(4)
        state = model.state_dict()
        assert state == {"round_cursor": 4}
        restored = AvailabilityModel(spec, num_clients=100, seed=2)
        restored.load_state_dict(state)
        np.testing.assert_array_equal(restored.available_positions(5),
                                      model.available_positions(5))

    def test_dropout_is_pure_and_gated(self):
        quiet = AvailabilityModel(AvailabilitySpec(availability=0.5),
                                  num_clients=10, seed=3)
        assert not any(quiet.drops_out(cid, 0) for cid in range(10))
        noisy = AvailabilityModel(
            AvailabilitySpec(availability=0.5, dropout=0.5),
            num_clients=10, seed=3)
        draws = [noisy.drops_out(cid, 1) for cid in range(10)]
        assert draws == [noisy.drops_out(cid, 1) for cid in range(10)]
        assert any(draws)

    def test_speed_multipliers(self):
        flat = AvailabilityModel(AvailabilitySpec(availability=0.5),
                                 num_clients=4, seed=3)
        assert flat.speed_multipliers(range(4)) == [1.0] * 4
        spread = AvailabilityModel(
            AvailabilitySpec(availability=0.5, speed_spread=0.5),
            num_clients=4, seed=3)
        speeds = spread.speed_multipliers(range(4))
        assert all(s > 0.0 for s in speeds)
        assert len(set(speeds)) > 1
        assert speeds == spread.speed_multipliers(range(4))


# ----------------------------------------------------------------------
# Buffered/staleness aggregation semantics
# ----------------------------------------------------------------------
class RecordingAlgorithm(FederatedAlgorithm):
    """Captures the weights each aggregate() call receives."""

    name = "recording"

    def __init__(self):
        super().__init__(FederatedConfig(), num_classes=2)
        self.seen_weights = []

    def aggregate(self, updates, global_state, round_index):
        self.seen_weights.append([u.weight for u in updates])
        return super().aggregate(updates, global_state, round_index)


def make_update(position, value, weight=1.0):
    return ClientUpdate(client_id=position, state={"w": np.full(2, value)},
                        weight=weight)


class TestBufferedAccumulator:
    def test_completion_order_breaks_ties_by_position(self):
        assert simulated_completion_order([2.0, 1.0, 1.0]) == [1, 2, 0]
        assert simulated_completion_order([1.0, 1.0]) == [0, 1]

    def test_full_buffer_single_flush_equals_sync(self):
        algorithm = RecordingAlgorithm()
        zero = {"w": np.zeros(2)}
        sync = UpdateAccumulator(algorithm, zero, round_index=0)
        buffered = BufferedAccumulator(algorithm, zero, round_index=0,
                                       buffer_size=8, staleness_decay=0.5)
        for position in range(3):
            update = make_update(position, float(position), weight=position + 1)
            sync.add(position, update)
            buffered.add(position, update)
        np.testing.assert_array_equal(buffered.finalize()["w"],
                                      sync.finalize()["w"])
        assert buffered.total_staleness() == 0

    def test_staleness_assignment_and_weight_decay(self):
        algorithm = RecordingAlgorithm()
        accumulator = BufferedAccumulator(
            algorithm, {"w": np.zeros(2)}, round_index=0,
            buffer_size=1, staleness_decay=1.0,
            durations={0: 3.0, 1: 1.0, 2: 2.0})
        for position in range(3):
            accumulator.add(position, make_update(position, 1.0, weight=4.0))
        accumulator.finalize()
        # Arrival order by duration: position 1, then 2, then 0.
        assert accumulator.staleness_by_position == {1: 0, 2: 1, 0: 2}
        assert accumulator.total_staleness() == 3
        # Each flush scales its updates' weights by (1 + f) ** -decay.
        assert algorithm.seen_weights == [[4.0], [2.0], [4.0 / 3.0]]

    def test_sequential_mixing_math(self):
        algorithm = RecordingAlgorithm()
        accumulator = BufferedAccumulator(
            algorithm, {"w": np.zeros(2)}, round_index=0,
            buffer_size=1, staleness_decay=0.0,
            durations={0: 1.0, 1: 2.0})
        accumulator.add(0, make_update(0, 6.0))
        accumulator.add(1, make_update(1, 3.0))
        final = accumulator.finalize()["w"]
        # Flush 1: state = 0.5*0 + 0.5*6 = 3; flush 2: 0.5*3 + 0.5*3 = 3.
        np.testing.assert_allclose(final, np.full(2, 3.0))

    def test_empty_round_returns_global_state(self):
        state = {"w": np.arange(2.0)}
        accumulator = BufferedAccumulator(
            RecordingAlgorithm(), state, round_index=0,
            buffer_size=2, staleness_decay=0.5)
        assert accumulator.finalize() is state

    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="buffer_size"):
            BufferedAccumulator(RecordingAlgorithm(), {}, 0,
                                buffer_size=0, staleness_decay=0.5)
        with pytest.raises(ValueError, match="staleness_decay"):
            BufferedAccumulator(RecordingAlgorithm(), {}, 0,
                                buffer_size=1, staleness_decay=-0.1)


# ----------------------------------------------------------------------
# Shared-memory composition
# ----------------------------------------------------------------------
@pytest.mark.skipif(not shared_memory_available(),
                    reason="no shared memory in this environment")
class TestPopulationSharedMemory:
    def test_segments_bounded_and_released_on_eviction(self, dataset):
        population = make_population(dataset, max_resident=2)
        assert population.enable_shared_memory()
        for client_id in range(5):
            population.realize(client_id)
        assert population.shared_segment_count <= 2
        names = [segment.name
                 for segment in population._segments.values()]
        population.close()
        assert population.shared_segment_count == 0
        from multiprocessing import shared_memory
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_worker_side_views_are_read_only(self, dataset):
        population = make_population(dataset)
        assert population.enable_shared_memory()
        client = population.realize(0)
        assert isinstance(client.train, DataSplitHandle)
        replica = pickle.loads(pickle.dumps(
            client, protocol=pickle.HIGHEST_PROTOCOL))
        assert not replica.train.images.flags.writeable
        np.testing.assert_array_equal(replica.train.images,
                                      client.train.images)
        population.close()
