"""Execution backends: determinism across backends, fallback, validation."""

import pickle
import warnings

import numpy as np
import pytest

from repro.eval import build_method, make_dataset, make_encoder_factory
from repro.eval.harness import NonIIDSetting, make_partitions
from repro.fl import (
    FederatedConfig,
    FederatedServer,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    build_federation,
    derive_client_rng,
    payload_nbytes,
    resolve_backend,
)
from repro.fl.execution import ExecutionError, chunk_items, resolve_workers


def _double(x):
    return 2 * x


def _explode(x):
    raise ValueError(f"task failure on item {x}")


# ----------------------------------------------------------------------
# Backend mechanics
# ----------------------------------------------------------------------
def test_serial_backend_maps_in_order():
    assert SerialBackend().map_clients(_double, range(7)) == [0, 2, 4, 6, 8, 10, 12]


def test_thread_backend_preserves_input_order():
    backend = ThreadBackend(workers=3, chunk_size=2)
    assert backend.map_clients(_double, range(11)) == [2 * i for i in range(11)]


def test_process_backend_maps_and_reuses_pool():
    with ProcessBackend(workers=2) as backend:
        assert backend.map_clients(_double, range(5)) == [0, 2, 4, 6, 8]
        # Second dispatch reuses the live pool.
        assert backend.map_clients(_double, range(3)) == [0, 2, 4]


@pytest.mark.parametrize("backend_cls", [SerialBackend, ThreadBackend,
                                         ProcessBackend])
def test_imap_yields_every_index_exactly_once(backend_cls):
    with backend_cls(workers=3, chunk_size=2) as backend:
        pairs = list(backend.imap_clients(_double, range(11)))
    # Completion order is backend-specific; the (index, result) pairing
    # must reassemble into exactly the serial result.
    assert sorted(index for index, _ in pairs) == list(range(11))
    results = [None] * 11
    for index, result in pairs:
        results[index] = result
    assert results == [2 * i for i in range(11)]


def test_serial_imap_is_lazy():
    """The serial generator interleaves consumption with execution — the
    property that lets aggregation start before the round barrier."""
    executed = []

    def task(x):
        executed.append(x)
        return x

    iterator = SerialBackend().imap_clients(task, range(4))
    assert executed == []
    assert next(iterator) == (0, 0)
    assert executed == [0]
    assert next(iterator) == (1, 1)
    assert executed == [0, 1]


def test_process_imap_falls_back_on_unpicklable_task():
    unpicklable = lambda x: 2 * x  # noqa: E731 — closures cannot pickle
    with ProcessBackend(workers=2) as backend, \
            pytest.warns(RuntimeWarning, match="falling back"):
        pairs = list(backend.imap_clients(unpicklable, range(5)))
    assert pairs == [(i, 2 * i) for i in range(5)]


def test_imap_task_exceptions_propagate():
    for backend_cls in (SerialBackend, ThreadBackend):
        with backend_cls(workers=2, chunk_size=1) as backend, \
                pytest.raises(ValueError, match="task failure"):
            list(backend.imap_clients(_explode, range(4)))


def test_chunk_items_covers_everything_in_order():
    chunks = chunk_items(list(range(10)), workers=3)
    assert [x for chunk in chunks for x in chunk] == list(range(10))
    assert all(chunks)
    assert chunk_items([], workers=4) == []
    assert chunk_items(list(range(5)), workers=2, chunk_size=1) == [[i] for i in range(5)]
    with pytest.raises(ValueError):
        chunk_items([1, 2], workers=2, chunk_size=0)


def test_derive_client_rng_is_pure():
    a = derive_client_rng(0, 3, 7).standard_normal(4)
    b = derive_client_rng(0, 3, 7).standard_normal(4)
    c = derive_client_rng(0, 3, 8).standard_normal(4)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown execution backend"):
        resolve_backend("gpu-farm")
    with pytest.raises(ValueError, match="ExecutionBackend"):
        resolve_backend(42)


def test_resolve_backend_accepts_names_and_instances():
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("THREAD", workers=2), ThreadBackend)
    backend = ProcessBackend(workers=1)
    assert resolve_backend(backend) is backend
    assert set(available_backends()) == {"serial", "thread", "process"}


@pytest.mark.parametrize("workers", [0, -1, 1.5, True])
def test_invalid_workers_rejected(workers):
    with pytest.raises(ValueError, match="workers"):
        resolve_workers(workers)


def test_config_validates_backend_and_workers():
    with pytest.raises(ValueError, match="unknown execution backend"):
        FederatedConfig(backend="bogus")
    with pytest.raises(ValueError, match="workers"):
        FederatedConfig(workers=0)
    config = FederatedConfig(backend="process", workers=2)
    assert config.backend == "process" and config.workers == 2


# ----------------------------------------------------------------------
# Fallback
# ----------------------------------------------------------------------
def test_process_backend_falls_back_to_serial_on_unpicklable_task():
    captured = []
    unpicklable = lambda x: x + 1  # noqa: E731 — lambdas cannot cross process boundaries
    backend = ProcessBackend(workers=2)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert backend.map_clients(unpicklable, [1, 2, 3]) == [2, 3, 4]
        captured = [w for w in caught if issubclass(w.category, RuntimeWarning)]
    assert captured and "falling back to serial" in str(captured[0].message)
    # Subsequent calls stay serial without warning again.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert backend.map_clients(unpicklable, [5]) == [6]
        assert not [w for w in caught if issubclass(w.category, RuntimeWarning)]


@pytest.mark.parametrize("backend_cls", [SerialBackend, ThreadBackend, ProcessBackend])
def test_task_exceptions_propagate_not_fallback(backend_cls):
    # A bug inside a client task is not backend unavailability: it must
    # surface identically under every backend, with no fallback warning.
    with backend_cls(workers=2) as backend, warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        with pytest.raises(ValueError, match="task failure"):
            backend.map_clients(_explode, [1, 2, 3])


def test_process_backend_raises_without_fallback():
    backend = ProcessBackend(workers=2, fallback=False)
    with pytest.raises(ExecutionError):
        backend.map_clients(lambda x: x, [1])


# ----------------------------------------------------------------------
# End-to-end determinism on a small CIFAR-like synthetic config
# ----------------------------------------------------------------------
TINY_CONFIG = FederatedConfig(
    num_clients=4, clients_per_round=4, rounds=2, local_epochs=1,
    batch_size=8, personalization_epochs=2, personalization_batch_size=8,
)


def _tiny_workload():
    dataset = make_dataset("cifar10", seed=0, image_size=8,
                           train_per_class=12, test_per_class=2)
    partitions = make_partitions(
        dataset.train.labels, TINY_CONFIG.num_clients,
        NonIIDSetting("iid", 0, 12), np.random.default_rng(1),
    )
    encoder_factory = make_encoder_factory("mlp", dataset, hidden_dims=(16, 8), seed=7)
    return dataset, partitions, encoder_factory


def _run_tiny(backend, workers=None, method="pfl-simclr"):
    dataset, partitions, encoder_factory = _tiny_workload()
    config = TINY_CONFIG.with_overrides(backend=backend, workers=workers)
    clients = build_federation(dataset, partitions, seed=2)
    algorithm = build_method(method, config, dataset.num_classes, encoder_factory,
                             projection_dim=8, hidden_dim=16)
    server = FederatedServer(algorithm, clients, config)
    with warnings.catch_warnings():
        # A silent fallback would make the "parallel" runs vacuous.
        warnings.simplefilter("error", RuntimeWarning)
        result = server.run()
    return result, clients


@pytest.mark.parametrize("backend,workers", [("thread", 2), ("process", 2)])
def test_parallel_backends_reproduce_serial_run(backend, workers):
    serial, _ = _run_tiny("serial")
    parallel, _ = _run_tiny(backend, workers)
    assert parallel.accuracies == serial.accuracies
    assert parallel.novel_accuracies == serial.novel_accuracies
    assert [r.mean_loss for r in parallel.rounds] == [r.mean_loss for r in serial.rounds]
    assert [r.participant_ids for r in parallel.rounds] == \
        [r.participant_ids for r in serial.rounds]


def test_process_backend_ships_store_mutations_back():
    # pfl-simclr persists per-client local SSL state; with every client
    # sampled each round, round 2 depends on stores written in round 1, so
    # identical losses (asserted above) require the write-back path.  Here
    # we additionally check the stores materialize on the coordinator side.
    _, clients = _run_tiny("process", workers=2)
    for client in clients:
        assert any(key.endswith("/local") for key in client.store), client.client_id
        assert payload_nbytes(client) > 0  # round-trips through pickle


def test_client_payloads_are_picklable():
    dataset, partitions, encoder_factory = _tiny_workload()
    clients = build_federation(dataset, partitions, seed=2)
    for client in clients:
        assert payload_nbytes(client) > 0
    pickle.loads(pickle.dumps(encoder_factory))()  # factories cross processes too
