"""Session-level telemetry: span taxonomy on every backend, counter
totals under cohort batching, and the observation-only contract (a traced
run's results are bitwise identical to an untraced run's)."""

import json

import numpy as np
import pytest

from repro.data import make_cifar10_like
from repro.eval import build_method
from repro.fl import FederatedConfig, TrainingSession, build_federation
from repro.nn import MLPEncoder
from repro.telemetry import Tracer

NUM_CLASSES = 10
IMAGE_SIZE = 6
INPUT_DIM = 3 * IMAGE_SIZE * IMAGE_SIZE


def encoder_factory():
    return MLPEncoder(INPUT_DIM, hidden_dims=(16, 8),
                      rng=np.random.default_rng(7))


def small_config(**overrides):
    defaults = dict(num_clients=4, clients_per_round=4, rounds=2,
                    local_epochs=1, batch_size=4, personalization_epochs=2,
                    seed=0)
    defaults.update(overrides)
    return FederatedConfig(**defaults)


def federation(config, samples_per_client=12, seed=0):
    """Single-class equal-size partitions (shape-homogeneous cohorts)."""
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=48,
                                test_per_class=4, seed=seed)
    labels = dataset.train.labels
    parts = [np.where(labels == c)[0][:samples_per_client]
             for c in range(config.num_clients)]
    return build_federation(dataset, parts, test_fraction=0.25, seed=seed)


def run_traced(name, config, tracer):
    clients = federation(config)
    algorithm = build_method(name, config, NUM_CLASSES, encoder_factory)
    session = TrainingSession(algorithm, clients, config, tracer=tracer)
    try:
        return session.execute()
    finally:
        session.close()


COORDINATOR_SPANS = ("session", "round", "sample", "dispatch", "aggregate",
                     "personalize")


class TestSpanTaxonomyAcrossBackends:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_full_taxonomy_on_every_backend(self, backend):
        tracer = Tracer()
        config = small_config(backend=backend, workers=2, client_batch=1)
        run_traced("fedavg", config, tracer)
        names = {span.name for span in tracer.spans}
        for expected in COORDINATOR_SPANS:
            assert expected in names, f"{backend}: missing span {expected}"
        assert "client_update" in names
        assert "client_personalize" in names

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_span_counts_match_the_schedule(self, backend):
        tracer = Tracer()
        config = small_config(backend=backend, workers=2, client_batch=1)
        run_traced("fedavg", config, tracer)
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)
        assert len(by_name["round"]) == config.rounds
        assert len(by_name["client_update"]) \
            == config.rounds * config.clients_per_round
        assert len(by_name["client_personalize"]) == config.num_clients
        assert len(by_name["session"]) == 1

    def test_client_spans_nest_under_dispatch_with_fresh_tids(self):
        tracer = Tracer()
        run_traced("fedavg", small_config(rounds=1, client_batch=1), tracer)
        index = {span.span_id: span for span in tracer.spans}
        updates = [span for span in tracer.spans
                   if span.name == "client_update"]
        assert updates
        for span in updates:
            assert index[span.parent_id].name == "dispatch"
            assert span.tid != 0
            assert span.attrs["round"] == 0
            assert "client_id" in span.attrs
        assert len({span.tid for span in updates}) == len(updates)

    def test_worker_spans_fit_inside_their_parent(self):
        tracer = Tracer()
        run_traced("fedavg", small_config(rounds=1, client_batch=1,
                                          backend="thread", workers=2),
                   tracer)
        index = {span.span_id: span for span in tracer.spans}
        for span in tracer.spans:
            if span.name in ("client_update", "client_personalize"):
                parent = index[span.parent_id]
                assert span.end <= parent.end + 1e-9


class TestObservationOnly:
    def test_traced_results_bitwise_equal_untraced(self):
        traced = run_traced("fedavg", small_config(), Tracer())
        untraced = run_traced("fedavg", small_config(), None)
        assert json.dumps(traced.to_json()) == json.dumps(untraced.to_json())

    def test_traced_results_bitwise_equal_across_backends(self):
        serial = run_traced("fedavg", small_config(client_batch=1), Tracer())
        thread = run_traced("fedavg",
                            small_config(client_batch=1, backend="thread",
                                         workers=2), Tracer())
        assert json.dumps(serial.to_json()) == json.dumps(thread.to_json())


class TestCohortCounters:
    def test_batched_run_counts_replays_and_cohort_spans(self):
        tracer = Tracer()
        run_traced("pfl-simclr", small_config(client_batch=None), tracer)
        names = {span.name for span in tracer.spans}
        assert "cohort_update" in names
        assert "client_update" not in names
        assert tracer.counters["trace.replays"] >= config_rounds()
        assert tracer.counters["trace.replay_clients"] \
            >= tracer.counters["trace.replays"]
        cohorts = [span for span in tracer.spans
                   if span.name == "cohort_update"]
        assert all(span.attrs["cohort_size"] > 1 for span in cohorts)

    def test_per_client_run_records_no_replay_counters(self):
        tracer = Tracer()
        run_traced("pfl-simclr", small_config(client_batch=1), tracer)
        names = {span.name for span in tracer.spans}
        assert "client_update" in names
        assert "cohort_update" not in names
        assert "trace.replays" not in tracer.counters

    def test_batching_never_changes_results_under_tracing(self):
        batched = run_traced("pfl-simclr", small_config(client_batch=None),
                             Tracer())
        per_client = run_traced("pfl-simclr", small_config(client_batch=1),
                                Tracer())
        assert json.dumps(batched.to_json()) \
            == json.dumps(per_client.to_json())


def config_rounds():
    return small_config().rounds
