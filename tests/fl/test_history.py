"""Round-trip tests for run bookkeeping serialization (history.py)."""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.history import RoundRecord, RunResult

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
accuracies = st.dictionaries(st.integers(min_value=0, max_value=10_000),
                             finite_floats, max_size=8)
metric_names = st.text(min_size=1, max_size=12)


round_records = st.builds(
    RoundRecord,
    round_index=st.integers(min_value=0, max_value=10_000),
    participant_ids=st.lists(st.integers(min_value=0, max_value=10_000), max_size=6),
    mean_loss=finite_floats,
    metrics=st.dictionaries(metric_names, finite_floats, max_size=4),
)

run_results = st.builds(
    RunResult,
    algorithm=st.text(min_size=1, max_size=16),
    accuracies=accuracies,
    novel_accuracies=accuracies,
    rounds=st.lists(round_records, max_size=3),
    extras=st.dictionaries(metric_names, finite_floats, max_size=4),
)


class TestRoundRecordRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(record=round_records)
    def test_exact_round_trip_through_json_text(self, record):
        payload = json.loads(json.dumps(record.to_json()))
        assert RoundRecord.from_json(payload) == record

    def test_numpy_scalars_are_coerced(self):
        record = RoundRecord(
            round_index=np.int64(3),
            participant_ids=[np.int64(1), np.int32(2)],
            mean_loss=np.float64(0.25),
            metrics={"non_finite_losses": np.float32(1.0)},
        )
        payload = record.to_json()
        assert type(payload["round_index"]) is int
        assert all(type(pid) is int for pid in payload["participant_ids"])
        assert type(payload["mean_loss"]) is float
        assert all(type(v) is float for v in payload["metrics"].values())
        json.dumps(payload)  # JSON-ready with no custom encoder


class TestRunResultRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(result=run_results)
    def test_exact_round_trip_through_json_text(self, result):
        # the full wire path: to_json -> dumps -> loads -> from_json
        clone = RunResult.from_json(json.loads(json.dumps(result.to_json())))
        assert clone.algorithm == result.algorithm
        assert clone.accuracies == result.accuracies
        assert clone.novel_accuracies == result.novel_accuracies
        assert clone.rounds == result.rounds
        assert clone.extras == result.extras

    def test_client_ids_stay_integers(self):
        result = RunResult(algorithm="x", accuracies={7: np.float64(0.5)})
        clone = RunResult.from_json(result.to_json())
        assert list(clone.accuracies) == [7]
        assert type(list(clone.accuracies)[0]) is int
        assert clone.accuracy_vector().tolist() == [0.5]

    def test_summary_survives_round_trip(self):
        result = RunResult(
            algorithm="calibre-simclr",
            accuracies={0: 0.5, 1: 1.0},
            novel_accuracies={2: 0.25},
            rounds=[RoundRecord(0, [0, 1], 1.5, {"non_finite_losses": 0.0})],
            extras={"wall_seconds": 1.25},
        )
        clone = RunResult.from_json(json.loads(json.dumps(result.to_json())))
        assert clone.summary() == result.summary()
