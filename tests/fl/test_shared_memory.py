"""Shared-memory client-data plane: handles, store lifecycle, determinism."""

import pickle
import warnings

import numpy as np
import pytest

from repro.data import (
    DataSplit,
    DataSplitHandle,
    SharedArrayStore,
    make_cifar10_like,
    partition_iid,
    share_client_splits,
    shared_memory_available,
)
from repro.data import shm as shm_module
from repro.eval import build_method, make_dataset, make_encoder_factory
from repro.eval.harness import NonIIDSetting, make_partitions
from repro.fl import (
    FederatedConfig,
    FederatedServer,
    ProcessBackend,
    SerialBackend,
    build_federation,
    payload_nbytes,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory in this environment"
)


def _attach_raises(name):
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Handles and the store
# ----------------------------------------------------------------------
class TestHandles:
    def test_array_handle_pickles_small_and_resolves_equal(self):
        array = np.arange(48.0).reshape(4, 3, 4)
        with SharedArrayStore.create(SharedArrayStore.required_nbytes([array])) as store:
            handle = store.add(array)
            assert handle.resolve() is array  # owner side: the original
            blob = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
            assert len(blob) < 200  # (name, shape, dtype, offset) only
            replica = pickle.loads(blob)
            view = replica.resolve()
            np.testing.assert_array_equal(view, array)
            assert not view.flags.writeable  # shared bytes are read-only
            assert replica.resolve() is view  # attach once, then cached

    def test_data_split_handle_round_trip(self):
        split = DataSplit(np.random.default_rng(0).standard_normal((6, 3, 4, 4)),
                          np.array([0, 1, 2, 2, 1, 0]))
        nbytes = SharedArrayStore.required_nbytes([split.images, split.labels])
        with SharedArrayStore.create(nbytes) as store:
            handle = split.to_handle(store)
            replica = pickle.loads(pickle.dumps(handle))
            assert isinstance(replica, DataSplitHandle)
            assert len(replica) == len(split)
            assert replica.num_classes == split.num_classes
            np.testing.assert_array_equal(replica.images, split.images)
            np.testing.assert_array_equal(replica.labels, split.labels)
            sub = replica.subset([1, 3])
            assert isinstance(sub, DataSplit)
            np.testing.assert_array_equal(sub.labels, split.labels[[1, 3]])
            materialized = replica.materialize()
            assert isinstance(materialized, DataSplit)
            assert materialized.images.flags.writeable

    def test_store_rejects_overflow_and_writes_after_close(self):
        array = np.arange(8.0)
        store = SharedArrayStore.create(array.nbytes)
        store.add(array)
        with pytest.raises(ValueError, match="overflow"):
            store.add(array)
        store.close()
        store.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            store.add(array)

    def test_close_unlinks_segment(self):
        store = SharedArrayStore.create(64)
        name = store.name
        store.close()
        _attach_raises(name)


# ----------------------------------------------------------------------
# Client registration
# ----------------------------------------------------------------------
def _make_clients(num_clients=3):
    dataset = make_cifar10_like(image_size=8, train_per_class=10, test_per_class=2,
                                seed=0)
    parts = partition_iid(dataset.train.labels, num_clients, np.random.default_rng(0))
    return build_federation(dataset, parts, seed=2)


class TestShareClientSplits:
    def test_swaps_splits_in_place_and_shrinks_payload(self):
        clients = _make_clients()
        inline = payload_nbytes(clients[0])
        store = share_client_splits(clients)
        try:
            assert store is not None
            for client in clients:
                assert isinstance(client.train, DataSplitHandle)
                assert isinstance(client.test, DataSplitHandle)
            wire = payload_nbytes(clients[0])
            assert inline / wire >= 10
            # inline=True reconstructs the pre-plane payload size.
            assert payload_nbytes(clients[0], inline=True) == pytest.approx(
                inline, rel=0.01
            )
        finally:
            store.close()

    def test_registration_is_idempotent(self):
        clients = _make_clients()
        first = share_client_splits(clients)
        try:
            assert share_client_splits(clients) is None  # nothing left to share
        finally:
            first.close()

    def test_clients_stay_usable_after_close(self):
        # Owner-side handles keep the original arrays, so closing the store
        # must not invalidate coordinator-side reads.
        clients = _make_clients()
        store = share_client_splits(clients)
        store.close()
        client = clients[0]
        assert len(client.ssl_pool()) == len(client.train)
        assert client.train.images.shape[0] == len(client.train)

    def test_unavailable_shared_memory_falls_back(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        clients = _make_clients()
        assert share_client_splits(clients) is None
        assert all(isinstance(c.train, DataSplit) for c in clients)
        assert not shm_module.shared_memory_available()


# ----------------------------------------------------------------------
# Backend + server integration
# ----------------------------------------------------------------------
TINY_CONFIG = FederatedConfig(
    num_clients=3, clients_per_round=3, rounds=2, local_epochs=1,
    batch_size=8, personalization_epochs=2, personalization_batch_size=8,
)


def _run_tiny(backend, workers=None, shared_memory=None, guard_warnings=True):
    dataset = make_dataset("cifar10", seed=0, image_size=8,
                           train_per_class=12, test_per_class=2)
    partitions = make_partitions(
        dataset.train.labels, TINY_CONFIG.num_clients,
        NonIIDSetting("iid", 0, 12), np.random.default_rng(1),
    )
    encoder_factory = make_encoder_factory("mlp", dataset, hidden_dims=(16, 8), seed=7)
    config = TINY_CONFIG.with_overrides(backend=backend, workers=workers,
                                        shared_memory=shared_memory)
    clients = build_federation(dataset, partitions, seed=2)
    algorithm = build_method("pfl-simclr", config, dataset.num_classes,
                             encoder_factory, projection_dim=8, hidden_dim=16)
    server = FederatedServer(algorithm, clients, config)
    with warnings.catch_warnings():
        if guard_warnings:
            warnings.simplefilter("error", RuntimeWarning)
        result = server.run()
    return result, server


class TestPlaneIntegration:
    def test_process_backend_with_plane_matches_serial_bitwise(self):
        serial, serial_server = _run_tiny("serial")
        assert not serial_server.shared_memory_active  # serial bypasses the plane
        shared, shared_server = _run_tiny("process", workers=2, shared_memory=True)
        assert shared_server.shared_memory_active
        assert shared.accuracies == serial.accuracies
        assert [r.mean_loss for r in shared.rounds] == \
            [r.mean_loss for r in serial.rounds]
        assert [r.participant_ids for r in shared.rounds] == \
            [r.participant_ids for r in serial.rounds]

    def test_plane_defaults_on_for_process_backend(self):
        _, server = _run_tiny("process", workers=2)
        assert server.shared_memory_active

    def test_plane_can_be_disabled(self):
        result, server = _run_tiny("process", workers=2, shared_memory=False)
        assert not server.shared_memory_active
        baseline, _ = _run_tiny("serial")
        assert result.accuracies == baseline.accuracies

    def test_no_leaked_segments_after_backend_close(self):
        backend = ProcessBackend(workers=2)
        clients = _make_clients()
        assert backend.register_clients(clients)
        names = [store.name for store, _ in backend._stores]
        assert names
        backend.close()
        assert backend._stores == []
        for name in names:
            _attach_raises(name)

    def test_backend_close_restores_plain_splits_for_reregistration(self):
        # close() must leave the clients re-registerable: a second backend
        # over the same clients gets a fresh store, not dead handles that
        # name an unlinked segment.
        clients = _make_clients()
        first = ProcessBackend(workers=2)
        assert first.register_clients(clients)
        first.close()
        for client in clients:
            assert isinstance(client.train, DataSplit)
            assert isinstance(client.test, DataSplit)
        second = ProcessBackend(workers=2)
        assert second.register_clients(clients)
        assert payload_nbytes(clients[0]) < payload_nbytes(clients[0], inline=True)
        second.close()

    def test_forced_plane_warns_when_it_cannot_activate(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        with pytest.warns(RuntimeWarning, match="shared-memory data plane"):
            result, server = _run_tiny("process", shared_memory=True,
                                       guard_warnings=False)
        assert not server.shared_memory_active
        baseline, _ = _run_tiny("serial")
        assert result.accuracies == baseline.accuracies

    def test_serial_backend_register_is_noop(self):
        backend = SerialBackend()
        clients = _make_clients()
        assert not backend.register_clients(clients)
        assert all(isinstance(c.train, DataSplit) for c in clients)
