"""Property tests for the ``.npcol`` container: bitwise round-trips.

The container's contract is exactness — what comes out of
``unpack_columns``/``read_columns`` compares bitwise (dtype, shape, NaN
payloads) with what went in — over every supported dtype, 0-d scalars,
empty arrays, and non-contiguous or F-ordered inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.arrays import (
    ARRAY_SCHEMA,
    pack_columns,
    read_columns,
    unpack_columns,
    write_columns,
)

_dtypes = st.sampled_from(["<f8", "<f4", "<i8", "<i4", "|b1"])
_arrays = _dtypes.flatmap(
    lambda dtype: hnp.arrays(
        dtype=np.dtype(dtype),
        shape=hnp.array_shapes(min_dims=0, max_dims=3, max_side=5),
        elements=(st.floats(width=32 if dtype == "<f4" else 64,
                            allow_nan=True, allow_infinity=True)
                  if dtype in ("<f8", "<f4") else None),
    )
)
_columns = st.dictionaries(st.text(min_size=1, max_size=8), _arrays,
                           max_size=4)


def assert_columns_exact(actual, expected):
    assert list(actual.keys()) == [str(name) for name in expected.keys()]
    for name, array in expected.items():
        out = actual[str(name)]
        array = np.asarray(array)
        assert out.dtype == array.dtype, name
        assert out.shape == array.shape, name
        np.testing.assert_array_equal(out, array, err_msg=str(name))


class TestRoundTripProperties:
    @settings(max_examples=80, deadline=None)
    @given(columns=_columns)
    def test_pack_unpack_is_exact(self, columns):
        assert_columns_exact(unpack_columns(pack_columns(columns)), columns)

    @settings(max_examples=40, deadline=None)
    @given(columns=_columns)
    def test_packing_is_deterministic(self, columns):
        assert pack_columns(columns) == pack_columns(columns)

    @settings(max_examples=40, deadline=None)
    @given(columns=_columns)
    def test_file_round_trip_matches_memory(self, columns, tmp_path_factory):
        path = tmp_path_factory.mktemp("npcol") / "t.npcol"
        write_columns(path, columns)
        assert path.read_bytes() == pack_columns(columns)
        assert_columns_exact(read_columns(path), columns)

    @settings(max_examples=40, deadline=None)
    @given(columns=_columns)
    def test_mmap_read_equals_eager_read_and_is_readonly(
            self, columns, tmp_path_factory):
        path = tmp_path_factory.mktemp("npcol") / "t.npcol"
        write_columns(path, columns)
        eager = read_columns(path)
        mapped = read_columns(path, mmap=True)
        assert_columns_exact(mapped, columns)
        for name, array in eager.items():
            assert array.flags.writeable  # eager arrays are plain copies
            assert not mapped[name].flags.writeable
            np.testing.assert_array_equal(mapped[name], array, err_msg=name)
            if mapped[name].size:
                with pytest.raises((ValueError, OSError)):
                    mapped[name][(0,) * mapped[name].ndim] = 0


class TestShapesAndLayouts:
    def test_zero_d_scalars(self):
        columns = {"s": np.float64(3.5), "i": np.array(7, dtype=np.int32)}
        out = unpack_columns(pack_columns(columns))
        assert out["s"].shape == () and out["s"].dtype == np.float64
        assert out["s"][()] == 3.5
        assert out["i"].shape == () and out["i"][()] == 7

    def test_empty_arrays(self):
        columns = {"e": np.empty((0, 3), dtype=np.float32),
                   "z": np.array([], dtype=bool)}
        out = unpack_columns(pack_columns(columns))
        assert out["e"].shape == (0, 3) and out["e"].dtype == np.float32
        assert out["z"].shape == (0,) and out["z"].dtype == np.bool_

    def test_empty_container(self):
        assert unpack_columns(pack_columns({})) == {}

    def test_non_contiguous_and_f_ordered_inputs(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        columns = {"strided": base[::2, ::3], "f": np.asfortranarray(base),
                   "rev": base[::-1]}
        out = unpack_columns(pack_columns(columns))
        for name, array in columns.items():
            np.testing.assert_array_equal(out[name], array, err_msg=name)
            assert out[name].dtype == array.dtype

    def test_nan_and_inf_payloads_survive_bitwise(self):
        values = np.array([np.nan, np.inf, -np.inf, -0.0, 5e-324],
                          dtype=np.float64)
        out = unpack_columns(pack_columns({"v": values}))["v"]
        assert out.tobytes() == values.tobytes()

    def test_non_native_endian_dtype_round_trips(self):
        big = np.arange(4, dtype=np.dtype(">f8"))
        out = unpack_columns(pack_columns({"be": big}))["be"]
        assert out.dtype == big.dtype
        np.testing.assert_array_equal(out, big)

    def test_column_order_is_insertion_order(self):
        columns = {"z": np.zeros(1), "a": np.ones(1), "m": np.zeros(2)}
        assert list(unpack_columns(pack_columns(columns))) == ["z", "a", "m"]

    def test_payloads_are_64_byte_aligned(self):
        import json

        buf = pack_columns({"a": np.zeros(3), "b": np.arange(5)})
        header_len = int.from_bytes(buf[8:16], "little")
        header = json.loads(buf[16:16 + header_len])
        assert header["schema"] == ARRAY_SCHEMA
        for _name, _dtype, _shape, offset, _nbytes in header["columns"]:
            assert offset % 64 == 0

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            pack_columns({"o": np.array([object()])})

    def test_writable_unpack_returns_mutable_copies(self):
        buf = pack_columns({"a": np.arange(4, dtype=np.int64)})
        out = unpack_columns(buf, writable=True)
        out["a"][0] = 99  # must not raise
        again = unpack_columns(buf)
        assert again["a"][0] == 0  # the source buffer was never mutated
