"""Corruption and torn-write fuzz: a damaged container always fails
loudly with :class:`CorruptArrayFile` — never a silent misread.

The fixture container is a few hundred bytes, so "every boundary" is
literal: every truncation length and every flipped byte is tried.
"""

import json

import numpy as np
import pytest

from repro.arrays import (
    CorruptArrayFile,
    FOOTER_MAGIC,
    MAGIC,
    pack_columns,
    read_columns,
    unpack_columns,
)

_FOOTER_SIZE = 24
_FOOTER_PAD = 4  # trailing zero pad after the crc32 — not covered by it


@pytest.fixture(scope="module")
def container() -> bytes:
    return pack_columns({
        "weights": np.arange(20, dtype=np.float64).reshape(4, 5),
        "mask": np.array([True, False, True]),
        "bias": np.float32(0.25) * np.ones(7, dtype=np.float32),
    })


class TestTruncation:
    def test_every_truncation_length_fails_loudly(self, container):
        for length in range(len(container)):
            with pytest.raises(CorruptArrayFile):
                unpack_columns(container[:length])

    def test_every_extension_fails_loudly(self, container):
        # Appended garbage desynchronizes the footer just like truncation.
        for extra in (1, 7, 64):
            with pytest.raises(CorruptArrayFile):
                unpack_columns(container + b"\x00" * extra)

    def test_empty_and_tiny_buffers(self):
        for buffer in (b"", b"\x00", MAGIC, MAGIC + b"\x00" * 8):
            with pytest.raises(CorruptArrayFile):
                unpack_columns(buffer)


class TestBitFlips:
    def test_every_checksummed_byte_flip_fails_loudly(self, container):
        # Every byte except the footer's trailing zero pad participates in
        # validation: body bytes via the crc32, footer magic / body-length /
        # crc bytes via their own field checks.
        for index in range(len(container) - _FOOTER_PAD):
            mutated = bytearray(container)
            mutated[index] ^= 0xFF
            with pytest.raises(CorruptArrayFile):
                unpack_columns(bytes(mutated))

    def test_footer_checksum_flip_names_the_mismatch(self, container):
        mutated = bytearray(container)
        mutated[-_FOOTER_PAD - 1] ^= 0x01  # last crc byte
        with pytest.raises(CorruptArrayFile, match="checksum mismatch"):
            unpack_columns(bytes(mutated))

    def test_bad_magic_is_reported_as_not_npcol(self, container):
        mutated = b"X" + container[1:]
        with pytest.raises(CorruptArrayFile, match="magic"):
            unpack_columns(mutated)

    def test_torn_footer_magic_reported_as_torn(self, container):
        mutated = bytearray(container)
        start = len(container) - _FOOTER_SIZE
        mutated[start:start + len(FOOTER_MAGIC)] = b"NOTANEND"
        with pytest.raises(CorruptArrayFile, match="footer"):
            unpack_columns(bytes(mutated))


def _align(offset: int) -> int:
    return -(-offset // 64) * 64


def _reforge(buffer: bytes, header: dict) -> bytes:
    """Rebuild a container around a tampered header — relaying the body
    and fixing lengths and checksum, so only the *structural* directory
    validation can catch the lie."""
    import copy
    import zlib

    old_header_len = int.from_bytes(buffer[8:16], "little")
    old_start = _align(16 + old_header_len)
    payload = buffer[old_start:len(buffer) - _FOOTER_SIZE]
    new_start = old_start
    for _ in range(8):
        trial = copy.deepcopy(header)
        delta = new_start - old_start
        for entry in trial.get("columns", []):
            # Shift plausible offsets with the moved payload; leave the
            # deliberately absurd ones (the out-of-bounds test) alone.
            if (isinstance(entry, list) and len(entry) == 5
                    and isinstance(entry[3], int) and entry[3] < 10 ** 8):
                entry[3] += delta
        text = json.dumps(trial, separators=(",", ":")).encode()
        start = _align(16 + len(text))
        if start == new_start:
            break
        new_start = start
    body = bytearray(new_start + len(payload))
    body[:8] = MAGIC
    body[8:16] = len(text).to_bytes(8, "little")
    body[16:16 + len(text)] = text
    body[new_start:] = payload
    crc = zlib.crc32(body)
    footer = (FOOTER_MAGIC + len(body).to_bytes(8, "little")
              + crc.to_bytes(4, "little") + b"\x00" * 4)
    return bytes(body) + footer


class TestStructuralValidation:
    """Directory lies that a correct checksum cannot excuse."""

    def _header_of(self, buffer):
        header_len = int.from_bytes(buffer[8:16], "little")
        return json.loads(buffer[16:16 + header_len])

    def test_duplicate_column_names_rejected(self, container):
        header = self._header_of(container)
        header["columns"][1][0] = header["columns"][0][0]
        with pytest.raises(CorruptArrayFile, match="duplicate"):
            unpack_columns(_reforge(container, header))

    def test_dtype_shape_nbytes_mismatch_rejected(self, container):
        header = self._header_of(container)
        header["columns"][0][4] += 8  # claim one extra element's bytes
        with pytest.raises(CorruptArrayFile, match="directory says"):
            unpack_columns(_reforge(container, header))

    def test_out_of_bounds_payload_rejected(self, container):
        header = self._header_of(container)
        header["columns"][0][3] = 10 ** 9
        with pytest.raises(CorruptArrayFile, match="outside the body"):
            unpack_columns(_reforge(container, header))

    def test_unknown_schema_rejected(self, container):
        header = self._header_of(container)
        header["schema"] = 99
        with pytest.raises(CorruptArrayFile, match="schema"):
            unpack_columns(_reforge(container, header))

    def test_missing_directory_rejected(self, container):
        header = {"schema": self._header_of(container)["schema"]}
        with pytest.raises(CorruptArrayFile, match="directory"):
            unpack_columns(_reforge(container, header))


class TestFileLevelFailures:
    def test_missing_file_raises_corrupt(self, tmp_path):
        with pytest.raises(CorruptArrayFile, match="cannot read"):
            read_columns(tmp_path / "absent.npcol")

    def test_truncated_file_on_disk(self, tmp_path, container):
        path = tmp_path / "torn.npcol"
        path.write_bytes(container[: len(container) // 2])
        for mmap in (False, True):
            with pytest.raises(CorruptArrayFile):
                read_columns(path, mmap=mmap)

    def test_corrupt_error_is_a_value_error(self, container):
        # Callers that catch ValueError (the codec contract) stay correct.
        with pytest.raises(ValueError):
            unpack_columns(container[:10])
