"""Tests for the Module system: registration, traversal, state dicts, layers."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    Module,
    ModuleList,
    ReLU,
    Sequential,
    Tensor,
)

from ..helpers import assert_gradients_close, rng


class TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        generator = rng(seed)
        self.fc1 = Linear(4, 8, rng=generator)
        self.fc2 = Linear(8, 3, rng=generator)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestRegistration:
    def test_parameters_found(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_buffers_found(self):
        bn = BatchNorm1d(5)
        names = [name for name, _ in bn.named_buffers()]
        assert names == ["running_mean", "running_var"]

    def test_nested_modules(self):
        seq = Sequential(TinyNet(), ReLU())
        module_names = [name for name, _ in seq.named_modules()]
        assert "0.fc1" in module_names

    def test_reassignment_replaces_parameter(self):
        net = TinyNet()
        net.fc1 = Linear(4, 8)
        assert len(list(net.named_parameters())) == 4


class TestTrainEval:
    def test_train_eval_propagates(self):
        seq = Sequential(TinyNet(), Dropout(0.5))
        seq.eval()
        assert not seq[0].training and not seq[1].training
        seq.train()
        assert seq[0].training

    def test_requires_grad_toggle(self):
        net = TinyNet()
        net.requires_grad_(False)
        assert all(not p.requires_grad for p in net.parameters())
        net.requires_grad_(True)
        assert all(p.requires_grad for p in net.parameters())

    def test_zero_grad(self):
        net = TinyNet()
        x = Tensor(rng(1).standard_normal((2, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_round_trip(self):
        net_a, net_b = TinyNet(seed=1), TinyNet(seed=2)
        net_b.load_state_dict(net_a.state_dict())
        x = Tensor(rng(3).standard_normal((5, 4)))
        np.testing.assert_allclose(net_a(x).data, net_b(x).data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_strict_missing_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_partial_load(self):
        net = TinyNet(seed=1)
        fresh = TinyNet(seed=2)
        partial = {"fc1.weight": net.fc1.weight.data.copy()}
        fresh.load_state_dict(partial, strict=False)
        np.testing.assert_allclose(fresh.fc1.weight.data, net.fc1.weight.data)

    def test_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = BatchNorm1d(4)
        state = bn.state_dict()
        assert set(state) == {"weight", "bias", "running_mean", "running_var"}

    def test_buffer_load_round_trip(self):
        bn_a, bn_b = BatchNorm1d(4), BatchNorm1d(4)
        bn_a.running_mean[...] = 7.0
        bn_b.load_state_dict(bn_a.state_dict())
        np.testing.assert_allclose(bn_b.running_mean, np.full(4, 7.0))


class TestContainers:
    def test_sequential_forward(self):
        seq = Sequential(Linear(3, 5, rng=rng(0)), ReLU(), Linear(5, 2, rng=rng(1)))
        out = seq(Tensor(rng(2).standard_normal((4, 3))))
        assert out.shape == (4, 2)

    def test_sequential_indexing(self):
        seq = Sequential(Identity(), ReLU())
        assert isinstance(seq[0], Identity)
        assert len(seq) == 2

    def test_sequential_append(self):
        seq = Sequential(Identity())
        seq.append(ReLU())
        assert len(seq) == 2

    def test_module_list(self):
        modules = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(modules) == 2
        assert len(list(modules._modules.values())[0].parameters()) == 2
        with pytest.raises(RuntimeError):
            modules(Tensor(np.zeros((1, 2))))


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(7, 3, rng=rng(0))
        out = layer(Tensor(rng(1).standard_normal((5, 7))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_layer_shapes(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng(0))
        out = layer(Tensor(rng(1).standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_batchnorm2d_validates_channels(self):
        bn = BatchNorm2d(4)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 3, 4, 4))))

    def test_batchnorm1d_validates_shape(self):
        bn = BatchNorm1d(4)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((2, 3))))

    def test_flatten_layer(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_dropout_layer_respects_eval(self):
        layer = Dropout(0.9, rng=rng(0))
        layer.eval()
        x = Tensor(np.ones((5, 5)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_end_to_end_gradients(self):
        net = TinyNet(seed=3)
        x = Tensor(rng(4).standard_normal((3, 4)), requires_grad=True)
        assert_gradients_close(lambda: (net(x) ** 2).sum(), [x, net.fc1.weight, net.fc2.bias],
                               atol=1e-4)
