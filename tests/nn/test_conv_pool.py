"""Finite-difference validation of conv2d and pooling (the costliest primitives)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import assert_gradients_close, rng


def make(shape, seed=0):
    return Tensor(rng(seed).standard_normal(shape), requires_grad=True)


class TestConv2dForward:
    def test_identity_kernel(self):
        x = make((1, 1, 4, 4), 1)
        w = Tensor(np.ones((1, 1, 1, 1)), requires_grad=True)
        out = F.conv2d(x, w)
        np.testing.assert_allclose(out.data, x.data)

    def test_matches_naive_convolution(self):
        x = make((2, 3, 5, 5), 2)
        w = make((4, 3, 3, 3), 3)
        b = make((4,), 4)
        out = F.conv2d(x, w, b, stride=1, padding=1).data

        padded = np.pad(x.data, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((2, 4, 5, 5))
        for n in range(2):
            for o in range(4):
                for i in range(5):
                    for j in range(5):
                        window = padded[n, :, i : i + 3, j : j + 3]
                        expected[n, o, i, j] = (window * w.data[o]).sum() + b.data[o]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_stride_two_shape(self):
        x = make((1, 2, 8, 8), 5)
        w = make((3, 2, 3, 3), 6)
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (1, 3, 4, 4)

    def test_channel_mismatch_raises(self):
        x = make((1, 2, 4, 4), 1)
        w = make((3, 5, 3, 3), 2)
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_empty_output_raises(self):
        x = make((1, 1, 2, 2), 1)
        w = make((1, 1, 5, 5), 2)
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestConv2dGradients:
    def test_gradients_basic(self):
        x = make((2, 2, 4, 4), 1)
        w = make((3, 2, 3, 3), 2)
        b = make((3,), 3)
        assert_gradients_close(lambda: F.conv2d(x, w, b, padding=1).sum(), [x, w, b], atol=1e-4)

    def test_gradients_stride_two_no_bias(self):
        x = make((1, 2, 6, 6), 4)
        w = make((2, 2, 3, 3), 5)
        assert_gradients_close(
            lambda: (F.conv2d(x, w, stride=2, padding=1) ** 2).sum(), [x, w], atol=1e-4
        )

    def test_gradients_1x1_kernel(self):
        x = make((2, 3, 3, 3), 6)
        w = make((4, 3, 1, 1), 7)
        assert_gradients_close(lambda: F.conv2d(x, w).sum(), [x, w], atol=1e-4)


class TestMaxPool:
    def test_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_gradients_finite_difference(self):
        x = make((2, 2, 4, 4), 8)
        assert_gradients_close(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x], atol=1e-4)

    def test_overlapping_stride(self):
        x = make((1, 1, 5, 5), 9)
        out = F.max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 1, 3, 3)


class TestAvgPool:
    def test_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_gradients(self):
        x = make((2, 3, 4, 4), 10)
        assert_gradients_close(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), [x], atol=1e-4)

    def test_global_avg_pool(self):
        x = make((2, 3, 5, 5), 11)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))

    def test_global_avg_pool_gradients(self):
        x = make((1, 2, 3, 3), 12)
        assert_gradients_close(lambda: (F.global_avg_pool2d(x) ** 2).sum(), [x], atol=1e-4)
