"""Tests for repro.nn.functional composites: softmax, normalize, batchnorm, distances."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import assert_gradients_close, rng


def make(shape, seed=0, shift=0.0):
    return Tensor(rng(seed).standard_normal(shape) + shift, requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = make((4, 7), 1)
        probs = F.softmax(x, axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(4), rtol=1e-12)

    def test_invariant_to_shift(self):
        x = make((3, 5), 2)
        shifted = Tensor(x.data + 100.0)
        np.testing.assert_allclose(F.softmax(x, axis=1).data, F.softmax(shifted, axis=1).data,
                                   atol=1e-10)

    def test_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 0.0], [0.0, -1000.0]]))
        probs = F.softmax(x, axis=1).data
        assert np.all(np.isfinite(probs))

    def test_gradients(self):
        x = make((3, 4), 3)
        assert_gradients_close(lambda: (F.softmax(x, axis=1) ** 2).sum(), [x], atol=1e-4)

    def test_log_softmax_matches_log_of_softmax(self):
        x = make((4, 6), 4)
        np.testing.assert_allclose(
            F.log_softmax(x, axis=1).data, np.log(F.softmax(x, axis=1).data), atol=1e-10
        )

    def test_log_softmax_gradients(self):
        x = make((2, 5), 5)
        assert_gradients_close(lambda: F.log_softmax(x, axis=1).sum(), [x], atol=1e-4)


class TestNormalize:
    def test_unit_norm_rows(self):
        x = make((6, 8), 1)
        normalized = F.normalize(x, axis=1)
        np.testing.assert_allclose(np.linalg.norm(normalized.data, axis=1), np.ones(6), rtol=1e-6)

    def test_gradients(self):
        x = make((3, 4), 2, shift=1.0)
        weights = Tensor(rng(9).standard_normal((3, 4)))
        assert_gradients_close(lambda: (F.normalize(x, axis=1) * weights).sum(), [x], atol=1e-4)

    def test_zero_vector_does_not_nan(self):
        x = Tensor(np.zeros((1, 4)), requires_grad=True)
        out = F.normalize(x, axis=1)
        assert np.all(np.isfinite(out.data))


class TestLinearDropout:
    def test_linear_matches_manual(self):
        x, w, b = make((4, 3), 1), make((5, 3), 2), make((5,), 3)
        out = F.linear(x, w, b)
        np.testing.assert_allclose(out.data, x.data @ w.data.T + b.data)

    def test_linear_gradients(self):
        x, w, b = make((4, 3), 1), make((5, 3), 2), make((5,), 3)
        assert_gradients_close(lambda: F.linear(x, w, b).sum(), [x, w, b])

    def test_dropout_eval_is_identity(self):
        x = make((10, 10), 1)
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_scales_kept_units(self):
        x = Tensor(np.ones((2000,)), requires_grad=True)
        out = F.dropout(x, 0.25, training=True, rng=rng(0))
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, np.full_like(kept, 1.0 / 0.75))
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_p_one_raises(self):
        with pytest.raises(ValueError):
            F.dropout(make((2,)), 1.0, training=True)


class TestOneHot:
    def test_basic(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)


class TestBatchNormFunctional:
    def test_training_normalizes_batch(self):
        x = make((16, 4), 1, shift=3.0)
        gamma, beta = Tensor(np.ones(4), requires_grad=True), Tensor(np.zeros(4), requires_grad=True)
        running_mean, running_var = np.zeros(4), np.ones(4)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=0), np.ones(4), atol=1e-3)

    def test_running_stats_updated(self):
        x = make((32, 4), 2, shift=5.0)
        gamma, beta = Tensor(np.ones(4)), Tensor(np.zeros(4))
        running_mean, running_var = np.zeros(4), np.ones(4)
        F.batch_norm(x, gamma, beta, running_mean, running_var, training=True, momentum=1.0)
        np.testing.assert_allclose(running_mean, x.data.mean(axis=0), rtol=1e-10)

    def test_eval_uses_running_stats(self):
        x = make((8, 4), 3)
        gamma, beta = Tensor(np.ones(4)), Tensor(np.zeros(4))
        running_mean = np.full(4, 2.0)
        running_var = np.full(4, 4.0)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=False)
        np.testing.assert_allclose(out.data, (x.data - 2.0) / np.sqrt(4.0 + 1e-5), rtol=1e-6)

    def test_gradients_2d(self):
        x = make((6, 3), 4)
        gamma = Tensor(rng(5).uniform(0.5, 1.5, 3), requires_grad=True)
        beta = Tensor(rng(6).standard_normal(3), requires_grad=True)

        def loss():
            running_mean, running_var = np.zeros(3), np.ones(3)
            out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=True)
            return (out**2).sum()

        assert_gradients_close(loss, [x, gamma, beta], atol=1e-4)

    def test_4d_input(self):
        x = make((2, 3, 4, 4), 7)
        gamma, beta = Tensor(np.ones(3)), Tensor(np.zeros(3))
        running_mean, running_var = np.zeros(3), np.ones(3)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var, training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)

    def test_rejects_3d(self):
        x = make((2, 3, 4), 1)
        with pytest.raises(ValueError):
            F.batch_norm(x, Tensor(np.ones(3)), Tensor(np.zeros(3)), np.zeros(3), np.ones(3), True)


class TestDistances:
    def test_pairwise_sq_distances_match_scipy_style(self):
        a, b = make((5, 3), 1), make((4, 3), 2)
        dist = F.pairwise_sq_distances(a, b).data
        expected = ((a.data[:, None, :] - b.data[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(dist, expected, atol=1e-8)

    def test_pairwise_gradients(self):
        a, b = make((3, 2), 3), make((2, 2), 4)
        assert_gradients_close(lambda: F.pairwise_sq_distances(a, b).sum(), [a, b], atol=1e-4)

    def test_self_distance_zero(self):
        a = make((4, 3), 5)
        dist = F.pairwise_sq_distances(a, a).data
        np.testing.assert_allclose(np.diag(dist), np.zeros(4), atol=1e-8)

    def test_cosine_similarity_bounds(self):
        a, b = make((6, 4), 6), make((5, 4), 7)
        sims = F.cosine_similarity_matrix(a, b).data
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)

    def test_cosine_self_similarity_one(self):
        a = make((4, 8), 8)
        sims = F.cosine_similarity_matrix(a, a).data
        np.testing.assert_allclose(np.diag(sims), np.ones(4), rtol=1e-6)
