"""Gradient and semantics tests for the core Tensor operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad, unbroadcast

from ..helpers import assert_gradients_close, rng


def make(shape, seed=0, scale=1.0, shift=0.0):
    data = rng(seed).standard_normal(shape) * scale + shift
    return Tensor(data, requires_grad=True)


class TestArithmetic:
    def test_add_values(self):
        a, b = make((3, 4), 1), make((3, 4), 2)
        np.testing.assert_allclose((a + b).data, a.data + b.data)

    def test_add_gradients(self):
        a, b = make((3, 4), 1), make((3, 4), 2)
        assert_gradients_close(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast_gradients(self):
        a, b = make((3, 4), 1), make((4,), 2)
        assert_gradients_close(lambda: (a + b).sum(), [a, b])

    def test_add_scalar(self):
        a = make((2, 2), 3)
        np.testing.assert_allclose((a + 2.5).data, a.data + 2.5)

    def test_sub_gradients(self):
        a, b = make((5,), 1), make((5,), 2)
        assert_gradients_close(lambda: (a - b).sum(), [a, b])

    def test_rsub(self):
        a = make((3,), 1)
        np.testing.assert_allclose((1.0 - a).data, 1.0 - a.data)

    def test_mul_gradients(self):
        a, b = make((3, 4), 1), make((3, 4), 2)
        assert_gradients_close(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast_gradients(self):
        a, b = make((2, 3, 4), 1), make((3, 1), 2)
        assert_gradients_close(lambda: (a * b).sum(), [a, b])

    def test_div_gradients(self):
        a, b = make((3, 4), 1), make((3, 4), 2, shift=3.0)
        assert_gradients_close(lambda: (a / b).sum(), [a, b])

    def test_rdiv(self):
        a = make((3,), 1, shift=4.0)
        np.testing.assert_allclose((2.0 / a).data, 2.0 / a.data)

    def test_pow_gradients(self):
        a = make((4,), 5, shift=3.0)
        assert_gradients_close(lambda: (a**3).sum(), [a])

    def test_neg_gradients(self):
        a = make((4,), 5)
        assert_gradients_close(lambda: (-a).sum(), [a])

    def test_matmul_2d_gradients(self):
        a, b = make((3, 4), 1), make((4, 5), 2)
        assert_gradients_close(lambda: (a @ b).sum(), [a, b])

    def test_matmul_values(self):
        a, b = make((2, 3), 1), make((3, 2), 2)
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestNonlinearities:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu", "abs", "sqrt", "log"])
    def test_unary_gradients(self, name):
        shift = 2.5 if name in ("sqrt", "log") else 0.0
        a = make((3, 4), 7, shift=shift)
        assert_gradients_close(lambda: getattr(a, name)().sum(), [a], atol=1e-4)

    def test_leaky_relu_gradients(self):
        a = make((3, 4), 8)
        assert_gradients_close(lambda: a.leaky_relu(0.1).sum(), [a])

    def test_relu_zeroes_negatives(self):
        a = Tensor([-1.0, 0.5, -0.2, 2.0])
        np.testing.assert_allclose(a.relu().data, [0.0, 0.5, 0.0, 2.0])

    def test_clip_gradients_inside_region(self):
        a = make((6,), 9)
        assert_gradients_close(lambda: a.clip(-0.5, 0.5).sum(), [a], atol=1e-4)

    def test_clip_values(self):
        a = Tensor([-2.0, 0.0, 2.0])
        np.testing.assert_allclose(a.clip(-1.0, 1.0).data, [-1.0, 0.0, 1.0])


class TestReductions:
    def test_sum_all_gradients(self):
        a = make((3, 4), 1)
        assert_gradients_close(lambda: a.sum(), [a])

    def test_sum_axis_gradients(self):
        a = make((3, 4), 1)
        assert_gradients_close(lambda: a.sum(axis=0).sum(), [a])
        assert_gradients_close(lambda: a.sum(axis=1, keepdims=True).sum(), [a])

    def test_sum_multi_axis(self):
        a = make((2, 3, 4), 2)
        assert_gradients_close(lambda: a.sum(axis=(0, 2)).sum(), [a])

    def test_mean_gradients(self):
        a = make((3, 4), 1)
        assert_gradients_close(lambda: a.mean(), [a])
        assert_gradients_close(lambda: a.mean(axis=1).sum(), [a])

    def test_var_matches_numpy(self):
        a = make((5, 6), 3)
        np.testing.assert_allclose(a.var().data, a.data.var(), rtol=1e-10)

    def test_var_gradients(self):
        a = make((4, 3), 3)
        assert_gradients_close(lambda: a.var(axis=0).sum(), [a], atol=1e-4)

    def test_max_gradients_unique(self):
        data = np.arange(12, dtype=np.float64).reshape(3, 4)
        a = Tensor(data, requires_grad=True)
        assert_gradients_close(lambda: a.max(axis=1).sum(), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        out = a.max(axis=1)
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((1, 3), 1.0 / 3.0))

    def test_min_matches_numpy(self):
        a = make((3, 5), 11)
        np.testing.assert_allclose(a.min(axis=1).data, a.data.min(axis=1))


class TestShapeOps:
    def test_reshape_gradients(self):
        a = make((3, 4), 1)
        assert_gradients_close(lambda: (a.reshape(2, 6) * 2.0).sum(), [a])

    def test_flatten(self):
        a = make((2, 3, 4), 1)
        assert a.flatten(1).shape == (2, 12)

    def test_transpose_gradients(self):
        a = make((2, 3, 4), 1)
        assert_gradients_close(lambda: (a.transpose(2, 0, 1) * 3.0).sum(), [a])

    def test_transpose_default_reverses(self):
        a = make((2, 3), 1)
        assert a.transpose().shape == (3, 2)

    def test_getitem_slice_gradients(self):
        a = make((5, 4), 1)
        assert_gradients_close(lambda: a[1:4].sum(), [a])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        out = a[np.array([0, 0, 2])].sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0])

    def test_concat_gradients(self):
        a, b = make((2, 3), 1), make((4, 3), 2)
        assert_gradients_close(lambda: (Tensor.concat([a, b], axis=0) * 2.0).sum(), [a, b])

    def test_concat_axis1(self):
        a, b = make((2, 3), 1), make((2, 5), 2)
        assert Tensor.concat([a, b], axis=1).shape == (2, 8)

    def test_stack(self):
        a, b = make((3,), 1), make((3,), 2)
        stacked = Tensor.stack([a, b])
        assert stacked.shape == (2, 3)
        assert_gradients_close(lambda: Tensor.stack([a, b]).sum(), [a, b])

    def test_expand_dims_gradients(self):
        a = make((3, 4), 1)
        assert_gradients_close(lambda: a.expand_dims(1).sum(), [a])


class TestAutogradMechanics:
    def test_no_grad_blocks_graph(self):
        a = make((3,), 1)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_backward_requires_grad(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.sum().backward()

    def test_gradient_accumulates_over_calls(self):
        a = make((3,), 1)
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 2.0))

    def test_diamond_graph_gradient(self):
        a = make((3,), 1)
        b = a * 2.0
        out = (b + b * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2.0 + 4.0 * a.data)

    def test_detach_cuts_graph(self):
        a = make((3,), 1)
        out = (a.detach() * a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, a.data)

    def test_zero_grad(self):
        a = make((3,), 1)
        a.sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_with_seed(self):
        a = make((3,), 1)
        out = a * 1.0
        out.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(a.grad, [1.0, 2.0, 3.0])


class TestUnbroadcast:
    @given(
        st.sampled_from([(3, 4), (1, 4), (3, 1), (1, 1), (4,), (1,)]),
    )
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape):
        target = np.zeros(shape)
        grad = np.ones(np.broadcast_shapes(shape, (3, 4)))
        reduced = unbroadcast(grad, shape)
        assert reduced.shape == shape
        # Each entry counts how many broadcast copies mapped onto it.
        expected_total = grad.size
        assert reduced.sum() == pytest.approx(expected_total)

    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)) is grad


class TestConstructors:
    def test_zeros_ones(self):
        assert Tensor.zeros((2, 2)).data.sum() == 0.0
        assert Tensor.ones((2, 2)).data.sum() == 4.0

    def test_randn_seeded(self):
        a = Tensor.randn((3,), rng=rng(5))
        b = Tensor.randn((3,), rng=rng(5))
        np.testing.assert_array_equal(a.data, b.data)

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype in (np.float32, np.float64)
