"""Tests and property-based tests for state-dict algebra (the FL wire format)."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.serialize import (
    clone_state,
    flatten_state,
    interpolate_states,
    merge_states,
    split_state,
    state_add,
    state_distance,
    state_norm,
    state_scale,
    state_sub,
    unflatten_state,
    weighted_average,
    zeros_like_state,
)


def make_state(seed=0, scale=1.0):
    generator = np.random.default_rng(seed)
    return OrderedDict(
        [
            ("encoder.conv.weight", generator.standard_normal((4, 3, 3, 3)) * scale),
            ("encoder.bn.running_mean", generator.standard_normal(4) * scale),
            ("head.weight", generator.standard_normal((10, 4)) * scale),
            ("head.bias", generator.standard_normal(10) * scale),
        ]
    )


class TestBasicAlgebra:
    def test_clone_is_deep(self):
        state = make_state()
        cloned = clone_state(state)
        cloned["head.bias"][...] = 0.0
        assert not np.allclose(state["head.bias"], 0.0)

    def test_zeros_like(self):
        zeros = zeros_like_state(make_state())
        assert all(np.all(value == 0) for value in zeros.values())

    def test_add_sub_inverse(self):
        a, b = make_state(1), make_state(2)
        recovered = state_sub(state_add(a, b), b)
        for name in a:
            np.testing.assert_allclose(recovered[name], a[name], atol=1e-12)

    def test_scale(self):
        state = make_state(3)
        doubled = state_scale(state, 2.0)
        np.testing.assert_allclose(doubled["head.weight"], 2.0 * state["head.weight"])

    def test_mismatched_keys_raise(self):
        a = make_state()
        b = make_state()
        del b["head.bias"]
        with pytest.raises(KeyError):
            state_add(a, b)

    def test_norm_and_distance(self):
        a = make_state(4)
        assert state_distance(a, a) == 0.0
        assert state_norm(zeros_like_state(a)) == 0.0
        flat, _ = flatten_state(a)
        assert state_norm(a) == pytest.approx(np.linalg.norm(flat))


class TestWeightedAverage:
    def test_equal_weights_is_mean(self):
        a, b = make_state(1), make_state(2)
        avg = weighted_average([a, b], [1.0, 1.0])
        np.testing.assert_allclose(avg["head.bias"], (a["head.bias"] + b["head.bias"]) / 2)

    def test_weights_normalized(self):
        a, b = make_state(1), make_state(2)
        avg1 = weighted_average([a, b], [1.0, 3.0])
        avg2 = weighted_average([a, b], [0.25, 0.75])
        np.testing.assert_allclose(avg1["head.weight"], avg2["head.weight"], atol=1e-12)

    def test_identical_states_fixed_point(self):
        a = make_state(5)
        avg = weighted_average([a, clone_state(a), clone_state(a)], [0.2, 0.3, 0.5])
        for name in a:
            np.testing.assert_allclose(avg[name], a[name], atol=1e-12)

    def test_degenerate_weight_rejected(self):
        a = make_state()
        with pytest.raises(ValueError):
            weighted_average([a], [0.0])
        with pytest.raises(ValueError):
            weighted_average([a], [-1.0])
        with pytest.raises(ValueError):
            weighted_average([], [])
        with pytest.raises(ValueError):
            weighted_average([a, a], [1.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_average_within_hull(self, weights):
        states = [make_state(seed) for seed in range(len(weights))]
        avg = weighted_average(states, weights)
        for name in states[0]:
            stacked = np.stack([s[name] for s in states])
            assert np.all(avg[name] <= stacked.max(axis=0) + 1e-9)
            assert np.all(avg[name] >= stacked.min(axis=0) - 1e-9)


class TestFlatten:
    def test_round_trip(self):
        state = make_state(7)
        vector, spec = flatten_state(state)
        recovered = unflatten_state(vector, spec)
        assert list(recovered) == list(state)
        for name in state:
            np.testing.assert_allclose(recovered[name], state[name])

    def test_vector_length(self):
        state = make_state()
        vector, _ = flatten_state(state)
        assert vector.size == sum(v.size for v in state.values())

    def test_short_vector_raises(self):
        state = make_state()
        vector, spec = flatten_state(state)
        with pytest.raises(ValueError):
            unflatten_state(vector[:-1], spec)

    def test_long_vector_raises(self):
        state = make_state()
        vector, spec = flatten_state(state)
        with pytest.raises(ValueError):
            unflatten_state(np.concatenate([vector, [0.0]]), spec)

    def test_empty_state(self):
        vector, spec = flatten_state(OrderedDict())
        assert vector.size == 0
        assert unflatten_state(vector, spec) == OrderedDict()


class TestSplitMerge:
    def test_split_by_prefix(self):
        state = make_state()
        encoder, rest = split_state(state, "encoder")
        assert set(encoder) == {"encoder.conv.weight", "encoder.bn.running_mean"}
        assert set(rest) == {"head.weight", "head.bias"}

    def test_prefix_does_not_match_substring(self):
        state = OrderedDict([("headliner.weight", np.zeros(2)), ("head.weight", np.ones(2))])
        head, rest = split_state(state, "head")
        assert set(head) == {"head.weight"}
        assert set(rest) == {"headliner.weight"}

    def test_merge_inverse_of_split(self):
        state = make_state()
        encoder, rest = split_state(state, "encoder")
        merged = merge_states(encoder, rest)
        assert set(merged) == set(state)

    def test_merge_duplicate_raises(self):
        state = make_state()
        with pytest.raises(KeyError):
            merge_states(state, state)


class TestInterpolate:
    def test_endpoints(self):
        a, b = make_state(1), make_state(2)
        np.testing.assert_allclose(
            interpolate_states(a, b, 0.0)["head.bias"], a["head.bias"], atol=1e-12
        )
        np.testing.assert_allclose(
            interpolate_states(a, b, 1.0)["head.bias"], b["head.bias"], atol=1e-12
        )

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_linear_in_alpha(self, alpha):
        a, b = make_state(3), make_state(4)
        mixed = interpolate_states(a, b, alpha)
        for name in a:
            np.testing.assert_allclose(
                mixed[name], (1 - alpha) * a[name] + alpha * b[name], atol=1e-10
            )
