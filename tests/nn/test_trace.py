"""Unit tests for the trace/replay vectorization layer (repro.nn.trace).

The contract under test is bitwise equivalence: slice k of every replayed
op equals what the per-client path computes for client k.  Helpers build a
trace from a single-client function, replay it over K stacked clients, and
compare against K independent eager runs.
"""

import copy
import pickle

import numpy as np
import pytest

from repro.nn import BatchedSGD, Tensor
from repro.nn import functional as F
from repro.nn.trace import BatchedReplay, Trace, UntraceableError

K = 5


def record_and_replay(fn, *input_arrays, params=None, k=K, seed=0):
    """Record ``fn`` on client 0's leaves, replay over ``k`` stacked clients.

    ``fn(*inputs, **params)`` must return a scalar TraceTensor.  Returns the
    replayed per-client outputs (k,) plus the stacked leaves used, so callers
    can compare against per-client eager recomputation.
    """
    rng = np.random.default_rng(seed)
    stacked_inputs = [np.stack([a + rng.standard_normal(a.shape) for _ in range(k)])
                      for a in input_arrays]
    params = params or {}
    stacked_params = {name: np.stack([v + rng.standard_normal(v.shape)
                                      for _ in range(k)])
                      for name, v in params.items()}

    trace = Trace()
    leaves = [trace.add_input(f"in{i}", stacked_inputs[i][0])
              for i in range(len(input_arrays))]
    param_leaves = {name: trace.add_param(name, stacked_params[name][0])
                    for name in params}
    out = fn(*leaves, **param_leaves)
    trace.set_output(out)
    trace.seal()

    replay = BatchedReplay(trace, k)
    leaf_tensors = {name: Tensor(stacked_params[name], requires_grad=True)
                    for name in params}
    loss, staged = replay.run(
        {f"in{i}": stacked_inputs[i] for i in range(len(input_arrays))},
        leaf_tensors, {})
    assert staged == {} or staged  # staged is an OrderedDict
    return loss, stacked_inputs, stacked_params, leaf_tensors


def assert_matches_per_client(fn, *input_arrays, params=None, k=K, seed=0):
    loss, stacked_inputs, stacked_params, leaf_tensors = record_and_replay(
        fn, *input_arrays, params=params, k=k, seed=seed)
    assert loss.data.shape == (k,) or loss.data.shape == ()
    loss.backward()
    for client in range(k):
        eager_inputs = [Tensor(s[client]) for s in stacked_inputs]
        eager_params = {name: Tensor(s[client], requires_grad=True)
                        for name, s in stacked_params.items()}
        eager = fn(*eager_inputs, **eager_params)
        np.testing.assert_array_equal(np.asarray(loss.data)[client], eager.data)
        eager.backward()
        for name, leaf in leaf_tensors.items():
            np.testing.assert_array_equal(leaf.grad[client],
                                          eager_params[name].grad)


class TestPrimitiveEquivalence:
    def test_arithmetic_chain(self):
        x = np.linspace(-1, 1, 12).reshape(3, 4)

        def fn(a, w):
            return ((a * w + 2.0) / 3.0 - 0.5).sum()

        assert_matches_per_client(fn, x, params={"w": np.ones((3, 4))})

    def test_reflected_ops(self):
        x = np.linspace(0.5, 2.0, 8).reshape(2, 4)

        def fn(a, w):
            return (1.0 - (2.0 / (a * w)) + (-a)).sum()

        assert_matches_per_client(fn, x, params={"w": np.full((2, 4), 1.5)})

    def test_matmul_and_rmatmul(self):
        x = np.linspace(-1, 1, 12).reshape(3, 4)
        const = np.linspace(0, 1, 12).reshape(4, 3)

        def fn(a, w):
            return ((a @ w) + (const @ a)[:4:2, :].sum()).sum()

        assert_matches_per_client(fn, x, params={"w": np.ones((4, 3))})

    def test_unary_transcendentals(self):
        x = np.linspace(0.1, 2.0, 8).reshape(2, 4)

        def fn(a, w):
            b = (a * w).exp()          # strictly positive for log/sqrt
            return (b.log() + b.sqrt() + b.tanh() + b.sigmoid()
                    + b.relu()).sum()

        assert_matches_per_client(fn, x, params={"w": np.full((2, 4), 0.7)})

    def test_reductions_and_reshapes(self):
        x = np.linspace(-2, 2, 24).reshape(2, 3, 4)

        def fn(a, w):
            b = (a * w).reshape((6, 4)).transpose()
            return b.max(axis=0).sum() + b.mean() + b.sum(axis=(0, 1)) + b.var()

        assert_matches_per_client(fn, x, params={"w": np.ones((2, 3, 4))})

    def test_broadcast_alignment_lower_rank_operand(self):
        # A rank-1 traced operand must align on trailing axes after the
        # client axis is added, exactly as numpy aligned it unbatched.
        x = np.linspace(-1, 1, 12).reshape(3, 4)

        def fn(a, w):
            row = a.sum(axis=0)        # shape (4,)
            return ((a * w) / (row.exp()) + row).sum()

        assert_matches_per_client(fn, x, params={"w": np.ones((3, 4))})

    def test_concat_and_getitem(self):
        x = np.linspace(-1, 1, 8).reshape(2, 4)

        def fn(a, w):
            b = Tensor.concat([a * w, a], axis=0)       # (4, 4)
            picked = b[np.arange(4), np.array([1, 0, 3, 2])]
            return picked.sum() + b[1:, :2].sum()

        assert_matches_per_client(fn, x, params={"w": np.ones((2, 4))})

    def test_advanced_index_feeds_flat_reduction(self):
        # Regression: the replayed advanced-index result must be made
        # C-contiguous, or the downstream pairwise-summed reduction blocks
        # differently and the loss drifts by an ulp.
        rng = np.random.default_rng(3)
        x = rng.standard_normal((16, 16))

        def fn(a, w):
            b = a * w
            picked = b[np.arange(16), np.arange(15, -1, -1)]
            return picked.mean()

        assert_matches_per_client(fn, x, params={"w": rng.standard_normal((16, 16))})

    def test_nt_xent_composite(self):
        from repro.ssl import nt_xent
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 6))

        def fn(a, w):
            return nt_xent(a * w, a + w, 0.5)

        assert_matches_per_client(fn, x, params={"w": rng.standard_normal((4, 6))})


class TestUntraceable:
    def _leaf(self):
        trace = Trace()
        return trace, trace.add_input("x", np.ones((4, 3)))

    def test_bool_mask_rejected(self):
        trace, x = self._leaf()
        with pytest.raises(UntraceableError):
            x[np.array([True, False, True, False])]

    def test_none_and_ellipsis_rejected(self):
        trace, x = self._leaf()
        with pytest.raises(UntraceableError):
            x[None]
        with pytest.raises(UntraceableError):
            x[..., 0]

    def test_separated_advanced_indices_rejected(self):
        trace = Trace()
        x = trace.add_input("x", np.ones((3, 4, 3)))
        with pytest.raises(UntraceableError):
            x[np.array([0, 1]), :, np.array([0, 1])]

    def test_dropout_rejected_while_tracing(self):
        trace, x = self._leaf()
        with pytest.raises(UntraceableError):
            F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))

    def test_eval_batch_norm_rejected_while_tracing(self):
        trace, x = self._leaf()
        with pytest.raises(UntraceableError):
            F.batch_norm(x, np.zeros(3), np.ones(3), Tensor(np.ones(3)),
                         Tensor(np.zeros(3)), training=False)

    def test_conv_rejected_via_make_output(self):
        trace = Trace()
        x = trace.add_input("x", np.ones((1, 1, 4, 4)))
        with pytest.raises(UntraceableError):
            F.conv2d(x, Tensor(np.ones((1, 1, 2, 2))), stride=1, padding=0)

    def test_item_and_backward_rejected(self):
        trace, x = self._leaf()
        with pytest.raises(UntraceableError):
            x.sum().item()
        with pytest.raises(UntraceableError):
            x.sum().backward()

    def test_scalar_output_required(self):
        trace, x = self._leaf()
        with pytest.raises(UntraceableError):
            trace.set_output(x.sum(axis=0))

    def test_replay_validates_leaf_shapes(self):
        trace, x = self._leaf()
        trace.set_output(x.sum())
        trace.seal()
        replay = BatchedReplay(trace, 3)
        with pytest.raises(UntraceableError):
            replay.run({"x": np.ones((2, 4, 3))}, {}, {})  # wrong K
        with pytest.raises(UntraceableError):
            replay.run({"x": np.ones((3, 4, 2))}, {}, {})  # wrong shape


class TestTraceLifecycle:
    def _sealed(self):
        trace = Trace()
        x = trace.add_input("x", np.ones((2, 3)))
        w = trace.add_param("w", np.full((2, 3), 2.0))
        trace.set_output((x * w).sum())
        trace.seal()
        return trace

    def test_sealed_trace_rejects_recording(self):
        trace = self._sealed()
        with pytest.raises(UntraceableError):
            trace.record("add", np.zeros(()), ())

    def test_sealed_trace_pickles_and_deepcopies(self):
        trace = self._sealed()
        for clone in (pickle.loads(pickle.dumps(trace)), copy.deepcopy(trace)):
            replay = BatchedReplay(clone, 2)
            w = Tensor(np.full((2, 2, 3), 2.0), requires_grad=True)
            loss, _ = replay.run({"x": np.ones((2, 2, 3))}, {"w": w}, {})
            np.testing.assert_array_equal(loss.data, np.full(2, 12.0))

    def test_unsealed_trace_cannot_replay(self):
        trace = Trace()
        trace.add_input("x", np.ones(3))
        with pytest.raises(UntraceableError):
            BatchedReplay(trace, 2)


class TestBatchedSGD:
    def test_validates_leading_axis(self):
        good = Tensor(np.zeros((4, 3)), requires_grad=True)
        BatchedSGD([good], lr=0.1, num_clients=4)
        bad = Tensor(np.zeros((3, 4)), requires_grad=True)
        with pytest.raises(ValueError):
            BatchedSGD([bad], lr=0.1, num_clients=4)
        scalar = Tensor(np.zeros(()), requires_grad=True)
        with pytest.raises(ValueError):
            BatchedSGD([scalar], lr=0.1, num_clients=4)

    def test_stacked_step_matches_per_client_sgd(self):
        from repro.nn.optim import SGD
        rng = np.random.default_rng(0)
        stacked = Tensor(rng.standard_normal((3, 2, 2)), requires_grad=True)
        grads = rng.standard_normal((3, 2, 2))
        singles = [Tensor(stacked.data[i].copy(), requires_grad=True)
                   for i in range(3)]
        batched = BatchedSGD([stacked], lr=0.1, momentum=0.9,
                             weight_decay=0.01, num_clients=3)
        for _ in range(3):
            stacked.grad = grads.copy()
            batched.step()
        for i, single in enumerate(singles):
            opt = SGD([single], lr=0.1, momentum=0.9, weight_decay=0.01)
            for _ in range(3):
                single.grad = grads[i].copy()
                opt.step()
            np.testing.assert_array_equal(stacked.data[i], single.data)
