"""Tests for ResNet / SmallConv / MLP encoders and supervised losses."""

import numpy as np
import pytest

from repro.nn import (
    MLPClassifier,
    MLPEncoder,
    SGD,
    SmallConvEncoder,
    Tensor,
    accuracy,
    cross_entropy,
    l2_regularization,
    mse_loss,
    resnet9,
    resnet18,
)

from ..helpers import rng


class TestResNet:
    def test_resnet18_feature_dim(self):
        encoder = resnet18(width=8, rng=rng(0))
        assert encoder.feature_dim == 64  # 8 * 2**3

    def test_resnet18_forward_shape(self):
        encoder = resnet18(width=4, rng=rng(0))
        out = encoder(Tensor(rng(1).standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 32)

    def test_resnet9_forward_shape(self):
        encoder = resnet9(width=4, rng=rng(0))
        out = encoder(Tensor(rng(1).standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 16)

    def test_paper_configuration_dim(self):
        # width=64 gives the paper's 512-d features; build only, no forward
        encoder = resnet18(width=64, rng=rng(0))
        assert encoder.feature_dim == 512

    def test_gradients_flow_to_first_conv(self):
        encoder = resnet9(width=2, rng=rng(0))
        out = encoder(Tensor(rng(1).standard_normal((2, 3, 8, 8))))
        (out**2).sum().backward()
        assert encoder.conv1.weight.grad is not None
        assert np.any(encoder.conv1.weight.grad != 0)

    def test_eval_mode_deterministic(self):
        encoder = resnet9(width=2, rng=rng(0))
        encoder.eval()
        x = Tensor(rng(1).standard_normal((2, 3, 8, 8)))
        np.testing.assert_allclose(encoder(x).data, encoder(x).data)


class TestSmallConv:
    def test_forward_shape(self):
        encoder = SmallConvEncoder(width=4, rng=rng(0))
        out = encoder(Tensor(rng(1).standard_normal((3, 3, 12, 12))))
        assert out.shape == (3, 16)

    def test_state_dict_round_trip(self):
        a = SmallConvEncoder(width=4, rng=rng(0))
        b = SmallConvEncoder(width=4, rng=rng(1))
        b.load_state_dict(a.state_dict())
        a.eval()
        b.eval()
        x = Tensor(rng(2).standard_normal((2, 3, 12, 12)))
        np.testing.assert_allclose(a(x).data, b(x).data)


class TestMLP:
    def test_encoder_shape(self):
        encoder = MLPEncoder(input_dim=48, hidden_dims=(32, 16), rng=rng(0))
        out = encoder(Tensor(rng(1).standard_normal((5, 3, 4, 4))))
        assert out.shape == (5, 16)
        assert encoder.feature_dim == 16

    def test_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            MLPEncoder(input_dim=10, hidden_dims=())

    def test_classifier_trains_on_blobs(self):
        generator = rng(0)
        centers = generator.standard_normal((3, 10)) * 3.0
        x_data = np.concatenate([centers[k] + 0.3 * generator.standard_normal((30, 10))
                                 for k in range(3)])
        y = np.repeat(np.arange(3), 30)
        model = MLPClassifier(MLPEncoder(10, (16,), rng=generator), 3, rng=generator)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(60):
            opt.zero_grad()
            loss = cross_entropy(model(Tensor(x_data)), y)
            loss.backward()
            opt.step()
        model.eval()
        assert accuracy(model(Tensor(x_data)), y) > 0.95


class TestSupervisedLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10.0))

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.eye(3) * 100.0, requires_grad=True)
        loss = cross_entropy(logits, np.arange(3))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient_is_softmax_minus_target(self):
        logits = Tensor(rng(0).standard_normal((5, 4)), requires_grad=True)
        labels = np.array([0, 1, 2, 3, 0])
        cross_entropy(logits, labels).backward()
        exp = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs = exp / exp.sum(axis=1, keepdims=True)
        target = np.eye(4)[labels]
        np.testing.assert_allclose(logits.grad, (probs - target) / 5.0, atol=1e-8)

    def test_label_smoothing_increases_uniform_target_loss(self):
        logits = Tensor(np.eye(3) * 10.0, requires_grad=True)
        plain = cross_entropy(logits, np.arange(3)).item()
        smoothed = cross_entropy(logits, np.arange(3), label_smoothing=0.2).item()
        assert smoothed > plain

    def test_cross_entropy_validates_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))

    def test_mse(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([0.0, 0.0]))
        assert mse_loss(a, b).item() == pytest.approx(2.5)

    def test_l2_regularization(self):
        params = [Tensor(np.array([3.0]), requires_grad=True),
                  Tensor(np.array([4.0]), requires_grad=True)]
        assert l2_regularization(params, 0.5).item() == pytest.approx(12.5)
        with pytest.raises(ValueError):
            l2_regularization([], 1.0)

    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2.0 / 3.0)
        assert accuracy(logits[:0], np.array([], dtype=int)) == 0.0
