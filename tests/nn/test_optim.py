"""Tests for optimizers and LR schedulers."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    Linear,
    Parameter,
    StepLR,
    Tensor,
    WarmupCosineLR,
    mse_loss,
)

from ..helpers import rng


def quadratic_param(value=5.0):
    return Parameter(np.array([value]))


def minimize(optimizer, param, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (param * param).sum()
        loss.backward()
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_plain_sgd_matches_manual_update(self):
        param = quadratic_param(2.0)
        opt = SGD([param], lr=0.1)
        (param * param).sum().backward()
        opt.step()
        assert param.data[0] == pytest.approx(2.0 - 0.1 * 4.0)

    def test_converges_on_quadratic(self):
        param = quadratic_param()
        assert abs(minimize(SGD([param], lr=0.1), param)) < 1e-6

    def test_momentum_converges(self):
        param = quadratic_param()
        assert abs(minimize(SGD([param], lr=0.05, momentum=0.9), param, steps=400)) < 1e-6

    def test_nesterov_converges(self):
        param = quadratic_param()
        assert abs(minimize(SGD([param], lr=0.05, momentum=0.9, nesterov=True), param,
                            steps=400)) < 1e-6

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        param.grad = np.array([0.0])
        opt.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_parameters_without_grad(self):
        a, b = quadratic_param(1.0), quadratic_param(1.0)
        opt = SGD([a, b], lr=0.1)
        (a * a).sum().backward()
        opt.step()
        assert b.data[0] == 1.0

    def test_invalid_hyperparameters(self):
        param = quadratic_param()
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_state_dict_round_trip(self):
        param = quadratic_param()
        opt = SGD([param], lr=0.05, momentum=0.9)
        minimize(opt, param, steps=3)
        state = opt.state_dict()
        fresh_param = quadratic_param()
        fresh = SGD([fresh_param], lr=0.05, momentum=0.9)
        fresh.load_state_dict(state)
        assert fresh.lr == opt.lr
        np.testing.assert_allclose(fresh._velocity[0], opt._velocity[0])


class TestAdam:
    def test_converges_on_quadratic(self):
        param = quadratic_param()
        assert abs(minimize(Adam([param], lr=0.1), param, steps=400)) < 1e-4

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |Δ| of the first Adam step is ~lr.
        param = quadratic_param(3.0)
        opt = Adam([param], lr=0.01)
        (param * param).sum().backward()
        opt.step()
        assert abs(3.0 - param.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_trains_linear_regression(self):
        generator = rng(0)
        x = Tensor(generator.standard_normal((64, 3)))
        true_w = generator.standard_normal((1, 3))
        y = Tensor(x.data @ true_w.T)
        layer = Linear(3, 1, rng=generator)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            mse_loss(layer(x), y).backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.02)


class TestSchedulers:
    def test_constant(self):
        param = quadratic_param()
        opt = SGD([param], lr=0.3)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 0.3

    def test_step_lr(self):
        param = quadratic_param()
        opt = SGD([param], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        # step() advances to epochs 1..4 and returns the LR for each new epoch.
        lrs = [sched.step() for _ in range(4)]
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        param = quadratic_param()
        opt = SGD([param], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.0, abs=1e-12)
        assert lrs[4] == pytest.approx(0.5, abs=1e-2)

    def test_cosine_monotone_decreasing(self):
        param = quadratic_param()
        opt = SGD([param], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_cosine(self):
        param = quadratic_param()
        opt = SGD([param], lr=1.0)
        sched = WarmupCosineLR(opt, warmup_epochs=5, t_max=15)
        lrs = [sched.step() for _ in range(15)]
        np.testing.assert_allclose(lrs[:5], [0.2, 0.4, 0.6, 0.8, 1.0])
        assert lrs[-1] == pytest.approx(0.0, abs=1e-12)

    def test_invalid_arguments(self):
        param = quadratic_param()
        opt = SGD([param], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
        with pytest.raises(ValueError):
            WarmupCosineLR(opt, warmup_epochs=10, t_max=5)
