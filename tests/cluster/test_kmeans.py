"""Tests for the KMeans substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import KMeans, kmeans, kmeans_plus_plus_init


def blobs(k=3, per=40, d=4, sep=8.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, d)) * sep
    points = np.concatenate([centers[j] + rng.standard_normal((per, d)) for j in range(k)])
    labels = np.repeat(np.arange(k), per)
    return points, labels, centers


class TestKMeansFunction:
    def test_recovers_separated_blobs(self):
        points, labels, _ = blobs(seed=1)
        result = kmeans(points, 3, rng=np.random.default_rng(2))
        # Cluster assignments should be a relabeling of the true labels.
        for j in range(3):
            members = result.labels[labels == j]
            majority = np.bincount(members).max()
            assert majority / members.shape[0] > 0.95

    def test_converges(self):
        points, _, _ = blobs(seed=3)
        result = kmeans(points, 3, rng=np.random.default_rng(4))
        assert result.converged
        assert result.iterations < 100

    def test_inertia_decreases_with_more_clusters(self):
        points, _, _ = blobs(seed=5)
        inertia_2 = kmeans(points, 2, rng=np.random.default_rng(0)).inertia
        inertia_6 = kmeans(points, 6, rng=np.random.default_rng(0)).inertia
        assert inertia_6 < inertia_2

    def test_k_clamped_to_point_count(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(points, 5, rng=np.random.default_rng(0))
        assert result.centers.shape[0] == 2

    def test_single_cluster_center_is_mean(self):
        points, _, _ = blobs(k=2, seed=6)
        result = kmeans(points, 1, rng=np.random.default_rng(0))
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0), atol=1e-8)

    def test_identical_points(self):
        points = np.ones((10, 3))
        result = kmeans(points, 3, rng=np.random.default_rng(0))
        assert np.all(np.isfinite(result.centers))
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((4, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(np.zeros(4), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((4, 2)), 2, init="bogus")

    def test_random_init_also_works(self):
        points, labels, _ = blobs(seed=7)
        result = kmeans(points, 3, rng=np.random.default_rng(8), init="random")
        assert result.inertia < kmeans(points, 1, rng=np.random.default_rng(0)).inertia

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_property_labels_in_range_and_partition(self, k):
        points, _, _ = blobs(k=3, per=20, seed=9)
        result = kmeans(points, k, rng=np.random.default_rng(10))
        assert result.labels.shape[0] == points.shape[0]
        assert result.labels.min() >= 0
        assert result.labels.max() < min(k, points.shape[0])

    def test_assignment_is_nearest_center(self):
        points, _, _ = blobs(seed=11)
        result = kmeans(points, 3, rng=np.random.default_rng(12))
        dists = ((points[:, None, :] - result.centers[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(result.labels, dists.argmin(axis=1))


class TestKMeansPlusPlus:
    def test_centers_are_input_points(self):
        points, _, _ = blobs(seed=13)
        centers = kmeans_plus_plus_init(points, 3, np.random.default_rng(14))
        for center in centers:
            assert np.any(np.all(np.isclose(points, center), axis=1))

    def test_spreads_centers(self):
        # Two far blobs: the two seeds should land in different blobs almost surely.
        rng = np.random.default_rng(15)
        a = rng.standard_normal((50, 2))
        b = rng.standard_normal((50, 2)) + 100.0
        points = np.concatenate([a, b])
        centers = kmeans_plus_plus_init(points, 2, np.random.default_rng(16))
        assert abs(centers[0, 0] - centers[1, 0]) > 50.0


class TestKMeansClass:
    def test_fit_predict(self):
        points, labels, _ = blobs(seed=17)
        model = KMeans(3, seed=18)
        assigned = model.fit_predict(points)
        assert assigned.shape == labels.shape

    def test_predict_new_points(self):
        points, _, centers = blobs(seed=19)
        model = KMeans(3, seed=20).fit(points)
        fresh = model.predict(centers)
        assert np.unique(fresh).shape[0] == 3

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))
        with pytest.raises(RuntimeError):
            _ = KMeans(2).centers
