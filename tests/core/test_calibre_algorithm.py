"""Algorithm-level tests for Calibre: loss assembly, aggregation, edge cases."""

import numpy as np
import pytest

from repro.core import Calibre
from repro.data import DataSplit, make_cifar10_like, partition_dirichlet
from repro.fl import ClientData, FederatedConfig, FederatedServer, build_federation
from repro.nn import MLPEncoder

IMAGE_SIZE = 8
INPUT_DIM = 3 * IMAGE_SIZE * IMAGE_SIZE


def encoder_factory():
    return MLPEncoder(INPUT_DIM, hidden_dims=(24, 12), rng=np.random.default_rng(42))


def make_setup(num_clients=4, rounds=2, seed=0, **config_overrides):
    defaults = dict(num_clients=num_clients, clients_per_round=min(2, num_clients),
                    rounds=rounds, local_epochs=1, batch_size=16,
                    personalization_epochs=3, seed=seed)
    defaults.update(config_overrides)
    config = FederatedConfig(**defaults)
    dataset = make_cifar10_like(image_size=IMAGE_SIZE, train_per_class=24,
                                test_per_class=4, seed=seed)
    parts = partition_dirichlet(dataset.train.labels, num_clients, 0.5,
                                samples_per_client=40,
                                rng=np.random.default_rng(seed))
    clients = build_federation(dataset, parts, seed=seed)
    return config, dataset, clients


class TestConstruction:
    def test_name_includes_base_method(self):
        config, _, _ = make_setup()
        algorithm = Calibre(config, 10, encoder_factory, ssl_name="byol")
        assert algorithm.name == "calibre-byol"

    def test_defaults_num_prototypes_to_classes(self):
        config, _, _ = make_setup()
        algorithm = Calibre(config, 10, encoder_factory)
        assert algorithm.num_prototypes == 10

    def test_validation(self):
        config, _, _ = make_setup()
        with pytest.raises(ValueError):
            Calibre(config, 10, encoder_factory, alpha=-1.0)
        with pytest.raises(ValueError):
            Calibre(config, 10, encoder_factory, num_prototypes=1)
        with pytest.raises(KeyError):
            Calibre(config, 10, encoder_factory, ssl_name="nope")


class TestLocalLoss:
    def test_metrics_cover_all_enabled_terms(self):
        config, _, clients = make_setup()
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3)
        update = algorithm.local_update(clients[0], algorithm.build_global_state(), 0)
        assert {"loss", "l_c", "l_n", "divergence"} <= set(update.metrics)

    def test_total_loss_exceeds_base_when_regularized(self):
        """With all terms on, the reported loss includes l_c + α(l_p + l_n),
        so it must exceed the bare-SSL loss on the same data and seed."""
        config, _, clients = make_setup()
        full = Calibre(config, 10, encoder_factory, num_prototypes=3)
        bare = Calibre(config, 10, encoder_factory, num_prototypes=3,
                       use_ln=False, use_lp=False, use_lc=False)
        update_full = full.local_update(clients[0], full.build_global_state(), 0)
        update_bare = bare.local_update(clients[0], bare.build_global_state(), 0)
        assert update_full.metrics["loss"] > update_bare.metrics["loss"]

    def test_alpha_zero_removes_regularizer_weight(self):
        config, _, clients = make_setup()
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3, alpha=0.0,
                            use_lc=False)
        bare = Calibre(config, 10, encoder_factory, num_prototypes=3,
                       use_ln=False, use_lp=False, use_lc=False)
        update_a = algorithm.local_update(clients[0], algorithm.build_global_state(), 0)
        update_b = bare.local_update(clients[0], bare.build_global_state(), 0)
        assert update_a.metrics["loss"] == pytest.approx(update_b.metrics["loss"],
                                                         rel=1e-6)


class TestAggregation:
    def test_divergence_weighting_changes_aggregate(self):
        from repro.fl import ClientUpdate

        config, _, _ = make_setup()
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3,
                            divergence_temperature=5.0)
        updates = [
            ClientUpdate(client_id=0, state={"w": np.array([0.0])}, weight=10.0,
                         metrics={"divergence": 0.1}),
            ClientUpdate(client_id=1, state={"w": np.array([10.0])}, weight=10.0,
                         metrics={"divergence": 3.0}),
        ]
        merged = algorithm.aggregate(updates, {"w": np.array([0.0])}, 0)
        # Client 1 diverges more, so the aggregate must sit below the plain
        # FedAvg value of 5.0.
        assert merged["w"][0] < 5.0

    def test_temperature_zero_recovers_fedavg(self):
        from repro.fl import ClientUpdate

        config, _, _ = make_setup()
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3,
                            divergence_temperature=0.0)
        updates = [
            ClientUpdate(client_id=0, state={"w": np.array([0.0])}, weight=10.0,
                         metrics={"divergence": 0.1}),
            ClientUpdate(client_id=1, state={"w": np.array([10.0])}, weight=10.0,
                         metrics={"divergence": 3.0}),
        ]
        merged = algorithm.aggregate(updates, {"w": np.array([0.0])}, 0)
        assert merged["w"][0] == pytest.approx(5.0)

    def test_empty_round(self):
        config, _, _ = make_setup()
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3)
        state = {"w": np.array([1.0])}
        assert algorithm.aggregate([], state, 0) is state


class TestEdgeCases:
    def test_single_sample_batches_skipped(self):
        """Batches of one sample cannot form a positive pair; training must
        proceed on the remaining batches rather than crash."""
        config, dataset, clients = make_setup(batch_size=16)
        client = clients[0]
        # Shrink the client's pool so the final batch has a single sample.
        odd = DataSplit(client.train.images[:17], client.train.labels[:17])
        lone_client = ClientData(client_id=77, train=odd, test=client.test)
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3)
        update = algorithm.local_update(lone_client, algorithm.build_global_state(), 0)
        assert np.isfinite(update.metrics["loss"])

    def test_tiny_client_trains(self):
        config, dataset, clients = make_setup()
        tiny = ClientData(
            client_id=88,
            train=DataSplit(clients[0].train.images[:6], clients[0].train.labels[:6]),
            test=DataSplit(clients[0].test.images[:3], clients[0].test.labels[:3]),
        )
        algorithm = Calibre(config, 10, encoder_factory, num_prototypes=3)
        update = algorithm.local_update(tiny, algorithm.build_global_state(), 0)
        assert np.isfinite(update.metrics["loss"])
        result = algorithm.personalize(tiny, algorithm.build_global_state())
        assert 0.0 <= result.accuracy <= 1.0

    @pytest.mark.parametrize("ssl_name", ["simclr", "byol", "simsiam", "mocov2",
                                           "swav", "smog"])
    def test_full_run_all_variants_smoke(self, ssl_name):
        config, dataset, clients = make_setup(rounds=1)
        algorithm = Calibre(config, 10, encoder_factory, ssl_name=ssl_name,
                            num_prototypes=3)
        result = FederatedServer(algorithm, clients, config).run()
        assert len(result.accuracies) == len(clients)
