"""Tests for Calibre's prototype machinery and loss terms."""

import numpy as np
import pytest

from repro.core import (
    ViewClusters,
    average_prototype_distance,
    cluster_views,
    differentiable_prototypes,
    divergence_weights,
    prototype_classification_loss,
    prototype_contrastive_loss,
    prototype_meta_loss,
)
from repro.nn import Tensor

from ..helpers import rng


def clustered_views(k=3, per=10, d=6, sep=6.0, seed=0):
    """Two views of clustered encodings (view o = view e + small noise)."""
    generator = rng(seed)
    centers = generator.standard_normal((k, d)) * sep
    z_e = np.concatenate([centers[j] + generator.standard_normal((per, d)) for j in range(k)])
    z_o = z_e + 0.1 * generator.standard_normal(z_e.shape)
    return (Tensor(z_e, requires_grad=True), Tensor(z_o, requires_grad=True))


class TestClusterViews:
    def test_shapes(self):
        z_e, z_o = clustered_views()
        clusters = cluster_views(z_e, z_o, 3, rng=rng(1))
        assert clusters.centers.shape == (3, 6)
        assert clusters.labels_e.shape == (30,)
        assert clusters.labels_o.shape == (30,)

    def test_views_of_same_sample_agree(self):
        z_e, z_o = clustered_views(seed=2)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(2))
        agreement = (clusters.labels_e == clusters.labels_o).mean()
        assert agreement > 0.9

    def test_shape_mismatch_raises(self):
        z_e, _ = clustered_views()
        with pytest.raises(ValueError):
            cluster_views(z_e, Tensor(np.zeros((5, 6))), 3)


class TestDifferentiablePrototypes:
    def test_prototype_is_cluster_mean(self):
        features = Tensor(rng(3).standard_normal((6, 4)), requires_grad=True)
        assignments = np.array([0, 0, 1, 1, 1, 0])
        prototypes = differentiable_prototypes(features, assignments, 2)
        np.testing.assert_allclose(
            prototypes.data[0], features.data[assignments == 0].mean(axis=0), atol=1e-10
        )
        np.testing.assert_allclose(
            prototypes.data[1], features.data[assignments == 1].mean(axis=0), atol=1e-10
        )

    def test_gradients_flow_to_features(self):
        features = Tensor(rng(4).standard_normal((5, 3)), requires_grad=True)
        assignments = np.array([0, 1, 0, 1, 0])
        prototypes = differentiable_prototypes(features, assignments, 2)
        (prototypes**2).sum().backward()
        assert features.grad is not None
        assert np.any(features.grad != 0)

    def test_empty_cluster_uses_fallback(self):
        features = Tensor(rng(5).standard_normal((4, 3)), requires_grad=True)
        assignments = np.zeros(4, dtype=int)  # cluster 1 empty
        fallback = np.full((2, 3), 7.0)
        prototypes = differentiable_prototypes(features, assignments, 2, fallback)
        np.testing.assert_allclose(prototypes.data[1], np.full(3, 7.0))

    def test_empty_cluster_without_fallback_raises(self):
        features = Tensor(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            differentiable_prototypes(features, np.zeros(3, dtype=int), 2)

    def test_assignment_length_validated(self):
        features = Tensor(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            differentiable_prototypes(features, np.zeros(5, dtype=int), 2)


class TestPrototypeMetaLoss:
    def test_clustered_data_gives_lower_loss_than_shuffled(self):
        z_e, z_o = clustered_views(seed=6)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(6))
        tight = prototype_meta_loss(z_e, z_o, clusters, 0.5).item()

        shuffled = ViewClusters(
            centers=clusters.centers,
            labels_e=rng(7).permutation(clusters.labels_e),
            labels_o=rng(8).permutation(clusters.labels_o),
        )
        loose = prototype_meta_loss(z_e, z_o, shuffled, 0.5).item()
        assert tight < loose

    def test_gradients_reach_both_views(self):
        z_e, z_o = clustered_views(seed=9)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(9))
        prototype_meta_loss(z_e, z_o, clusters, 0.5).backward()
        assert z_e.grad is not None and np.any(z_e.grad != 0)
        assert z_o.grad is not None and np.any(z_o.grad != 0)

    def test_temperature_validated(self):
        z_e, z_o = clustered_views()
        clusters = cluster_views(z_e, z_o, 2, rng=rng(0))
        with pytest.raises(ValueError):
            prototype_meta_loss(z_e, z_o, clusters, temperature=0.0)

    def test_finite_under_single_cluster(self):
        z_e = Tensor(rng(10).standard_normal((8, 4)), requires_grad=True)
        z_o = Tensor(rng(11).standard_normal((8, 4)), requires_grad=True)
        clusters = cluster_views(z_e, z_o, 1, rng=rng(12))
        loss = prototype_meta_loss(z_e, z_o, clusters, 0.5)
        assert np.isfinite(loss.item())


class TestPrototypeContrastiveLoss:
    def test_positive_and_finite(self):
        z_e, z_o = clustered_views(seed=13)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(13))
        loss = prototype_contrastive_loss(z_e, z_o, clusters, 0.5)
        assert loss is not None
        assert np.isfinite(loss.item())

    def test_returns_none_for_single_cluster(self):
        z_e, z_o = clustered_views(seed=14)
        clusters = cluster_views(z_e, z_o, 1, rng=rng(14))
        assert prototype_contrastive_loss(z_e, z_o, clusters) is None

    def test_aligned_views_lower_loss_than_opposed(self):
        z_e, z_o = clustered_views(seed=15, sep=8.0)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(15))
        aligned = prototype_contrastive_loss(z_e, z_o, clusters, 0.5).item()
        opposed = prototype_contrastive_loss(z_e, Tensor(-z_o.data), clusters, 0.5).item()
        assert aligned < opposed


class TestPrototypeClassificationLoss:
    def test_tight_clusters_give_small_loss(self):
        z_e, z_o = clustered_views(seed=16, sep=10.0)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(16))
        loss = prototype_classification_loss(z_e, clusters, view="e")
        assert loss.item() < 0.5

    def test_view_validated(self):
        z_e, z_o = clustered_views()
        clusters = cluster_views(z_e, z_o, 2, rng=rng(0))
        with pytest.raises(ValueError):
            prototype_classification_loss(z_e, clusters, view="x")

    def test_gradient_flows(self):
        z_e, z_o = clustered_views(seed=17)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(17))
        prototype_classification_loss(z_e, clusters).backward()
        assert z_e.grad is not None


class TestAveragePrototypeDistance:
    def test_zero_when_points_are_centers(self):
        centers = rng(18).standard_normal((2, 3))
        z = Tensor(np.concatenate([centers, centers]))
        clusters = ViewClusters(centers=centers, labels_e=np.array([0, 1]),
                                labels_o=np.array([0, 1]))
        assert average_prototype_distance(z, clusters) == pytest.approx(0.0, abs=1e-12)

    def test_positive_otherwise(self):
        z_e, z_o = clustered_views(seed=19)
        clusters = cluster_views(z_e, z_o, 3, rng=rng(19))
        combined = Tensor(np.concatenate([z_e.data, z_o.data]))
        assert average_prototype_distance(combined, clusters) > 0


class TestDivergenceWeights:
    def test_equal_divergence_reduces_to_fedavg(self):
        weights = divergence_weights([10, 30], [1.0, 1.0])
        np.testing.assert_allclose(weights, [0.25, 0.75])

    def test_lower_divergence_gets_more_weight(self):
        weights = divergence_weights([10, 10], [0.5, 2.0])
        assert weights[0] > weights[1]

    def test_zero_divergences_fall_back_to_counts(self):
        weights = divergence_weights([1, 3], [0.0, 0.0])
        np.testing.assert_allclose(weights, [0.25, 0.75])

    def test_modes_agree_on_ordering(self):
        for mode in ("softmax", "inverse"):
            weights = divergence_weights([10, 10, 10], [0.1, 1.0, 3.0], mode=mode)
            assert weights[0] > weights[1] > weights[2]

    def test_sum_to_one(self):
        weights = divergence_weights([5, 7, 11], [0.3, 0.6, 0.9])
        assert weights.sum() == pytest.approx(1.0)

    def test_temperature_zero_is_fedavg(self):
        weights = divergence_weights([10, 30], [0.1, 5.0], temperature=0.0)
        np.testing.assert_allclose(weights, [0.25, 0.75])

    def test_validation(self):
        with pytest.raises(ValueError):
            divergence_weights([], [])
        with pytest.raises(ValueError):
            divergence_weights([1, 2], [1.0])
        with pytest.raises(ValueError):
            divergence_weights([0, 2], [1.0, 1.0])
        with pytest.raises(ValueError):
            divergence_weights([1, 2], [-1.0, 1.0])
        with pytest.raises(ValueError):
            divergence_weights([1, 2], [np.nan, 1.0])
        with pytest.raises(ValueError):
            divergence_weights([1, 2], [1.0, 2.0], mode="bogus")
