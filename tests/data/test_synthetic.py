"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    DataSplit,
    SyntheticImageDataset,
    make_cifar10_like,
    make_cifar100_like,
    make_stl10_like,
)


class TestDataSplit:
    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            DataSplit(np.zeros((4, 3, 8)), np.zeros(4))
        with pytest.raises(ValueError):
            DataSplit(np.zeros((4, 3, 8, 8)), np.zeros(5))

    def test_subset(self):
        split = DataSplit(np.arange(4 * 3 * 2 * 2, dtype=float).reshape(4, 3, 2, 2),
                          np.array([0, 1, 0, 1]))
        sub = split.subset(np.array([1, 3]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.labels, [1, 1])

    def test_num_classes_ignores_unlabeled(self):
        split = DataSplit(np.zeros((3, 1, 2, 2)), np.array([-1, 2, 0]))
        assert split.num_classes == 3


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = SyntheticImageDataset(num_classes=4, image_size=8, train_per_class=5,
                                  test_per_class=2, seed=7)
        b = SyntheticImageDataset(num_classes=4, image_size=8, train_per_class=5,
                                  test_per_class=2, seed=7)
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(num_classes=4, image_size=8, seed=1)
        b = SyntheticImageDataset(num_classes=4, image_size=8, seed=2)
        assert not np.allclose(a.train.images, b.train.images)

    def test_split_sizes(self):
        dataset = SyntheticImageDataset(num_classes=5, image_size=8, train_per_class=7,
                                        test_per_class=3, unlabeled_size=11, seed=0)
        assert len(dataset.train) == 35
        assert len(dataset.test) == 15
        assert len(dataset.unlabeled) == 11
        assert np.all(dataset.unlabeled.labels == -1)

    def test_balanced_labels(self):
        dataset = SyntheticImageDataset(num_classes=5, image_size=8, train_per_class=6, seed=0)
        counts = np.bincount(dataset.train.labels, minlength=5)
        np.testing.assert_array_equal(counts, np.full(5, 6))

    def test_class_structure_is_learnable(self):
        """A nearest-class-prototype rule on raw pixels must beat chance by a
        wide margin — otherwise no downstream experiment is meaningful."""
        dataset = SyntheticImageDataset(num_classes=5, image_size=8, train_per_class=40,
                                        test_per_class=20, seed=3)
        train_x = dataset.train.images.reshape(len(dataset.train), -1)
        test_x = dataset.test.images.reshape(len(dataset.test), -1)
        centroids = np.stack([
            train_x[dataset.train.labels == k].mean(axis=0) for k in range(5)
        ])
        distances = ((test_x[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        acc = (predictions == dataset.test.labels).mean()
        assert acc > 0.6, f"synthetic data not separable enough: {acc:.3f}"

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=4, image_size=2)
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=10, num_superclasses=3)

    def test_sample_renders_fresh_split(self):
        dataset = SyntheticImageDataset(num_classes=4, image_size=8, seed=0)
        labels = np.array([0, 1, 2, 3, 0])
        extra = dataset.sample(labels, seed=99)
        assert len(extra) == 5
        np.testing.assert_array_equal(extra.labels, labels)
        again = dataset.sample(labels, seed=99)
        np.testing.assert_array_equal(extra.images, again.images)


class TestFactories:
    def test_cifar10_like(self):
        dataset = make_cifar10_like(image_size=8, train_per_class=4, test_per_class=2, seed=0)
        assert dataset.num_classes == 10
        assert dataset.train.num_classes == 10
        assert len(dataset.unlabeled) == 0

    def test_cifar100_like_superclass_structure(self):
        dataset = make_cifar100_like(image_size=8, train_per_class=2, test_per_class=1,
                                     num_classes=20, seed=0)
        assert dataset.num_classes == 20
        # Fine classes within a superclass must be more similar than across.
        prototypes = dataset._prototypes.reshape(20, -1)
        per_super = 5
        within, across = [], []
        for i in range(20):
            for j in range(i + 1, 20):
                sim = float(
                    prototypes[i] @ prototypes[j]
                    / (np.linalg.norm(prototypes[i]) * np.linalg.norm(prototypes[j]))
                )
                if i // per_super == j // per_super:
                    within.append(sim)
                else:
                    across.append(sim)
        assert np.mean(within) > np.mean(across) + 0.2

    def test_stl10_like_has_unlabeled_pool(self):
        dataset = make_stl10_like(image_size=8, train_per_class=3, test_per_class=2,
                                  unlabeled_size=50, seed=0)
        assert len(dataset.unlabeled) == 50
        assert dataset.unlabeled.labels.max() == -1
