"""Tests and property-based tests for the non-i.i.d. partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    classes_per_client,
    client_label_matrix,
    effective_classes,
    heterogeneity_tv,
    label_histogram,
    partition_dirichlet,
    partition_iid,
    partition_quantity_label,
    stratified_split,
)


def balanced_labels(num_classes=10, per_class=50, seed=0):
    labels = np.repeat(np.arange(num_classes), per_class)
    return np.random.default_rng(seed).permutation(labels)


class TestIID:
    def test_covers_all_indices(self):
        labels = balanced_labels()
        parts = partition_iid(labels, 10, np.random.default_rng(0))
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(labels.shape[0]))

    def test_fixed_samples_per_client(self):
        labels = balanced_labels()
        parts = partition_iid(labels, 5, np.random.default_rng(0), samples_per_client=40)
        assert all(len(p) == 40 for p in parts)

    def test_oversubscription_raises(self):
        labels = balanced_labels(num_classes=2, per_class=5)
        with pytest.raises(ValueError):
            partition_iid(labels, 3, np.random.default_rng(0), samples_per_client=100)

    def test_low_heterogeneity(self):
        labels = balanced_labels()
        parts = partition_iid(labels, 5, np.random.default_rng(0))
        matrix = client_label_matrix(labels, parts, 10)
        assert heterogeneity_tv(matrix) < 0.25


class TestQuantityLabel:
    @pytest.mark.parametrize("classes_per", [1, 2, 5])
    def test_exact_class_count(self, classes_per):
        labels = balanced_labels()
        parts = partition_quantity_label(labels, 8, classes_per, samples_per_client=20,
                                         rng=np.random.default_rng(1))
        matrix = client_label_matrix(labels, parts, 10)
        np.testing.assert_array_equal(classes_per_client(matrix), np.full(8, classes_per))

    def test_samples_per_client(self):
        labels = balanced_labels()
        parts = partition_quantity_label(labels, 8, 2, samples_per_client=25,
                                         rng=np.random.default_rng(2))
        assert all(len(p) == 25 for p in parts)

    def test_all_classes_covered_when_enough_slots(self):
        labels = balanced_labels()
        parts = partition_quantity_label(labels, 10, 2, samples_per_client=20,
                                         rng=np.random.default_rng(3))
        matrix = client_label_matrix(labels, parts, 10)
        assert np.all(matrix.sum(axis=0) > 0)

    def test_high_heterogeneity(self):
        labels = balanced_labels()
        parts = partition_quantity_label(labels, 10, 2, samples_per_client=20,
                                         rng=np.random.default_rng(4))
        matrix = client_label_matrix(labels, parts, 10)
        assert heterogeneity_tv(matrix) > 0.5

    def test_invalid_classes_per_client(self):
        labels = balanced_labels()
        with pytest.raises(ValueError):
            partition_quantity_label(labels, 4, 0)
        with pytest.raises(ValueError):
            partition_quantity_label(labels, 4, 11)

    @given(
        num_clients=st.integers(min_value=2, max_value=12),
        classes_per=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_class_count_and_size(self, num_clients, classes_per):
        labels = balanced_labels(num_classes=6, per_class=60, seed=5)
        parts = partition_quantity_label(labels, num_clients, min(classes_per, 6),
                                         samples_per_client=12,
                                         rng=np.random.default_rng(6))
        matrix = client_label_matrix(labels, parts, 6)
        assert np.all(classes_per_client(matrix) == min(classes_per, 6))
        assert all(len(p) == 12 for p in parts)

    def test_quota_met_under_forced_recycling(self):
        # 4 samples per class, but every client demands 10 from one class:
        # each draw must recycle the class pool multiple times.  The old
        # single-recycle draw() silently returned fewer samples here.
        labels = balanced_labels(num_classes=4, per_class=4)
        parts = partition_quantity_label(labels, 6, 1, samples_per_client=10,
                                         rng=np.random.default_rng(7))
        assert all(len(p) == 10 for p in parts)
        for part in parts:
            assert len(np.unique(labels[part])) == 1

    @given(
        num_clients=st.integers(min_value=2, max_value=10),
        classes_per=st.integers(min_value=1, max_value=3),
        samples=st.integers(min_value=4, max_value=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_quota_exact_with_tiny_classes(self, num_clients, classes_per,
                                                    samples):
        # Only 3 samples per class against demands of up to 40: recycling is
        # forced on essentially every draw, and the quota must still be met
        # exactly — never fewer than samples_per_client indices per client.
        labels = balanced_labels(num_classes=3, per_class=3, seed=8)
        parts = partition_quantity_label(labels, num_clients, classes_per,
                                         samples_per_client=samples,
                                         rng=np.random.default_rng(9))
        assert all(len(p) == samples for p in parts)

    def test_empty_class_pool_raises(self):
        # Class id 1 exists nominally (labels.max() == 2) but has no
        # samples.  With 3 clients x 1 class each, the slot pool covers all
        # 3 classes, so class 1 is always assigned to someone — and the
        # draw must fail loudly, not hand that client an empty partition.
        labels = np.array([0, 0, 0, 0, 2, 2, 2, 2])
        with pytest.raises(ValueError, match="class 1"):
            partition_quantity_label(labels, 3, 1, samples_per_client=4,
                                     rng=np.random.default_rng(0))


class TestDirichlet:
    def test_sizes(self):
        labels = balanced_labels()
        parts = partition_dirichlet(labels, 10, 0.3, samples_per_client=30,
                                    rng=np.random.default_rng(0))
        assert all(len(p) >= 30 for p in parts)

    def test_skew_increases_as_concentration_drops(self):
        labels = balanced_labels(per_class=100)
        tv = {}
        for conc in (0.1, 100.0):
            parts = partition_dirichlet(labels, 20, conc, samples_per_client=40,
                                        rng=np.random.default_rng(1))
            tv[conc] = heterogeneity_tv(client_label_matrix(labels, parts, 10))
        assert tv[0.1] > tv[100.0] + 0.2

    def test_invalid_concentration(self):
        with pytest.raises(ValueError):
            partition_dirichlet(balanced_labels(), 4, 0.0)

    def test_min_samples_guard(self):
        labels = balanced_labels()
        parts = partition_dirichlet(labels, 6, 0.05, samples_per_client=10, min_samples=2,
                                    rng=np.random.default_rng(2))
        for part in parts:
            hist = label_histogram(labels[part], 10)
            assert hist.max() >= 2

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_property_every_client_nonempty(self, seed):
        labels = balanced_labels(num_classes=5, per_class=40)
        parts = partition_dirichlet(labels, 8, 0.3, samples_per_client=15,
                                    rng=np.random.default_rng(seed))
        assert all(len(p) > 0 for p in parts)

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_property_quota_met_under_forced_recycling(self, seed):
        # 5 samples per class vs 25 demanded per client: heavily skewed
        # Dirichlet draws (concentration 0.1) concentrate demand on one
        # class, forcing multiple pool recycles per draw.  Every client
        # must still receive at least its full quota.
        labels = balanced_labels(num_classes=4, per_class=5, seed=seed)
        parts = partition_dirichlet(labels, 6, 0.1, samples_per_client=25,
                                    rng=np.random.default_rng(seed))
        assert all(len(p) >= 25 for p in parts)


class TestStratifiedSplit:
    def test_disjoint_and_complete(self):
        labels = balanced_labels(num_classes=4, per_class=25)
        indices = np.arange(40)
        train, test = stratified_split(indices, labels, 0.25, np.random.default_rng(0))
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.sort(indices))
        assert np.intersect1d(train, test).size == 0

    def test_class_distribution_consistent(self):
        rng = np.random.default_rng(1)
        labels = np.repeat([0, 1], [80, 20])
        indices = np.arange(100)
        train, test = stratified_split(indices, labels, 0.25, rng)
        train_frac = (labels[train] == 0).mean()
        test_frac = (labels[test] == 0).mean()
        assert abs(train_frac - test_frac) < 0.1

    def test_singleton_class_goes_to_train(self):
        labels = np.array([0, 0, 0, 0, 1])
        train, test = stratified_split(np.arange(5), labels, 0.25, np.random.default_rng(0))
        assert 4 in train
        assert 4 not in test

    def test_every_class_with_two_samples_in_test(self):
        labels = np.repeat(np.arange(5), 4)
        train, test = stratified_split(np.arange(20), labels, 0.25, np.random.default_rng(3))
        test_classes = set(labels[test])
        assert test_classes == set(range(5))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            stratified_split(np.arange(4), np.zeros(4, dtype=int), 0.0)
        with pytest.raises(ValueError):
            stratified_split(np.arange(4), np.zeros(4, dtype=int), 1.0)


class TestStats:
    def test_label_histogram_skips_unlabeled(self):
        hist = label_histogram(np.array([-1, 0, 1, 1]), 3)
        np.testing.assert_array_equal(hist, [1, 2, 0])

    def test_effective_classes_bounds(self):
        matrix = np.array([[10, 0, 0], [5, 5, 0], [4, 3, 3]])
        eff = effective_classes(matrix)
        assert eff[0] == pytest.approx(1.0)
        assert eff[1] == pytest.approx(2.0)
        assert 2.9 < eff[2] <= 3.0

    def test_heterogeneity_extremes(self):
        disjoint = np.array([[10, 0], [0, 10]])
        identical = np.array([[5, 5], [5, 5]])
        assert heterogeneity_tv(disjoint) == pytest.approx(0.5)
        assert heterogeneity_tv(identical) == pytest.approx(0.0)

    def test_heterogeneity_requires_samples(self):
        with pytest.raises(ValueError):
            heterogeneity_tv(np.array([[0, 0], [1, 1]]))
