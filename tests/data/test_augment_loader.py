"""Tests for augmentations and the DataLoader."""

import numpy as np
import pytest

from repro.data import (
    ColorJitter,
    Compose,
    Cutout,
    DataLoader,
    DataSplit,
    GaussianNoise,
    RandomCrop,
    RandomGrayscale,
    RandomHorizontalFlip,
    TwoViewAugment,
    batch_iterator,
    default_eval_augment,
    default_ssl_augment,
)


def rng(seed=0):
    return np.random.default_rng(seed)


def batch(seed=0, n=6, c=3, h=8, w=8):
    return rng(seed).standard_normal((n, c, h, w))


class TestAugmentations:
    def test_random_crop_preserves_shape(self):
        x = batch()
        out = RandomCrop(2)(x, rng(1))
        assert out.shape == x.shape

    def test_random_crop_changes_content(self):
        x = batch(1)
        out = RandomCrop(3)(x, rng(2))
        assert not np.allclose(out, x)

    def test_random_crop_validates_padding(self):
        with pytest.raises(ValueError):
            RandomCrop(0)

    def test_flip_probability_zero_is_identity(self):
        x = batch(2)
        np.testing.assert_array_equal(RandomHorizontalFlip(0.0)(x, rng(0)), x)

    def test_flip_probability_one_reverses_width(self):
        x = batch(3)
        out = RandomHorizontalFlip(1.0)(x, rng(0))
        np.testing.assert_array_equal(out, x[:, :, :, ::-1])

    def test_flip_is_involution(self):
        x = batch(4)
        out = RandomHorizontalFlip(1.0)(RandomHorizontalFlip(1.0)(x, rng(0)), rng(1))
        np.testing.assert_array_equal(out, x)

    def test_color_jitter_zero_strength_identity(self):
        x = batch(5)
        np.testing.assert_allclose(ColorJitter(0.0)(x, rng(0)), x)

    def test_color_jitter_changes_channels_independently(self):
        x = np.ones((2, 3, 4, 4))
        out = ColorJitter(0.5)(x, rng(3))
        channel_means = out.mean(axis=(2, 3))
        assert np.std(channel_means) > 0.01

    def test_color_jitter_validates_strength(self):
        with pytest.raises(ValueError):
            ColorJitter(-0.1)

    def test_grayscale_collapses_channels(self):
        x = batch(6)
        out = RandomGrayscale(1.0)(x, rng(0))
        np.testing.assert_allclose(out[:, 0], out[:, 1])
        np.testing.assert_allclose(out[:, 1], out[:, 2])

    def test_grayscale_probability_zero_identity(self):
        x = batch(7)
        np.testing.assert_array_equal(RandomGrayscale(0.0)(x, rng(0)), x)

    def test_gaussian_noise_magnitude(self):
        x = np.zeros((4, 3, 8, 8))
        out = GaussianNoise(0.1)(x, rng(1))
        assert 0.05 < out.std() < 0.2

    def test_cutout_zeroes_patch(self):
        x = np.ones((3, 2, 8, 8))
        out = Cutout(4)(x, rng(2))
        assert (out == 0).any()
        assert out.shape == x.shape

    def test_cutout_validates_size(self):
        with pytest.raises(ValueError):
            Cutout(0)

    def test_compose_order(self):
        x = batch(8)
        composed = Compose([RandomHorizontalFlip(1.0), RandomHorizontalFlip(1.0)])
        np.testing.assert_array_equal(composed(x, rng(0)), x)

    def test_two_views_differ(self):
        x = batch(9)
        view_a, view_b = default_ssl_augment()(x, rng(4))
        assert view_a.shape == x.shape
        assert not np.allclose(view_a, view_b)

    def test_eval_augment_is_identity(self):
        x = batch(10)
        np.testing.assert_array_equal(default_eval_augment()(x, rng(0)), x)

    def test_two_view_wrapper(self):
        two = TwoViewAugment(Compose([]))
        x = batch(11)
        a, b = two(x, rng(0))
        np.testing.assert_array_equal(a, x)
        np.testing.assert_array_equal(b, x)


class TestBatchIterator:
    def test_covers_everything(self):
        batches = list(batch_iterator(10, 3, shuffle=False))
        merged = np.concatenate(batches)
        np.testing.assert_array_equal(np.sort(merged), np.arange(10))

    def test_drop_last(self):
        batches = list(batch_iterator(10, 3, shuffle=False, drop_last=True))
        assert [len(b) for b in batches] == [3, 3, 3]

    def test_shuffle_deterministic_with_rng(self):
        a = list(batch_iterator(10, 4, shuffle=True, rng=rng(5)))
        b = list(batch_iterator(10, 4, shuffle=True, rng=rng(5)))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batch_iterator(10, 0, shuffle=False))


class TestDataLoader:
    def make_split(self, n=10):
        return DataSplit(np.arange(n * 3 * 2 * 2, dtype=float).reshape(n, 3, 2, 2),
                         np.arange(n) % 2)

    def test_len(self):
        loader = DataLoader(self.make_split(10), batch_size=3, shuffle=False)
        assert len(loader) == 4
        loader = DataLoader(self.make_split(10), batch_size=3, shuffle=False, drop_last=True)
        assert len(loader) == 3

    def test_iteration_yields_pairs(self):
        loader = DataLoader(self.make_split(6), batch_size=2, shuffle=False)
        for images, labels in loader:
            assert images.shape[0] == labels.shape[0] == 2

    def test_shuffled_epochs_differ(self):
        loader = DataLoader(self.make_split(32), batch_size=8, shuffle=True, rng=rng(0))
        first = [labels.copy() for _, labels in loader]
        second = [labels.copy() for _, labels in loader]
        assert any(not np.array_equal(a, b) for a, b in zip(first, second))
