"""Tests for the persistent run store (layout, atomicity, resume scans)."""

import json

import numpy as np
import pytest

from repro.arrays import CorruptArrayFile
from repro.eval import NonIIDSetting
from repro.fl import FederatedConfig
from repro.runs import RunStore, SweepSpec

CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                         local_epochs=1, batch_size=16,
                         personalization_epochs=2, seed=0)


def make_sweep():
    return SweepSpec(name="store-test", methods=["script-fair", "fedavg"],
                     settings=[NonIIDSetting("quantity", 2, 20)], config=CONFIG)


def fake_record(key, mean=0.5):
    return {
        "schema": 1,
        "fingerprint": key.fingerprint,
        "key": key.to_jsonable(),
        "result": {"algorithm": key.method, "accuracies": {"0": mean},
                   "novel_accuracies": {}, "rounds": [], "extras": {}},
        "report": {"mean": mean, "variance": 0.0, "std": 0.0, "min": mean,
                   "max": mean, "fairness_gap": 0.0, "worst_decile_mean": mean,
                   "num_clients": 1},
    }


class TestRunStore:
    def test_write_read_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        record = fake_record(key)
        path = store.write_record(record)
        assert path == store.path_for(key)
        assert store.has(key)
        assert store.read_record(key) == json.loads(json.dumps(record))

    def test_missing_record_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            RunStore(tmp_path).read_record("deadbeef00000000")

    def test_record_without_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path).write_record({"key": {}})

    def test_completed_scan_ignores_temp_files(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        store.write_record(fake_record(cells[0]))
        # a torn write from a killed process must not count as completed
        (store.cells_dir / f".{cells[1].fingerprint}.json.1234.tmp").write_text("{")
        assert store.completed_fingerprints() == {cells[0].fingerprint}
        assert len(store) == 1

    def test_missing_and_strict_load(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        store.write_record(fake_record(cells[0]))
        assert store.missing(cells) == [cells[1]]
        loose = store.load_records(cells, strict=False)
        assert loose[0] is not None and loose[1] is None
        with pytest.raises(KeyError) as excinfo:
            store.load_records(cells)
        assert "fedavg" in str(excinfo.value)

    def test_load_records_preserves_input_order(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        # write in reverse completion order; reads follow canonical order
        for key in reversed(cells):
            store.write_record(fake_record(key))
        records = store.load_records(cells)
        assert [r["key"]["method"] for r in records] == [k.method for k in cells]

    def test_rebuild_index(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        for key in cells:
            store.write_record(fake_record(key))
        store.index_path.write_text("garbage\n")
        count = store.rebuild_index()
        assert count == 2
        lines = [json.loads(line) for line in
                 store.index_path.read_text().splitlines()]
        assert [e["fingerprint"] for e in lines] == sorted(
            k.fingerprint for k in cells)
        assert {e["method"] for e in lines} == {"script-fair", "fedavg"}

    def test_write_sweep_is_deterministic(self, tmp_path):
        store = RunStore(tmp_path)
        sweep = make_sweep()
        path = store.write_sweep(sweep)
        first = path.read_bytes()
        assert store.write_sweep(sweep).read_bytes() == first
        assert path.name == "store-test.json"

    def test_open_without_create_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunStore(tmp_path / "nope", create=False)
        RunStore(tmp_path)  # create
        RunStore(tmp_path, create=False)  # now opens fine


class TestArraysSidecar:
    """Per-cell ``arrays/<fingerprint>.npcol`` sidecars."""

    def columns(self):
        return {"embedding.points": np.linspace(0.0, 1.0, 12).reshape(6, 2),
                "embedding.labels": np.arange(6, dtype=np.int64)}

    def test_write_read_round_trip_by_key_and_fingerprint(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        columns = self.columns()
        path = store.write_arrays(key, columns)
        assert path == store.arrays_path_for(key)
        assert path.parent == tmp_path / "arrays"
        assert path.name == f"{key.fingerprint}.npcol"
        for handle in (key, key.fingerprint):
            out = store.read_arrays(handle)
            assert list(out) == list(columns)
            for name in columns:
                np.testing.assert_array_equal(out[name], columns[name])

    def test_has_arrays_and_missing_sidecar_raises(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        assert not store.has_arrays(key)
        with pytest.raises(KeyError, match="no array sidecar"):
            store.read_arrays(key)
        store.write_arrays(key, self.columns())
        assert store.has_arrays(key)

    def test_mmap_read_is_readonly_and_equal(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        store.write_arrays(key, self.columns())
        eager = store.read_arrays(key)
        mapped = store.read_arrays(key, mmap=True)
        for name, array in eager.items():
            np.testing.assert_array_equal(mapped[name], array, err_msg=name)
            assert not mapped[name].flags.writeable

    def test_sidecar_write_is_deterministic(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        first = store.write_arrays(key, self.columns()).read_bytes()
        assert store.write_arrays(key, self.columns()).read_bytes() == first

    def test_torn_sidecar_fails_loudly(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        path = store.write_arrays(key, self.columns())
        path.write_bytes(path.read_bytes()[:-9])
        with pytest.raises(CorruptArrayFile):
            store.read_arrays(key)
