"""Tests for the persistent run store (layout, atomicity, resume scans)."""

import json

import pytest

from repro.eval import NonIIDSetting
from repro.fl import FederatedConfig
from repro.runs import RunStore, SweepSpec

CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                         local_epochs=1, batch_size=16,
                         personalization_epochs=2, seed=0)


def make_sweep():
    return SweepSpec(name="store-test", methods=["script-fair", "fedavg"],
                     settings=[NonIIDSetting("quantity", 2, 20)], config=CONFIG)


def fake_record(key, mean=0.5):
    return {
        "schema": 1,
        "fingerprint": key.fingerprint,
        "key": key.to_jsonable(),
        "result": {"algorithm": key.method, "accuracies": {"0": mean},
                   "novel_accuracies": {}, "rounds": [], "extras": {}},
        "report": {"mean": mean, "variance": 0.0, "std": 0.0, "min": mean,
                   "max": mean, "fairness_gap": 0.0, "worst_decile_mean": mean,
                   "num_clients": 1},
    }


class TestRunStore:
    def test_write_read_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        key = make_sweep().cells()[0]
        record = fake_record(key)
        path = store.write_record(record)
        assert path == store.path_for(key)
        assert store.has(key)
        assert store.read_record(key) == json.loads(json.dumps(record))

    def test_missing_record_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            RunStore(tmp_path).read_record("deadbeef00000000")

    def test_record_without_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path).write_record({"key": {}})

    def test_completed_scan_ignores_temp_files(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        store.write_record(fake_record(cells[0]))
        # a torn write from a killed process must not count as completed
        (store.cells_dir / f".{cells[1].fingerprint}.json.1234.tmp").write_text("{")
        assert store.completed_fingerprints() == {cells[0].fingerprint}
        assert len(store) == 1

    def test_missing_and_strict_load(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        store.write_record(fake_record(cells[0]))
        assert store.missing(cells) == [cells[1]]
        loose = store.load_records(cells, strict=False)
        assert loose[0] is not None and loose[1] is None
        with pytest.raises(KeyError) as excinfo:
            store.load_records(cells)
        assert "fedavg" in str(excinfo.value)

    def test_load_records_preserves_input_order(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        # write in reverse completion order; reads follow canonical order
        for key in reversed(cells):
            store.write_record(fake_record(key))
        records = store.load_records(cells)
        assert [r["key"]["method"] for r in records] == [k.method for k in cells]

    def test_rebuild_index(self, tmp_path):
        store = RunStore(tmp_path)
        cells = make_sweep().cells()
        for key in cells:
            store.write_record(fake_record(key))
        store.index_path.write_text("garbage\n")
        count = store.rebuild_index()
        assert count == 2
        lines = [json.loads(line) for line in
                 store.index_path.read_text().splitlines()]
        assert [e["fingerprint"] for e in lines] == sorted(
            k.fingerprint for k in cells)
        assert {e["method"] for e in lines} == {"script-fair", "fedavg"}

    def test_write_sweep_is_deterministic(self, tmp_path):
        store = RunStore(tmp_path)
        sweep = make_sweep()
        path = store.write_sweep(sweep)
        first = path.read_bytes()
        assert store.write_sweep(sweep).read_bytes() == first
        assert path.name == "store-test.json"

    def test_open_without_create_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunStore(tmp_path / "nope", create=False)
        RunStore(tmp_path)  # create
        RunStore(tmp_path, create=False)  # now opens fine
