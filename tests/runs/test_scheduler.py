"""Tests for the sweep scheduler: resume, budgets, and determinism."""

import pytest

from repro.eval import NonIIDSetting, format_comparison_table, run_experiment
from repro.fl import FederatedConfig
from repro.runs import (
    RunStore,
    SweepSpec,
    outcome_from_records,
    run_sweep,
)

TINY_CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                              local_epochs=1, batch_size=16,
                              personalization_epochs=2, seed=0)
TINY_DATASET = dict(image_size=8, train_per_class=16, test_per_class=4)


def tiny_sweep(methods=("script-fair", "fedavg"), seeds=(0,)):
    return SweepSpec(
        name="tiny",
        methods=list(methods),
        settings=[NonIIDSetting("dirichlet", 0.5, 20)],
        seeds=list(seeds),
        config=TINY_CONFIG,
        dataset_kwargs={"cifar10": dict(TINY_DATASET)},
    )


class TestRunSweep:
    def test_ephemeral_pass_returns_all_records(self):
        summary = run_sweep(tiny_sweep())
        assert summary.complete
        assert len(summary.executed) == 2 and not summary.skipped
        assert [r["key"]["method"] for r in summary.records] == [
            "script-fair", "fedavg"]
        for key, record in zip(summary.cells, summary.records):
            assert record["fingerprint"] == key.fingerprint
            assert 0.0 <= record["report"]["mean"] <= 1.0

    def test_interrupted_sweep_resumes_without_recompute(self, tmp_path):
        sweep = tiny_sweep()
        first = run_sweep(sweep, store=tmp_path, max_cells=1)
        assert len(first.executed) == 1 and len(first.deferred) == 1
        assert not first.complete

        second = run_sweep(sweep, store=tmp_path)
        # exactly the deferred cell recomputes; the finished one is skipped
        assert len(second.executed) == 1
        assert second.skipped == first.executed
        assert second.complete

        third = run_sweep(sweep, store=tmp_path)
        assert not third.executed and len(third.skipped) == 2
        assert third.complete

    def test_results_identical_across_schedulers(self, tmp_path):
        sweep = tiny_sweep()
        serial_dir, thread_dir = tmp_path / "serial", tmp_path / "thread"
        run_sweep(sweep, store=serial_dir, backend="serial")
        run_sweep(sweep, store=thread_dir, backend="thread", workers=2)
        for key in sweep.cells():
            serial_bytes = RunStore(serial_dir).path_for(key).read_bytes()
            thread_bytes = RunStore(thread_dir).path_for(key).read_bytes()
            assert serial_bytes == thread_bytes

    def test_outcome_from_records_matches_live_run(self):
        sweep = tiny_sweep()
        summary = run_sweep(sweep)
        rebuilt = outcome_from_records(sweep.to_experiment_spec(), summary.records)
        live = run_experiment(sweep.to_experiment_spec())
        assert format_comparison_table(rebuilt) == format_comparison_table(live)
        for method in sweep.methods:
            assert rebuilt.results[method].accuracies == live.results[method].accuracies

    def test_outcome_from_records_rejects_duplicate_methods(self):
        # records spanning seeds/variants must be sliced by the caller, not
        # silently last-win merged into one outcome
        sweep = tiny_sweep(methods=["script-fair"])
        record = {"key": {"method": "script-fair"},
                  "result": {"algorithm": "script-fair", "accuracies": {"0": 0.5}}}
        with pytest.raises(ValueError):
            outcome_from_records(sweep.to_experiment_spec(), [record, dict(record)])

    def test_duplicate_cells_execute_once(self, tmp_path):
        summary = run_sweep(tiny_sweep(methods=["script-fair", "script-fair"]),
                            store=tmp_path)
        assert len(summary.executed) == 1
        assert len(summary.records) == 2
        assert summary.records[0] is summary.records[1]

    def test_max_cells_zero_executes_nothing(self, tmp_path):
        summary = run_sweep(tiny_sweep(), store=tmp_path, max_cells=0)
        assert not summary.executed and len(summary.deferred) == 2
        with pytest.raises(ValueError):
            run_sweep(tiny_sweep(), max_cells=-1)

    def test_store_holds_sweep_provenance(self, tmp_path):
        sweep = tiny_sweep()
        run_sweep(sweep, store=tmp_path, max_cells=0)
        store = RunStore(tmp_path)
        assert (store.sweeps_dir / "tiny.json").is_file()
