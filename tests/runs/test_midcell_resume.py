"""Mid-cell resume and wall-clock accounting in the sweep subsystem.

A sweep run with ``round_checkpoints=True`` persists each in-flight
cell's session state per round; after a kill, the relaunch resumes the
cell at its last finished round and the resulting record is byte-for-byte
what an uninterrupted sweep writes.
"""

import json

import pytest

from repro.eval import NonIIDSetting
from repro.eval.harness import checkpoint_path_for
from repro.fl import FederatedConfig, SessionCallback
from repro.fl.session import read_checkpoint
from repro.runs import (
    RunStore,
    SweepSpec,
    cell_checkpoint_dir,
    run_sweep,
)
from repro.runs.scheduler import execute_cell

TINY_CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=3,
                              local_epochs=1, batch_size=16,
                              personalization_epochs=2, seed=0)
TINY_DATASET = dict(image_size=8, train_per_class=16, test_per_class=4)


def tiny_sweep(methods=("fedavg",), seeds=(0,), rounds=3):
    return SweepSpec(
        name="tiny-midcell",
        methods=list(methods),
        settings=[NonIIDSetting("dirichlet", 0.5, 20)],
        seeds=list(seeds),
        config=TINY_CONFIG.with_overrides(rounds=rounds),
        dataset_kwargs={"cifar10": dict(TINY_DATASET)},
    )


class _KillAfter(SessionCallback):
    """Simulate a SIGKILL mid-cell: die after N rounds committed (and
    checkpointed — round_end callbacks registered earlier already ran)."""

    class Killed(BaseException):
        pass

    def __init__(self, rounds):
        self.rounds = rounds

    def on_round_end(self, session, event):
        if event.round_index + 1 >= self.rounds:
            raise _KillAfter.Killed()


class TestMidCellResume:
    def test_killed_cell_resumes_at_round_and_matches_bytes(self, tmp_path, capsys):
        sweep = tiny_sweep()
        (key,) = sweep.cells()

        # Reference store: uninterrupted sweep, no checkpoints.
        reference = tmp_path / "reference"
        run_sweep(sweep, store=reference)

        # Interrupted store: the cell dies after 2 of 3 rounds.
        store_root = tmp_path / "interrupted"
        store = RunStore(store_root)
        checkpoints = cell_checkpoint_dir(store_root, key)
        with pytest.raises(_KillAfter.Killed):
            execute_cell(key, checkpoint_dir=checkpoints,
                         session_hook=lambda name, session:
                         session.add_callback(_KillAfter(2)))
        checkpoint_file = checkpoint_path_for(checkpoints, key.method)
        assert read_checkpoint(checkpoint_file).round_index == 2
        assert not store.has(key)

        # Relaunch: the cell resumes at round 2, not round 0.
        summary = run_sweep(sweep, store=store, round_checkpoints=True,
                            verbose=True)
        assert summary.complete
        assert f"[resume] {key.method} at round 2/3" in capsys.readouterr().out
        # Byte-identical to the uninterrupted store; checkpoint cleaned up.
        assert store.path_for(key).read_bytes() == \
            RunStore(reference).path_for(key).read_bytes()
        assert not checkpoints.exists()
        # A resumed cell's elapsed covers only the recomputed rounds, so
        # instead of (misleading) numbers its index entry carries an
        # explicit marker — distinguishing "resumed" from "never timed".
        timing = store.timings()[key.fingerprint]
        assert timing == {"resumed": True}
        # The marker survives an index rebuild like any other timing.
        store.rebuild_index()
        assert store.timings()[key.fingerprint] == {"resumed": True}

    def test_round_checkpoints_leave_store_bytes_unchanged(self, tmp_path):
        sweep = tiny_sweep(methods=("script-fair", "fedavg"))
        plain, checked = tmp_path / "plain", tmp_path / "checked"
        run_sweep(sweep, store=plain)
        run_sweep(sweep, store=checked, round_checkpoints=True)
        for key in sweep.cells():
            assert RunStore(plain).path_for(key).read_bytes() == \
                RunStore(checked).path_for(key).read_bytes()
        assert not (checked / "checkpoints").exists() or \
            not any((checked / "checkpoints").iterdir())

    def test_round_checkpoints_require_store(self):
        with pytest.raises(ValueError, match="store"):
            run_sweep(tiny_sweep(), round_checkpoints=True)


class TestWallClockIndex:
    def test_write_record_carries_timing_into_index(self, tmp_path):
        sweep = tiny_sweep()
        store = RunStore(tmp_path)
        run_sweep(sweep, store=store)
        (key,) = sweep.cells()
        timings = store.timings()
        assert key.fingerprint in timings
        timing = timings[key.fingerprint]
        assert timing["wall_clock_s"] > 0
        assert timing["mean_round_s"] == pytest.approx(
            timing["wall_clock_s"] / 3)
        # ... but never into the (deterministic) cell record itself.
        record_text = store.path_for(key).read_text()
        assert "wall_clock_s" not in record_text

    def test_rebuild_index_preserves_timings(self, tmp_path):
        sweep = tiny_sweep()
        store = RunStore(tmp_path)
        run_sweep(sweep, store=store)
        before = store.timings()
        assert before
        assert store.rebuild_index() == 1
        assert store.timings() == before

    def test_timing_free_records_have_no_timing_entries(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_record({"fingerprint": "abc", "key": {"method": "m"}})
        assert store.timings() == {}
        line = json.loads(store.index_path.read_text())
        assert "wall_clock_s" not in line
