"""Tests for the ``repro.runs`` sweep subsystem."""
