"""Tests for sweep grids and content-hashed run keys."""

import pytest

from repro.eval import NonIIDSetting
from repro.fl import FederatedConfig
from repro.runs import FINGERPRINT_LENGTH, RunKey, SweepSpec, SweepVariant

CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                         local_epochs=1, batch_size=16,
                         personalization_epochs=2, seed=0)
SETTING = NonIIDSetting("quantity", 2, 20)


def make_key(**overrides):
    fields = dict(dataset="cifar10", setting=SETTING, method="script-fair",
                  seed=0, config=CONFIG)
    fields.update(overrides)
    return RunKey(**fields)


class TestRunKeyFingerprint:
    def test_stable_and_hex(self):
        key = make_key()
        assert key.fingerprint == make_key().fingerprint
        assert len(key.fingerprint) == FINGERPRINT_LENGTH
        int(key.fingerprint, 16)  # valid hex

    def test_execution_knobs_do_not_change_the_hash(self):
        # backend/workers/shared_memory are bitwise result-neutral, so a
        # sweep resumed under a different scheduler must recognize its cells.
        base = make_key()
        parallel = make_key(config=CONFIG.with_overrides(
            backend="process", workers=4, shared_memory=True))
        assert base.fingerprint == parallel.fingerprint

    def test_variant_label_is_cosmetic(self):
        assert make_key(variant="a").fingerprint == make_key(variant="b").fingerprint

    def test_semantic_fields_change_the_hash(self):
        base = make_key().fingerprint
        assert make_key(seed=1).fingerprint != base
        assert make_key(method="fedavg").fingerprint != base
        assert make_key(setting=NonIIDSetting("dirichlet", 0.3, 20)).fingerprint != base
        assert make_key(overrides={"use_ln": True}).fingerprint != base
        assert make_key(config=CONFIG.with_overrides(rounds=2)).fingerprint != base
        assert make_key(dataset_kwargs={"image_size": 8}).fingerprint != base

    def test_parameter_int_float_equivalence(self):
        quantity_int = make_key(setting=NonIIDSetting("quantity", 2, 20))
        quantity_float = make_key(setting=NonIIDSetting("quantity", 2.0, 20))
        assert quantity_int.fingerprint == quantity_float.fingerprint


class TestRunKeyConversions:
    def test_jsonable_round_trip(self):
        key = make_key(variant="ln1-lp0", overrides={"use_ln": True},
                       dataset_kwargs={"image_size": 8})
        clone = RunKey.from_jsonable(key.to_jsonable())
        assert clone.fingerprint == key.fingerprint
        assert clone.variant == key.variant
        assert clone.method == key.method
        assert clone.setting == key.setting

    def test_to_spec_is_single_method(self):
        key = make_key(overrides={"num_prototypes": 5})
        spec = key.to_spec()
        assert spec.methods == ["script-fair"]
        assert spec.method_overrides == {"script-fair": {"num_prototypes": 5}}
        assert spec.config == CONFIG
        assert spec.seed == 0

    def test_label_mentions_coordinates(self):
        label = make_key(variant="ln1-lp0").label()
        assert "script-fair" in label and "seed=0" in label and "ln1-lp0" in label


class TestSweepSpec:
    def make_sweep(self, **overrides):
        fields = dict(name="grid", methods=["script-fair", "fedavg"],
                      settings=[SETTING], seeds=[0, 1], config=CONFIG,
                      variants=[SweepVariant("a"), SweepVariant("b", {"lr": 0.1})])
        fields.update(overrides)
        return SweepSpec(**fields)

    def test_grid_expansion_count_and_order(self):
        sweep = self.make_sweep()
        cells = sweep.cells()
        assert len(cells) == sweep.num_cells == 2 * 1 * 2 * 2
        # canonical nesting: seed, dataset, setting, variant, method
        coords = [(k.seed, k.variant, k.method) for k in cells]
        assert coords == [
            (0, "a", "script-fair"), (0, "a", "fedavg"),
            (0, "b", "script-fair"), (0, "b", "fedavg"),
            (1, "a", "script-fair"), (1, "a", "fedavg"),
            (1, "b", "script-fair"), (1, "b", "fedavg"),
        ]

    def test_cells_reseed_config_per_seed(self):
        for key in self.make_sweep().cells():
            assert key.config.seed == key.seed

    def test_variant_overrides_merge_over_base(self):
        sweep = self.make_sweep(
            method_overrides={"script-fair": {"lr": 0.5, "epochs": 3}})
        by = {(k.variant, k.method): k for k in sweep.cells()}
        assert by[("b", "script-fair")].overrides == {"lr": 0.1, "epochs": 3}
        assert by[("a", "script-fair")].overrides == {"lr": 0.5, "epochs": 3}
        assert by[("a", "fedavg")].overrides == {}

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            self.make_sweep(methods=["bogus"])

    def test_duplicate_variant_labels_rejected(self):
        with pytest.raises(ValueError):
            self.make_sweep(variants=[SweepVariant("x"), SweepVariant("x")])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            self.make_sweep(seeds=[])

    def test_to_experiment_spec_single_panel(self):
        sweep = self.make_sweep(seeds=[3], variants=[SweepVariant()])
        spec = sweep.to_experiment_spec()
        assert spec.methods == ["script-fair", "fedavg"]
        assert spec.seed == 3
        assert spec.config.seed == 3

    def test_to_experiment_spec_rejects_multi_variant(self):
        with pytest.raises(ValueError):
            self.make_sweep().to_experiment_spec(seed=0)

    def test_jsonable_includes_fingerprints(self):
        sweep = self.make_sweep()
        payload = sweep.to_jsonable()
        assert payload["fingerprints"] == [k.fingerprint for k in sweep.cells()]
        assert payload["name"] == "grid"
        for field in ("backend", "workers", "shared_memory"):
            assert field not in payload["config"]
