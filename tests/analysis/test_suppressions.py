"""Suppression round-trips: allow comments silence, and are validated."""

from repro.analysis import run_check
from repro.analysis.project import parse_snippet
from repro.analysis.suppressions import file_suppressions

from .helpers import rule_ids, write_project

VIOLATION = (
    "import numpy as np\n"
    "rng = np.random.default_rng(0)\n"
)


def _check(tmp_path, text, select=("DET001",)):
    write_project(tmp_path, {"src/repro/fl/fixture.py": text})
    return run_check(tmp_path, paths=["src"], select=list(select))


class TestParsing:
    def test_trailing_comment_targets_own_line(self):
        source = parse_snippet("src/repro/fl/x.py", (
            "x = 1  # repro: allow[DET001] -- because\n"
        ))
        (suppression,) = file_suppressions(source)
        assert suppression.rule == "DET001"
        assert suppression.target_line == 1
        assert suppression.reason == "because"

    def test_standalone_comment_targets_next_line(self):
        source = parse_snippet("src/repro/fl/x.py", (
            "# repro: allow[DET001] -- because\n"
            "x = 1\n"
        ))
        (suppression,) = file_suppressions(source)
        assert suppression.comment_line == 1
        assert suppression.target_line == 2

    def test_docstring_mention_is_not_a_suppression(self):
        source = parse_snippet("src/repro/fl/x.py", (
            '"""Docs show the syntax: # repro: allow[DET001] -- why."""\n'
            "x = 1\n"
        ))
        assert file_suppressions(source) == []


class TestRoundTrip:
    def test_reasoned_allow_silences_the_diagnostic(self, tmp_path):
        found = _check(tmp_path, (
            "import numpy as np\n"
            "# repro: allow[DET001] -- fixture exercises the allow path\n"
            "rng = np.random.default_rng(0)\n"
        ))
        assert found == []

    def test_unsuppressed_violation_survives(self, tmp_path):
        found = _check(tmp_path, VIOLATION)
        assert rule_ids(found) == ["DET001"]

    def test_unused_allow_is_sup002(self, tmp_path):
        found = _check(tmp_path, (
            "# repro: allow[DET001] -- nothing here violates it\n"
            "x = 1\n"
        ))
        assert rule_ids(found) == ["SUP002"]

    def test_missing_reason_is_sup001_and_does_not_silence(self, tmp_path):
        found = _check(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)  # repro: allow[DET001]\n"
        ))
        assert rule_ids(found) == ["DET001", "SUP001"]

    def test_unknown_rule_id_is_sup003(self, tmp_path):
        found = _check(tmp_path, (
            "# repro: allow[DET999] -- typo'd id\n"
            "x = 1\n"
        ))
        assert rule_ids(found) == ["SUP003"]

    def test_allow_for_other_rule_does_not_silence(self, tmp_path):
        found = _check(tmp_path, (
            "import numpy as np\n"
            "# repro: allow[ATM001] -- wrong family\n"
            "rng = np.random.default_rng(0)\n"
        ))
        assert sorted(rule_ids(found)) == ["DET001", "SUP002"]
