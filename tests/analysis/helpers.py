"""Shared helpers for the invariant-checker test corpus.

Each rule family's test file feeds the checker small fixture snippets —
at least one true positive and one near-miss negative per rule — through
:func:`rule_diagnostics`, which runs exactly one rule over a single
in-memory file (no disk, no suppression filtering).  Whole-pipeline
behaviour (suppressions, multi-file fingerprint checks, the CLI) uses
:func:`write_project`, which materializes a minimal repo under tmp_path.
"""

from pathlib import Path
from typing import Dict, List

from repro.analysis import Diagnostic, Project
from repro.analysis.project import parse_snippet
from repro.analysis.registry import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def rule_diagnostics(rule_id: str, rel: str, text: str) -> List[Diagnostic]:
    """Run one rule over one snippet pretending to live at ``rel``."""
    source = parse_snippet(rel, text)
    project = Project(root=Path("."), files=[source])
    rule = RULES[rule_id]
    found = list(rule.check_project(project))
    if source.in_scope(rule.scope):
        found.extend(rule.check_file(source, project))
    return found


def rule_ids(diagnostics: List[Diagnostic]) -> List[str]:
    return [diagnostic.rule for diagnostic in diagnostics]


def write_project(root: Path, files: Dict[str, str]) -> Path:
    """Materialize ``files`` (root-relative path -> text) under ``root``."""
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root
