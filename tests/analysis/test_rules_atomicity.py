"""Fixture corpus for ATM001 (atomic write-then-rename)."""

from .helpers import rule_diagnostics, rule_ids


class TestAtm001NonAtomicWrite:
    def test_flags_raw_open_write(self):
        found = rule_diagnostics("ATM001", "src/repro/runs/store_fix.py", (
            "with open('out.json', 'w') as stream:\n"
            "    stream.write('{}')\n"
        ))
        assert rule_ids(found) == ["ATM001"]
        assert "'w'" in found[0].message

    def test_flags_mode_keyword_and_append(self):
        found = rule_diagnostics("ATM001", "src/repro/runs/store_fix.py", (
            "stream = open('log.jsonl', mode='a')\n"
        ))
        assert rule_ids(found) == ["ATM001"]

    def test_flags_json_dump(self):
        found = rule_diagnostics("ATM001", "benchmarks/bench_fix.py", (
            "import json\n"
            "def save(payload, stream):\n"
            "    json.dump(payload, stream)\n"
        ))
        assert rule_ids(found) == ["ATM001"]

    def test_flags_write_text(self):
        found = rule_diagnostics("ATM001", "src/repro/fl/session/ckpt_fix.py", (
            "from pathlib import Path\n"
            "Path('state.json').write_text('{}')\n"
        ))
        assert rule_ids(found) == ["ATM001"]

    def test_near_miss_read_only_open(self):
        found = rule_diagnostics("ATM001", "src/repro/runs/store_fix.py", (
            "with open('out.json') as stream:\n"
            "    data = stream.read()\n"
            "with open('raw.bin', 'rb') as stream:\n"
            "    blob = stream.read()\n"
        ))
        assert found == []

    def test_near_miss_json_dumps(self):
        # dumps returns a string for atomic_write_text - that's the fix.
        found = rule_diagnostics("ATM001", "src/repro/runs/store_fix.py", (
            "import json\n"
            "from repro.ioutil import atomic_write_text\n"
            "def save(payload):\n"
            "    atomic_write_text('out.json', json.dumps(payload))\n"
        ))
        assert found == []

    def test_near_miss_out_of_scope_module(self):
        found = rule_diagnostics("ATM001", "src/repro/viz/svg_fix.py", (
            "with open('scratch.svg', 'w') as stream:\n"
            "    stream.write('<svg/>')\n"
        ))
        assert found == []
