"""Fixture corpus for the DET rule family."""

from .helpers import rule_diagnostics, rule_ids


class TestDet001UnblessedRng:
    def test_flags_direct_default_rng(self):
        found = rule_diagnostics("DET001", "src/repro/fl/sampling_fix.py", (
            "import numpy as np\n"
            "def pick(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(10)\n"
        ))
        assert rule_ids(found) == ["DET001"]
        assert found[0].line == 3
        assert "derive_rng" in found[0].hint

    def test_flags_stdlib_random(self):
        found = rule_diagnostics("DET001", "src/repro/fl/sampling_fix.py", (
            "import random\n"
            "def pick():\n"
            "    return random.random()\n"
        ))
        assert rule_ids(found) == ["DET001"]

    def test_flags_aliased_import(self):
        found = rule_diagnostics("DET001", "src/repro/fl/sampling_fix.py", (
            "from numpy.random import default_rng as mk\n"
            "rng = mk(0)\n"
        ))
        assert rule_ids(found) == ["DET001"]

    def test_near_miss_derive_rng_call(self):
        found = rule_diagnostics("DET001", "src/repro/fl/sampling_fix.py", (
            "from repro.fl.client import derive_rng\n"
            "def pick(seed):\n"
            "    return derive_rng(seed, 3).integers(10)\n"
        ))
        assert found == []

    def test_near_miss_inside_derive_rng_body(self):
        # Something has to construct the generator: derive_rng itself.
        found = rule_diagnostics("DET001", "src/repro/fl/client_fix.py", (
            "import numpy as np\n"
            "def derive_rng(seed, *streams):\n"
            "    return np.random.default_rng([seed, *streams])\n"
        ))
        assert found == []

    def test_near_miss_out_of_scope_module(self):
        # repro.data sits below repro.fl and cannot import derive_rng.
        found = rule_diagnostics("DET001", "src/repro/data/synthetic_fix.py", (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
        ))
        assert found == []


class TestDet002WallClock:
    def test_flags_time_time(self):
        found = rule_diagnostics("DET002", "src/repro/runs/store_fix.py", (
            "import time\n"
            "stamp = time.time()\n"
        ))
        assert rule_ids(found) == ["DET002"]

    def test_flags_datetime_now_and_urandom(self):
        found = rule_diagnostics("DET002", "src/repro/runs/store_fix.py", (
            "import os\n"
            "from datetime import datetime\n"
            "a = datetime.now()\n"
            "b = os.urandom(8)\n"
        ))
        assert rule_ids(found) == ["DET002", "DET002"]

    def test_near_miss_time_sleep(self):
        # sleep changes wall-clock but produces no value to record.
        found = rule_diagnostics("DET002", "src/repro/runs/store_fix.py", (
            "import time\n"
            "time.sleep(0.1)\n"
        ))
        assert found == []


class TestDet003SetIteration:
    def test_flags_for_over_set_literal(self):
        found = rule_diagnostics("DET003", "src/repro/fl/agg_fix.py", (
            "for name in {'a', 'b'}:\n"
            "    print(name)\n"
        ))
        assert rule_ids(found) == ["DET003"]

    def test_flags_list_of_set_call(self):
        found = rule_diagnostics("DET003", "src/repro/fl/agg_fix.py", (
            "names = list(set(['a', 'b']))\n"
        ))
        assert rule_ids(found) == ["DET003"]

    def test_flags_comprehension_over_set_union(self):
        found = rule_diagnostics("DET003", "src/repro/fl/agg_fix.py", (
            "out = [n for n in {'a'} | {'b'}]\n"
        ))
        assert rule_ids(found) == ["DET003"]

    def test_near_miss_sorted_set(self):
        found = rule_diagnostics("DET003", "src/repro/fl/agg_fix.py", (
            "for name in sorted({'a', 'b'}):\n"
            "    print(name)\n"
        ))
        assert found == []

    def test_near_miss_membership_only(self):
        # Building and probing a set is fine; only iteration order is a hazard.
        found = rule_diagnostics("DET003", "src/repro/fl/agg_fix.py", (
            "seen = {'a', 'b'}\n"
            "hit = 'a' in seen\n"
        ))
        assert found == []
