"""Fixture corpus for TRC001/TRC002 (trace/replay taping restrictions)."""

from .helpers import rule_diagnostics, rule_ids


class TestTrc001TapedRegion:
    def test_flags_item_in_taped_region(self):
        found = rule_diagnostics("TRC001", "src/repro/baselines/m_fix.py", (
            "def record(template, leaves, x):\n"
            "    with patched_parameters(template, leaves):\n"
            "        loss = template.compute(x)\n"
            "        value = loss.item()\n"
            "    return value\n"
        ))
        assert rule_ids(found) == ["TRC001"]
        assert ".item()" in found[0].message

    def test_flags_bool_mask_and_backward(self):
        found = rule_diagnostics("TRC001", "src/repro/baselines/m_fix.py", (
            "def record(template, leaves, x, labels, k):\n"
            "    with no_grad(), patched_parameters(template, leaves):\n"
            "        positives = x[labels == k]\n"
            "        loss = template.compute(positives)\n"
            "        loss.backward()\n"
        ))
        assert sorted(rule_ids(found)) == ["TRC001", "TRC001"]

    def test_near_miss_item_outside_region(self):
        found = rule_diagnostics("TRC001", "src/repro/baselines/m_fix.py", (
            "def record(template, leaves, x):\n"
            "    with patched_parameters(template, leaves):\n"
            "        loss = template.compute(x)\n"
            "    return loss.item()\n"
        ))
        assert found == []

    def test_near_miss_integer_indexing_in_region(self):
        found = rule_diagnostics("TRC001", "src/repro/baselines/m_fix.py", (
            "def record(template, leaves, x, order):\n"
            "    with patched_parameters(template, leaves):\n"
            "        shuffled = x[order]\n"
            "        first = x[0]\n"
        ))
        assert found == []


class TestTrc002CohortUpdate:
    def test_flags_item_in_cohort_update(self):
        found = rule_diagnostics("TRC002", "src/repro/baselines/m_fix.py", (
            "class Method:\n"
            "    def cohort_update(self, clients, state, round_index):\n"
            "        loss = self._loss(clients)\n"
            "        self.last = loss.item()\n"
        ))
        assert rule_ids(found) == ["TRC002"]

    def test_flags_bool_mask_in_cohort_update(self):
        found = rule_diagnostics("TRC002", "src/repro/baselines/m_fix.py", (
            "class Method:\n"
            "    def cohort_update(self, clients, state, round_index):\n"
            "        good = state[state > 0]\n"
            "        return good\n"
        ))
        assert rule_ids(found) == ["TRC002"]

    def test_near_miss_backward_is_legal(self):
        # Replay drives real tensors: backward in cohort_update is fine.
        found = rule_diagnostics("TRC002", "src/repro/baselines/m_fix.py", (
            "class Method:\n"
            "    def cohort_update(self, clients, state, round_index):\n"
            "        loss = self._loss(clients)\n"
            "        loss.backward()\n"
        ))
        assert found == []

    def test_near_miss_item_in_other_method(self):
        found = rule_diagnostics("TRC002", "src/repro/baselines/m_fix.py", (
            "class Method:\n"
            "    def local_update(self, client, state):\n"
            "        return self._loss(client).item()\n"
        ))
        assert found == []
