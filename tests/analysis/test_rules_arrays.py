"""Fixture corpus for ARR001 (array persistence through ``repro.arrays``)."""

from .helpers import rule_diagnostics, rule_ids


class TestArr001AdHocArrayPersistence:
    def test_flags_tobytes_in_session_codec(self):
        found = rule_diagnostics("ARR001", "src/repro/fl/session/codec_fix.py", (
            "def encode(value):\n"
            "    return value.tobytes()\n"
        ))
        assert rule_ids(found) == ["ARR001"]
        assert "tobytes" in found[0].message

    def test_flags_tolist_in_store(self):
        found = rule_diagnostics("ARR001", "src/repro/runs/store.py", (
            "def record_of(array):\n"
            "    return {'points': array.ravel().tolist()}\n"
        ))
        assert rule_ids(found) == ["ARR001"]

    def test_flags_np_save_and_load(self):
        found = rule_diagnostics("ARR001", "src/repro/runs/scheduler.py", (
            "import numpy as np\n"
            "def persist(path, array):\n"
            "    np.save(path, array)\n"
            "    return np.load(path)\n"
        ))
        assert rule_ids(found) == ["ARR001", "ARR001"]
        assert "numpy.save" in found[0].message
        assert "numpy.load" in found[1].message

    def test_flags_frombuffer_in_embeddings(self):
        found = rule_diagnostics(
            "ARR001", "src/repro/experiments/embeddings.py", (
                "import numpy\n"
                "def thaw(blob):\n"
                "    return numpy.frombuffer(blob, dtype='<f8')\n"
            ))
        assert rule_ids(found) == ["ARR001"]

    def test_flags_aliased_numpy_import(self):
        found = rule_diagnostics("ARR001", "src/repro/fl/session/state_fix.py", (
            "from numpy import memmap as mapper\n"
            "def open_raw(path):\n"
            "    return mapper(path, dtype='<f8')\n"
        ))
        assert rule_ids(found) == ["ARR001"]

    def test_near_miss_out_of_scope_module(self):
        # The nn substrate juggles raw buffers freely - ARR001 polices the
        # persistence layer only.
        found = rule_diagnostics("ARR001", "src/repro/nn/trace_fix.py", (
            "import numpy as np\n"
            "def flat(array):\n"
            "    return np.frombuffer(array.tobytes(), dtype=array.dtype)\n"
        ))
        assert found == []

    def test_near_miss_sanctioned_container_calls(self):
        found = rule_diagnostics("ARR001", "src/repro/runs/store.py", (
            "from repro.arrays import read_columns, write_columns\n"
            "def save(path, columns):\n"
            "    write_columns(path, columns)\n"
            "    return read_columns(path, mmap=True)\n"
        ))
        assert found == []

    def test_near_miss_unrelated_attribute_names(self):
        # .tolist on a non-call attribute access, and methods that merely
        # contain the substring, stay clean.
        found = rule_diagnostics("ARR001", "src/repro/fl/session/codec_fix.py", (
            "def describe(array):\n"
            "    bound = array.tolist\n"
            "    return array.astype('<f8').sum()\n"
        ))
        assert found == []
