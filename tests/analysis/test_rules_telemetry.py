"""Fixture corpus for TEL001 (telemetry stays off the record surface)."""

from .helpers import rule_diagnostics, rule_ids


class TestTel001RecordSurface:
    def test_flags_absolute_import_in_store(self):
        found = rule_diagnostics("TEL001", "src/repro/runs/store.py", (
            "from repro.telemetry import sidecar_lines\n"
        ))
        assert rule_ids(found) == ["TEL001"]
        assert "hashed-record surface" in found[0].message

    def test_flags_relative_import_in_serialize(self):
        found = rule_diagnostics("TEL001", "src/repro/runs/serialize.py", (
            "from ..telemetry import Tracer\n"
        ))
        assert rule_ids(found) == ["TEL001"]

    def test_flags_module_import_in_history(self):
        found = rule_diagnostics("TEL001", "src/repro/fl/history.py", (
            "import repro.telemetry\n"
        ))
        assert rule_ids(found) == ["TEL001"]

    def test_flags_submodule_import_in_codec(self):
        found = rule_diagnostics(
            "TEL001", "src/repro/fl/session/codec.py",
            "from repro.telemetry.spans import Tracer\n")
        assert rule_ids(found) == ["TEL001"]

    def test_near_miss_other_imports_in_store(self):
        found = rule_diagnostics("TEL001", "src/repro/runs/store.py", (
            "import json\n"
            "from ..ioutil import atomic_write_text\n"
            "from .spec import RunKey\n"
        ))
        assert found == []

    def test_near_miss_telemetry_import_outside_the_surface(self):
        # The scheduler *is* allowed to trace — only record producers are
        # banned.
        found = rule_diagnostics("TEL001", "src/repro/runs/scheduler.py", (
            "from ..telemetry import Tracer, sidecar_lines\n"
        ))
        assert found == []
