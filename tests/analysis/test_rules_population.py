"""Fixture corpus for POP001/POP002 (population-plane contracts).

POP001 is a project-level rule over the config dataclass; POP002 is a
per-file rule scoped to the sampler and population modules.
"""

from pathlib import Path

from repro.analysis import Project
from repro.analysis.project import parse_snippet
from repro.analysis.registry import RULES

from .helpers import rule_diagnostics, rule_ids

CONFIG_REL = "src/repro/fl/config.py"
SAMPLER_REL = "src/repro/fl/sampler.py"
AVAILABILITY_REL = "src/repro/fl/population/availability.py"

CONFIG_OK = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class FederatedConfig:\n"
    "    rounds: int = 5\n"
    "    aggregation: str = 'sync'\n"
    "    availability: object = None\n"
)


def _check_config(text):
    project = Project(root=Path("."),
                      files=[parse_snippet(CONFIG_REL, text)])
    return list(RULES["POP001"].check_project(project))


class TestPop001AsyncOptIn:
    def test_flags_flipped_aggregation_default(self):
        found = _check_config(CONFIG_OK.replace("'sync'", "'buffered'"))
        assert rule_ids(found) == ["POP001"]
        assert "aggregation" in found[0].message

    def test_flags_non_none_availability_default(self):
        found = _check_config(CONFIG_OK.replace(
            "    availability: object = None\n",
            "    availability: object = make_default_spec()\n"))
        assert rule_ids(found) == ["POP001"]
        assert "availability" in found[0].message

    def test_flags_default_removed(self):
        # A field declared without any default is just as much an
        # opt-in violation as a wrong literal.
        found = _check_config(CONFIG_OK.replace(
            "    aggregation: str = 'sync'\n", "    aggregation: str\n"))
        assert rule_ids(found) == ["POP001"]

    def test_near_miss_correct_defaults(self):
        assert _check_config(CONFIG_OK) == []

    def test_near_miss_fields_absent(self):
        # Removal of the fields entirely is FPR001's story, not POP001's.
        stripped = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class FederatedConfig:\n"
            "    rounds: int = 5\n"
        )
        assert _check_config(stripped) == []

    def test_near_miss_partial_tree(self):
        project = Project(root=Path("."),
                          files=[parse_snippet("src/repro/x.py", "X = 1\n")])
        assert list(RULES["POP001"].check_project(project)) == []


class TestPop002StoredGenerator:
    def test_flags_generator_stored_on_self(self):
        found = rule_diagnostics("POP002", SAMPLER_REL, (
            "from .client import derive_rng\n"
            "class Sampler:\n"
            "    def __init__(self, seed):\n"
            "        self._rng = derive_rng(seed, 1)\n"
        ))
        assert rule_ids(found) == ["POP002"]
        assert "self._rng" in found[0].message

    def test_flags_annotated_attribute_assignment(self):
        found = rule_diagnostics("POP002", AVAILABILITY_REL, (
            "from ..client import derive_rng\n"
            "class Model:\n"
            "    def reset(self, seed):\n"
            "        self.rng: object = derive_rng(seed, 2)\n"
        ))
        assert rule_ids(found) == ["POP002"]

    def test_flags_qualified_call(self):
        found = rule_diagnostics("POP002", AVAILABILITY_REL, (
            "from repro.fl import client\n"
            "class Model:\n"
            "    def reset(self, seed):\n"
            "        self.rng = client.derive_rng(seed, 2)\n"
        ))
        assert rule_ids(found) == ["POP002"]

    def test_near_miss_local_variable(self):
        # Deriving at the point of use into a local is the blessed idiom.
        found = rule_diagnostics("POP002", SAMPLER_REL, (
            "from .client import derive_rng\n"
            "def sample(seed, round_index):\n"
            "    rng = derive_rng(seed, 1, round_index)\n"
            "    return rng.random()\n"
        ))
        assert found == []

    def test_near_miss_out_of_scope_module(self):
        # Algorithms may hold whatever state their checkpoint codec covers.
        found = rule_diagnostics("POP002", "src/repro/fl/algorithm.py", (
            "from .client import derive_rng\n"
            "class Algo:\n"
            "    def __init__(self, seed):\n"
            "        self._rng = derive_rng(seed, 1)\n"
        ))
        assert found == []
