"""Diagnostic ordering and the three output formats (golden JSON)."""

import json

from repro.analysis import (
    Diagnostic,
    format_github,
    format_json,
    format_text,
    run_check,
)

from .helpers import write_project

FIXTURE = (
    "import numpy as np\n"
    "import time\n"
    "rng = np.random.default_rng(0)\n"
    "stamp = time.time()\n"
)

GOLDEN_JSON = """\
{
  "diagnostics": [
    {
      "hint": "derive the generator with derive_rng(seed, *streams)",
      "line": 3,
      "message": "direct np.random.default_rng call",
      "path": "src/repro/fl/fixture.py",
      "rule": "DET001"
    },
    {
      "hint": "keep it out of anything recorded or hashed; suppress with a reason if it is diagnostics-only",
      "line": 4,
      "message": "time.time() is run-dependent ambient state",
      "path": "src/repro/fl/fixture.py",
      "rule": "DET002"
    }
  ],
  "schema": 1
}
"""


def _fixture_diagnostics(tmp_path):
    write_project(tmp_path, {"src/repro/fl/fixture.py": FIXTURE})
    return run_check(tmp_path, paths=["src"], select=["DET001", "DET002"])


class TestOrdering:
    def test_sorted_by_path_line_rule(self):
        unsorted = [
            Diagnostic("b.py", 2, "DET001", "m"),
            Diagnostic("a.py", 9, "DET002", "m"),
            Diagnostic("a.py", 9, "DET001", "m"),
        ]
        ordered = sorted(unsorted)
        assert [(d.path, d.line, d.rule) for d in ordered] == [
            ("a.py", 9, "DET001"), ("a.py", 9, "DET002"), ("b.py", 2, "DET001")]


class TestFormats:
    def test_text_format(self, tmp_path):
        lines = format_text(_fixture_diagnostics(tmp_path)).splitlines()
        assert lines[0].startswith("src/repro/fl/fixture.py:3: DET001 ")
        assert lines[1].startswith("src/repro/fl/fixture.py:4: DET002 ")
        assert "[derive the generator" in lines[0]

    def test_golden_json(self, tmp_path):
        rendered = format_json(_fixture_diagnostics(tmp_path))
        assert rendered == GOLDEN_JSON
        assert json.loads(rendered)["schema"] == 1

    def test_github_format(self, tmp_path):
        lines = format_github(_fixture_diagnostics(tmp_path)).splitlines()
        assert lines[0].startswith(
            "::error file=src/repro/fl/fixture.py,line=3,"
            "title=DET001::direct np.random.default_rng call")

    def test_github_escapes_newlines_and_percent(self):
        rendered = format_github([
            Diagnostic("a.py", 1, "DET001", "50% of\nruns diverge")])
        assert "%0A" in rendered
        assert "50%25 of" in rendered
        assert len(rendered.splitlines()) == 1

    def test_empty_renders_empty(self):
        assert format_text([]) == ""
        assert format_github([]) == ""
        assert json.loads(format_json([]))["diagnostics"] == []
