"""Fixture corpus for FPR001/FPR002 (fingerprint field classification).

These are project-level rules reading two files, so each case builds a
minimal in-memory project with a config dataclass and a serialize module.
"""

from pathlib import Path

from repro.analysis import Project
from repro.analysis.project import parse_snippet
from repro.analysis.registry import RULES

from .helpers import rule_ids

CONFIG_REL = "src/repro/fl/config.py"
SPEC_REL = "src/repro/runs/spec.py"
SERIALIZE_REL = "src/repro/runs/serialize.py"


def _project(*sources):
    return Project(root=Path("."), files=[parse_snippet(rel, text)
                                          for rel, text in sources])


def _check(rule_id, *sources):
    return list(RULES[rule_id].check_project(_project(*sources)))


CONFIG_TWO_FIELDS = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class FederatedConfig:\n"
    "    rounds: int = 5\n"
    "    backend: str = 'serial'\n"
)


class TestFpr001ConfigClassification:
    def test_flags_unclassified_field(self):
        found = _check(
            "FPR001",
            (CONFIG_REL, CONFIG_TWO_FIELDS.replace(
                "    backend: str = 'serial'\n",
                "    backend: str = 'serial'\n    shiny_new_knob: int = 0\n")),
            (SERIALIZE_REL,
             "FINGERPRINTED_FIELDS = ('rounds',)\n"
             "EXECUTION_FIELDS = ('backend',)\n"),
        )
        assert rule_ids(found) == ["FPR001"]
        assert "shiny_new_knob" in found[0].message

    def test_flags_stale_entry(self):
        found = _check(
            "FPR001",
            (CONFIG_REL, CONFIG_TWO_FIELDS),
            (SERIALIZE_REL,
             "FINGERPRINTED_FIELDS = ('rounds', 'renamed_away')\n"
             "EXECUTION_FIELDS = ('backend',)\n"),
        )
        assert rule_ids(found) == ["FPR001"]
        assert "renamed_away" in found[0].message

    def test_flags_double_classification(self):
        found = _check(
            "FPR001",
            (CONFIG_REL, CONFIG_TWO_FIELDS),
            (SERIALIZE_REL,
             "FINGERPRINTED_FIELDS = ('rounds', 'backend')\n"
             "EXECUTION_FIELDS = ('backend',)\n"),
        )
        assert rule_ids(found) == ["FPR001"]
        assert "both" in found[0].message

    def test_flags_missing_surface(self):
        found = _check(
            "FPR001",
            (CONFIG_REL, CONFIG_TWO_FIELDS),
            (SERIALIZE_REL, "EXECUTION_FIELDS = ('backend',)\n"),
        )
        assert rule_ids(found) == ["FPR001"]
        assert "FINGERPRINTED_FIELDS" in found[0].message

    def test_near_miss_fully_classified(self):
        found = _check(
            "FPR001",
            (CONFIG_REL, CONFIG_TWO_FIELDS),
            (SERIALIZE_REL,
             "FINGERPRINTED_FIELDS = ('rounds',)\n"
             "EXECUTION_FIELDS = ('backend',)\n"),
        )
        assert found == []

    def test_near_miss_partial_tree(self):
        # Fixture projects for other rule families never define the
        # config module; the rule must stay silent, not crash.
        assert _check("FPR001", (SERIALIZE_REL, "X = 1\n")) == []


class TestFpr002SweepClassification:
    SPEC = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SweepSpec:\n"
        "    methods: tuple = ()\n"
        "    name: str = ''\n"
    )

    def test_flags_unclassified_field(self):
        found = _check(
            "FPR002",
            (SPEC_REL, self.SPEC.replace(
                "    name: str = ''\n",
                "    name: str = ''\n    notes: str = ''\n")),
            (SERIALIZE_REL,
             "SWEEP_FINGERPRINTED_FIELDS = ('methods',)\n"
             "SWEEP_COSMETIC_FIELDS = ('name',)\n"),
        )
        assert rule_ids(found) == ["FPR002"]
        assert "notes" in found[0].message

    def test_near_miss_fully_classified(self):
        found = _check(
            "FPR002",
            (SPEC_REL, self.SPEC),
            (SERIALIZE_REL,
             "SWEEP_FINGERPRINTED_FIELDS = ('methods',)\n"
             "SWEEP_COSMETIC_FIELDS = ('name',)\n"),
        )
        assert found == []
