"""Fixture corpus for PKL001 (picklable execution payloads)."""

from .helpers import rule_diagnostics, rule_ids


class TestPkl001UnpicklablePayload:
    def test_flags_lambda_member(self):
        found = rule_diagnostics("PKL001", "src/repro/ssl/method_fix.py", (
            "class Method:\n"
            "    def __init__(self):\n"
            "        self.transform = lambda x: x * 2\n"
        ))
        assert rule_ids(found) == ["PKL001"]
        assert "lambda" in found[0].message

    def test_flags_local_function_member(self):
        found = rule_diagnostics("PKL001", "src/repro/ssl/method_fix.py", (
            "class Method:\n"
            "    def __init__(self):\n"
            "        def helper(x):\n"
            "            return x\n"
            "        self.helper = helper\n"
        ))
        assert rule_ids(found) == ["PKL001"]

    def test_flags_open_handle_and_lock(self):
        found = rule_diagnostics("PKL001", "src/repro/data/shm/plane_fix.py", (
            "import threading\n"
            "class Plane:\n"
            "    def __init__(self, path):\n"
            "        self.stream = open(path)\n"
            "        self.lock = threading.Lock()\n"
        ))
        assert sorted(rule_ids(found)) == ["PKL001", "PKL001"]

    def test_near_miss_getstate_opt_out(self):
        found = rule_diagnostics("PKL001", "src/repro/data/shm/plane_fix.py", (
            "import threading\n"
            "class Plane:\n"
            "    def __init__(self, path):\n"
            "        self.lock = threading.Lock()\n"
            "    def __getstate__(self):\n"
            "        return {}\n"
        ))
        assert found == []

    def test_near_miss_module_level_callable(self):
        # A module-level function pickles by reference - that's the fix.
        found = rule_diagnostics("PKL001", "src/repro/ssl/method_fix.py", (
            "def double(x):\n"
            "    return x * 2\n"
            "class Method:\n"
            "    def __init__(self):\n"
            "        self.transform = double\n"
        ))
        assert found == []

    def test_near_miss_out_of_scope_module(self):
        found = rule_diagnostics("PKL001", "src/repro/runs/scheduler_fix.py", (
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self.job = lambda: None\n"
        ))
        assert found == []
