"""The ``repro check`` command surface, and the live-repo meta-check."""

import json

import pytest

from repro.analysis import run_check
from repro.analysis.cli import main as check_main
from repro.cli import build_parser, main as repro_main

from .helpers import REPO_ROOT, write_project

VIOLATION = (
    "import numpy as np\n"
    "rng = np.random.default_rng(0)\n"
)


class TestLiveRepo:
    """The repo must honor its own contracts — the tentpole's exit gate."""

    def test_checker_is_clean_on_this_repository(self):
        assert run_check(REPO_ROOT) == []

    def test_cli_exits_zero_on_this_repository(self, capsys):
        assert check_main(["--root", str(REPO_ROOT)]) == 0
        assert "all invariants hold" in capsys.readouterr().out


class TestParser:
    def test_check_subcommand_parses(self):
        args = build_parser().parse_args(
            ["check", "src", "--format", "json"])
        assert args.command == "check"
        assert args.paths == ["src"]
        assert args.output_format == "json"

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "--format", "yaml"])


class TestCommand:
    def test_violations_exit_one_with_text(self, tmp_path, capsys):
        write_project(tmp_path, {"src/repro/fl/fixture.py": VIOLATION})
        (tmp_path / "pyproject.toml").write_text("")
        status = check_main(["--root", str(tmp_path), "--select", "DET001"])
        assert status == 1
        out = capsys.readouterr().out
        assert "fixture.py:2: DET001" in out
        assert "1 diagnostic" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        write_project(tmp_path, {"src/repro/fl/fixture.py": VIOLATION})
        status = check_main(["--root", str(tmp_path), "--format", "json"])
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"][0]["rule"] == "DET001"

    def test_github_format_annotates(self, tmp_path, capsys):
        write_project(tmp_path, {"src/repro/fl/fixture.py": VIOLATION})
        status = check_main(["--root", str(tmp_path), "--format", "github"])
        assert status == 1
        assert capsys.readouterr().out.startswith("::error file=src/repro/")

    def test_explicit_paths_narrow_the_walk(self, tmp_path, capsys):
        write_project(tmp_path, {
            "src/repro/fl/fixture.py": VIOLATION,
            "examples/demo.py": "x = 1\n",
        })
        assert check_main(["--root", str(tmp_path), "examples"]) == 0

    def test_missing_path_exits_two(self, tmp_path, capsys):
        write_project(tmp_path, {"src/repro/fl/fixture.py": "x = 1\n"})
        assert check_main(["--root", str(tmp_path), "nonexistent"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, capsys):
        assert check_main(["--root", str(REPO_ROOT), "--select", "ZZZ9"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_unparsable_file_exits_two(self, tmp_path, capsys):
        write_project(tmp_path, {"src/repro/fl/broken.py": "def oops(:\n"})
        assert check_main(["--root", str(tmp_path)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_list_rules_covers_every_family(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "ATM001", "FPR001",
                        "FPR002", "LAY001", "LAY002", "TRC001", "TRC002",
                        "PKL001", "SUP001", "SUP002", "SUP003"):
            assert rule_id in out

    def test_main_cli_wires_check(self, capsys):
        assert repro_main(["check", "--root", str(REPO_ROOT)]) == 0
        assert "all invariants hold" in capsys.readouterr().out
