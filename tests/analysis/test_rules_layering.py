"""Fixture corpus for LAY001/LAY002 (import layering)."""

from .helpers import rule_diagnostics, rule_ids


class TestLay001LayerMap:
    def test_flags_upward_import(self):
        # repro.nn is a leaf: importing the FL stack inverts the layering.
        found = rule_diagnostics("LAY001", "src/repro/nn/layers_fix.py", (
            "from repro.fl.client import ClientData\n"
        ))
        assert rule_ids(found) == ["LAY001"]
        assert "repro.nn may not import repro.fl" in found[0].message

    def test_flags_relative_upward_import(self):
        found = rule_diagnostics("LAY001", "src/repro/data/loaders_fix.py", (
            "from ..fl.client import ClientData\n"
        ))
        assert rule_ids(found) == ["LAY001"]

    def test_flags_unclassified_package(self):
        found = rule_diagnostics("LAY001", "src/repro/brandnew/thing.py", (
            "x = 1\n"
        ))
        assert rule_ids(found) == ["LAY001"]
        assert "not classified" in found[0].message

    def test_near_miss_allowed_edge(self):
        found = rule_diagnostics("LAY001", "src/repro/fl/client_fix.py", (
            "from repro.nn.tensor import Tensor\n"
            "from ..data.partition import stratified_split\n"
        ))
        assert found == []

    def test_near_miss_intra_package_import(self):
        found = rule_diagnostics("LAY001", "src/repro/fl/server_fix.py", (
            "from .client import ClientData\n"
        ))
        assert found == []


class TestLay002StdlibOnly:
    def test_flags_numpy_in_ioutil(self):
        found = rule_diagnostics("LAY002", "src/repro/ioutil.py", (
            "import numpy as np\n"
        ))
        assert rule_ids(found) == ["LAY002"]
        assert "numpy" in found[0].message

    def test_flags_third_party_in_analysis(self):
        found = rule_diagnostics(
            "LAY002", "src/repro/analysis/rules/extra_fix.py",
            "import yaml\n")
        assert rule_ids(found) == ["LAY002"]

    def test_near_miss_stdlib_imports(self):
        found = rule_diagnostics("LAY002", "src/repro/ioutil.py", (
            "from __future__ import annotations\n"
            "import json\n"
            "import os\n"
            "from pathlib import Path\n"
        ))
        assert found == []

    def test_near_miss_numpy_outside_stdlib_only_scope(self):
        found = rule_diagnostics("LAY002", "src/repro/fl/client_fix.py", (
            "import numpy as np\n"
        ))
        assert found == []
