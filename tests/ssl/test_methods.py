"""Tests for the six SSL methods against the common interface."""

import numpy as np
import pytest

from repro.nn import MLPEncoder, SGD
from repro.ssl import (
    SSL_METHODS,
    build_ssl_method,
    copy_module_weights,
    ema_update,
    EMAUpdater,
)

from ..helpers import rng

IMAGE_SHAPE = (3, 6, 6)
INPUT_DIM = int(np.prod(IMAGE_SHAPE))


def encoder_factory():
    return MLPEncoder(INPUT_DIM, hidden_dims=(24, 12), rng=rng(0))


def make_method(name, **kwargs):
    return build_ssl_method(name, encoder_factory, projection_dim=8, hidden_dim=16,
                            rng=rng(1), **kwargs)


def make_views(seed=0, n=8):
    generator = rng(seed)
    return (generator.standard_normal((n,) + IMAGE_SHAPE),
            generator.standard_normal((n,) + IMAGE_SHAPE))


ALL_METHODS = sorted(SSL_METHODS)


class TestCommonInterface:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_compute_returns_all_artifacts(self, name):
        method = make_method(name)
        view_e, view_o = make_views()
        out = method.compute(view_e, view_o)
        assert out.z_e.shape == (8, method.feature_dim)
        assert out.z_o.shape == (8, method.feature_dim)
        assert out.h_e.shape == (8, method.projection_dim)
        assert out.h_o.shape == (8, method.projection_dim)
        assert out.loss.size == 1
        assert np.isfinite(out.loss.item())

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_loss_backward_reaches_encoder(self, name):
        method = make_method(name)
        view_e, view_o = make_views(1)
        out = method.compute(view_e, view_o)
        out.loss.backward()
        encoder_grads = [p.grad for p in method.encoder.parameters()]
        assert any(g is not None and np.any(g != 0) for g in encoder_grads), (
            f"{name}: no gradient reached the encoder"
        )

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_one_training_step_changes_global_state(self, name):
        method = make_method(name)
        before = method.global_state()
        optimizer = SGD(method.parameters(), lr=0.5)
        view_e, view_o = make_views(2)
        out = method.compute(view_e, view_o)
        optimizer.zero_grad()
        out.loss.backward()
        optimizer.step()
        method.post_step()
        after = method.global_state()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed, f"{name}: training step did not modify the global model"

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_global_state_round_trip(self, name):
        source = make_method(name)
        dest = make_method(name)
        dest.load_global_state(source.global_state())
        x = rng(3).standard_normal((4,) + IMAGE_SHAPE)
        np.testing.assert_allclose(source.encode(x), dest.encode(x), atol=1e-10)

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_encode_is_deterministic_and_preserves_mode(self, name):
        method = make_method(name)
        method.train()
        x = rng(4).standard_normal((4,) + IMAGE_SHAPE)
        first = method.encode(x)
        second = method.encode(x)
        np.testing.assert_allclose(first, second)
        assert method.training

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_project_shape(self, name):
        method = make_method(name)
        x = rng(5).standard_normal((4,) + IMAGE_SHAPE)
        assert method.project(x).shape == (4, method.projection_dim)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            build_ssl_method("bogus", encoder_factory)

    def test_global_state_excludes_local_modules(self):
        method = make_method("byol")
        keys = method.global_state().keys()
        assert all(k.startswith(("encoder.", "projector.")) for k in keys)


class TestBYOL:
    def test_target_tracks_online(self):
        method = make_method("byol", target_decay=0.5)
        for param in method.encoder.parameters():
            param.data += 1.0
        before = [p.data.copy() for p in method.target_encoder.parameters()]
        method.post_step()
        after = [p.data for p in method.target_encoder.parameters()]
        assert any(not np.allclose(b, a) for b, a in zip(before, after))

    def test_target_initialized_from_online(self):
        method = make_method("byol")
        x = rng(6).standard_normal((4,) + IMAGE_SHAPE)
        method.encoder.eval()
        method.target_encoder.eval()
        from repro.nn import Tensor, no_grad
        with no_grad():
            online = method.encoder(Tensor(x)).data
            target = method.target_encoder(Tensor(x)).data
        np.testing.assert_allclose(online, target, atol=1e-10)


class TestMoCo:
    def test_queue_advances_after_step(self):
        method = make_method("mocov2", queue_size=32)
        queue_before = method.queue.copy()
        view_e, view_o = make_views(7)
        method.compute(view_e, view_o)
        method.post_step()
        assert not np.allclose(method.queue, queue_before)

    def test_queue_rows_unit_norm(self):
        method = make_method("mocov2", queue_size=16)
        view_e, view_o = make_views(8)
        method.compute(view_e, view_o)
        method.post_step()
        norms = np.linalg.norm(method.queue, axis=1)
        np.testing.assert_allclose(norms, np.ones(16), rtol=1e-6)

    def test_queue_size_validated(self):
        with pytest.raises(ValueError):
            make_method("mocov2", queue_size=0)


class TestSwAV:
    def test_prototypes_unit_norm_after_forward(self):
        method = make_method("swav", num_prototypes=8)
        view_e, view_o = make_views(9)
        method.compute(view_e, view_o)
        norms = np.linalg.norm(method.prototype_head.linear.weight.data, axis=1)
        np.testing.assert_allclose(norms, np.ones(8), rtol=1e-6)

    def test_num_prototypes_validated(self):
        with pytest.raises(ValueError):
            make_method("swav", num_prototypes=1)


class TestSMoG:
    def test_groups_updated_synchronously(self):
        method = make_method("smog", num_groups=4)
        groups_before = method.groups.copy()
        view_e, view_o = make_views(10)
        method.compute(view_e, view_o)
        method.post_step()
        assert not np.allclose(method.groups, groups_before)
        norms = np.linalg.norm(method.groups, axis=1)
        np.testing.assert_allclose(norms, np.ones(4), rtol=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_method("smog", num_groups=1)
        with pytest.raises(ValueError):
            make_method("smog", group_momentum=1.5)


class TestEMA:
    def test_copy_weights(self):
        a, b = encoder_factory(), encoder_factory()
        for param in a.parameters():
            param.data += 3.0
        copy_module_weights(a, b)
        x = rng(11).standard_normal((2,) + IMAGE_SHAPE)
        a.eval()
        b.eval()
        from repro.nn import Tensor, no_grad
        with no_grad():
            np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_ema_update_moves_towards_source(self):
        source, target = encoder_factory(), encoder_factory()
        copy_module_weights(source, target)
        for param in source.parameters():
            param.data += 1.0
        ema_update(source, target, decay=0.9)
        source_params = dict(source.named_parameters())
        for name, param in target.named_parameters():
            gap = np.abs(source_params[name].data - param.data)
            np.testing.assert_allclose(gap, np.full_like(gap, 0.9), atol=1e-10)

    def test_decay_validated(self):
        source, target = encoder_factory(), encoder_factory()
        with pytest.raises(ValueError):
            ema_update(source, target, decay=1.5)
        with pytest.raises(ValueError):
            EMAUpdater(source, target, decay=-0.1)

    def test_updater_freezes_target(self):
        source, target = encoder_factory(), encoder_factory()
        EMAUpdater(source, target, 0.99)
        assert all(not p.requires_grad for p in target.parameters())
