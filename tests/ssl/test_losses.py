"""Tests for the SSL loss functions."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.ssl import (
    byol_regression_loss,
    info_nce_with_queue,
    negative_cosine_similarity,
    nt_xent,
    sinkhorn_knopp,
    swapped_prediction_loss,
)

from ..helpers import assert_gradients_close, rng


def embeddings(shape, seed=0):
    return Tensor(rng(seed).standard_normal(shape), requires_grad=True)


class TestNTXent:
    def test_positive_pairs_reduce_loss(self):
        base = rng(0).standard_normal((8, 16))
        identical = nt_xent(Tensor(base, requires_grad=True),
                            Tensor(base.copy(), requires_grad=True)).item()
        unrelated = nt_xent(embeddings((8, 16), 1), embeddings((8, 16), 2)).item()
        assert identical < unrelated

    def test_loss_positive(self):
        loss = nt_xent(embeddings((6, 8), 3), embeddings((6, 8), 4))
        assert loss.item() > 0

    def test_symmetric_in_views(self):
        a, b = embeddings((5, 8), 5), embeddings((5, 8), 6)
        assert nt_xent(a, b).item() == pytest.approx(nt_xent(b, a).item(), rel=1e-9)

    def test_temperature_validated(self):
        with pytest.raises(ValueError):
            nt_xent(embeddings((4, 8)), embeddings((4, 8)), temperature=0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nt_xent(embeddings((4, 8)), embeddings((5, 8)))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            nt_xent(embeddings((1, 8)), embeddings((1, 8)))

    def test_gradients(self):
        a, b = embeddings((4, 6), 7), embeddings((4, 6), 8)
        assert_gradients_close(lambda: nt_xent(a, b), [a, b], atol=1e-4)

    def test_scale_invariance_of_views(self):
        # NT-Xent normalizes embeddings, so uniform scaling is a no-op.
        a, b = embeddings((5, 8), 9), embeddings((5, 8), 10)
        scaled = nt_xent(Tensor(a.data * 10.0), Tensor(b.data * 10.0)).item()
        assert nt_xent(a, b).item() == pytest.approx(scaled, rel=1e-9)


class TestCosineLosses:
    def test_negative_cosine_range(self):
        loss = negative_cosine_similarity(embeddings((6, 8), 1), embeddings((6, 8), 2))
        assert -1.0 <= loss.item() <= 1.0

    def test_identical_vectors_give_minus_one(self):
        a = embeddings((4, 8), 3)
        loss = negative_cosine_similarity(a, Tensor(a.data.copy()))
        assert loss.item() == pytest.approx(-1.0, abs=1e-9)

    def test_target_receives_no_gradient(self):
        p, z = embeddings((4, 8), 4), embeddings((4, 8), 5)
        negative_cosine_similarity(p, z).backward()
        assert p.grad is not None
        assert z.grad is None

    def test_byol_loss_range_and_floor(self):
        a = embeddings((4, 8), 6)
        perfect = byol_regression_loss(a, Tensor(a.data.copy()))
        assert perfect.item() == pytest.approx(0.0, abs=1e-9)
        random = byol_regression_loss(embeddings((16, 8), 7), embeddings((16, 8), 8))
        assert 0.0 <= random.item() <= 4.0


class TestInfoNCE:
    def test_positive_key_lowers_loss(self):
        query = embeddings((6, 8), 1)
        queue = rng(2).standard_normal((32, 8))
        aligned = info_nce_with_queue(query, Tensor(query.data.copy()), queue).item()
        misaligned = info_nce_with_queue(query, embeddings((6, 8), 3), queue).item()
        assert aligned < misaligned

    def test_key_detached(self):
        query, key = embeddings((4, 8), 4), embeddings((4, 8), 5)
        info_nce_with_queue(query, key, rng(6).standard_normal((16, 8))).backward()
        assert key.grad is None
        assert query.grad is not None

    def test_temperature_validated(self):
        with pytest.raises(ValueError):
            info_nce_with_queue(embeddings((4, 8)), embeddings((4, 8)),
                                np.zeros((8, 8)), temperature=-1.0)


class TestSinkhorn:
    def test_rows_sum_to_one(self):
        scores = rng(0).standard_normal((12, 5))
        q = sinkhorn_knopp(scores)
        np.testing.assert_allclose(q.sum(axis=1), np.ones(12), atol=1e-6)

    def test_columns_balanced(self):
        # Cosine-scale scores (|s| <= 1) as SwAV produces; balance improves
        # with more Sinkhorn iterations.
        scores = 0.05 * rng(1).standard_normal((40, 4))
        q = sinkhorn_knopp(scores, iterations=25)
        column_mass = q.sum(axis=0)
        np.testing.assert_allclose(column_mass, np.full(4, 10.0), rtol=0.15)

    def test_nonnegative(self):
        q = sinkhorn_knopp(rng(2).standard_normal((10, 3)))
        assert np.all(q >= 0)

    def test_follows_scores(self):
        scores = np.array([[10.0, -10.0], [-10.0, 10.0]])
        q = sinkhorn_knopp(scores)
        assert q[0, 0] > q[0, 1]
        assert q[1, 1] > q[1, 0]


class TestSwappedPrediction:
    def test_loss_positive_and_finite(self):
        scores_a = embeddings((10, 6), 1)
        scores_b = embeddings((10, 6), 2)
        loss = swapped_prediction_loss(scores_a, scores_b)
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_agreeing_scores_give_lower_loss(self):
        base = rng(3).standard_normal((12, 6)) * 3.0
        agree = swapped_prediction_loss(
            Tensor(base, requires_grad=True), Tensor(base.copy(), requires_grad=True)
        ).item()
        disagree = swapped_prediction_loss(
            Tensor(base, requires_grad=True), Tensor(-base, requires_grad=True)
        ).item()
        assert agree < disagree

    def test_gradients_flow(self):
        scores_a = embeddings((6, 4), 4)
        scores_b = embeddings((6, 4), 5)
        swapped_prediction_loss(scores_a, scores_b).backward()
        assert scores_a.grad is not None
        assert scores_b.grad is not None
