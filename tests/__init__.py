"""Package marker so pytest imports tests as the ``tests`` package."""
