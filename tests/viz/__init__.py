"""Tests for repro.viz."""
