"""Tests for the dependency-free SVG renderer (repro.viz.svg)."""

from xml.etree import ElementTree

import numpy as np
import pytest

from repro.viz.svg import (
    CLASS_COLORS,
    ScatterPanel,
    accuracy_fairness_panel,
    render_accuracy_fairness,
    render_panels,
    render_scatter,
    svg_escape,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ElementTree.Element:
    """fromstring raises on malformed XML — the well-formedness assertion."""
    return ElementTree.fromstring(svg)


def panel_groups(root: ElementTree.Element):
    return [el for el in root.iter(f"{SVG_NS}g")
            if el.get("class") == "panel"]


def all_text(root: ElementTree.Element) -> str:
    return " ".join(el.text or "" for el in root.iter(f"{SVG_NS}text"))


@pytest.fixture
def points():
    rng = np.random.default_rng(7)
    return rng.standard_normal((40, 2))


@pytest.fixture
def labels():
    rng = np.random.default_rng(8)
    return rng.integers(0, 10, 40)


class TestWellFormedness:
    def test_panels_parse_as_xml(self, points, labels):
        svg = render_panels(
            [ScatterPanel(points=points, labels=labels, title="m1"),
             ScatterPanel(points=points, labels=labels, title="m2")],
            title="figure",
        )
        parse(svg)

    def test_special_characters_escaped(self, points, labels):
        svg = render_panels(
            [ScatterPanel(points=points, labels=labels,
                          title='<&"> method', subtitle="a < b & c")],
            title='Fig. <1> — "fuzzy" & clear',
        )
        root = parse(svg)
        assert '<&"> method' in all_text(root)

    def test_accuracy_fairness_parses(self):
        series = [{"method": f"m{i}", "mean": 0.1 * i, "variance": 0.01 * i}
                  for i in range(1, 6)]
        parse(render_accuracy_fairness(series, title="fig3"))


class TestDeterminism:
    def test_identical_inputs_identical_bytes(self, points, labels):
        panels = [ScatterPanel(points=points, labels=labels, title="m")]
        assert render_panels(panels) == render_panels(panels)

    def test_series_dict_order_irrelevant(self):
        series = [{"method": "b", "mean": 0.5, "variance": 0.02},
                  {"method": "a", "mean": 0.7, "variance": 0.01}]
        assert (render_accuracy_fairness(series)
                == render_accuracy_fairness(list(reversed(series))))


class TestPanelsAndLegend:
    def test_panel_count_matches_input(self, points, labels):
        panels = [ScatterPanel(points=points, labels=labels, title=f"m{i}")
                  for i in range(5)]
        root = parse(render_panels(panels, columns=3))
        assert len(panel_groups(root)) == 5

    def test_legend_lists_every_class(self, points):
        labels = np.array([0, 3, 7] * 13 + [0])
        svg = render_panels([ScatterPanel(points=points, labels=labels)])
        text = all_text(parse(svg))
        for class_id in (0, 3, 7):
            assert f"class {class_id}" in text
        assert "class 1" not in text

    def test_legend_uses_class_names(self, points):
        labels = np.zeros(40, dtype=int)
        svg = render_panels([ScatterPanel(points=points, labels=labels)],
                            class_names={0: "airplane"})
        assert "airplane" in all_text(parse(svg))

    def test_legend_can_be_disabled(self, points, labels):
        svg = render_panels([ScatterPanel(points=points, labels=labels)],
                            legend=False)
        assert "class 0" not in all_text(parse(svg))

    def test_marker_shapes_cycle_with_class(self, points):
        # classes 0 and 4 share the circle shape but not the hue; class 1
        # brings squares, class 2 triangles/polygons.
        svg = render_panels([ScatterPanel(points=points,
                                          labels=np.arange(40) % 4)])
        root = parse(svg)
        tags = {el.tag.replace(SVG_NS, "") for el in root.iter()}
        assert {"circle", "rect", "polygon"} <= tags

    def test_scatter_shortcut(self, points, labels):
        root = parse(render_scatter(points, labels, title="one"))
        assert len(panel_groups(root)) == 1


class TestValidation:
    def test_empty_panels_rejected(self):
        with pytest.raises(ValueError):
            render_panels([])

    def test_bad_points_shape_rejected(self):
        with pytest.raises(ValueError):
            ScatterPanel(points=np.zeros((4, 3)))

    def test_mismatched_labels_rejected(self, points):
        with pytest.raises(ValueError):
            ScatterPanel(points=points, labels=np.zeros(3, dtype=int))

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_accuracy_fairness([])


class TestAccuracyFairness:
    SERIES = [
        {"method": "fedavg", "mean": 0.42, "variance": 0.031},
        {"method": "calibre-simclr", "mean": 0.71, "variance": 0.012},
        {"method": "pfl-simclr", "mean": 0.55, "variance": 0.045},
    ]

    def test_every_method_directly_labeled(self):
        text = all_text(parse(render_accuracy_fairness(self.SERIES)))
        for row in self.SERIES:
            assert row["method"] in text

    def test_group_legend_present(self):
        text = all_text(parse(render_accuracy_fairness(self.SERIES)))
        assert "baselines" in text
        assert "Calibre" in text
        assert "pFL-SSL" in text

    def test_axes_render_ticks_and_labels(self):
        text = all_text(parse(render_accuracy_fairness(self.SERIES)))
        assert "mean accuracy" in text
        assert "accuracy variance" in text
        assert "0.5" in text  # an x tick inside [0.42, 0.71]

    def test_panel_composition(self):
        panel = accuracy_fairness_panel(self.SERIES, title="train")
        root = parse(render_panels([panel, panel], columns=2))
        assert len(panel_groups(root)) == 2

    def test_groups_use_leading_slots(self):
        panel = accuracy_fairness_panel(self.SERIES)
        svg = render_panels([panel])
        # baselines, Calibre and pFL-SSL map to the first three validated
        # categorical slots, in that order
        for hex_color in CLASS_COLORS[:3]:
            assert hex_color in svg


def test_svg_escape():
    assert svg_escape('a<b>&"c"') == "a&lt;b&gt;&amp;&quot;c&quot;"
