"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn import Tensor


def numeric_gradient(func: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``func`` wrt ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = float(func().data)
        flat[index] = original - eps
        lower = float(func().data)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * eps)
    return grad


def assert_gradients_close(
    func: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Compare autograd gradients of scalar ``func`` against finite differences."""
    for tensor in tensors:
        tensor.grad = None
    out = func()
    assert out.size == 1, "gradient check requires a scalar output"
    out.backward()
    for position, tensor in enumerate(tensors):
        expected = numeric_gradient(func, tensor, eps=eps)
        actual = tensor.grad
        assert actual is not None, f"tensor #{position} received no gradient"
        np.testing.assert_allclose(
            actual, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for tensor #{position}",
        )


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
