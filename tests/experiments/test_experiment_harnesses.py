"""Tests for the per-figure experiment harnesses (scaled way down)."""

import pytest

from repro.eval import NonIIDSetting
from repro.experiments import (
    COMPARISON_METHODS,
    FIG3_PANELS,
    FIG4_PANELS,
    FIGURE_METHOD_SETS,
    SCALED_CONFIG,
    compute_method_embeddings,
    run_fig3_panel,
    run_fig4_panel,
    run_table1,
    scaled_spec,
)
from repro.fl import FederatedConfig

TINY_CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                              local_epochs=1, batch_size=16,
                              personalization_epochs=2, seed=0)
TINY_DATASET = dict(image_size=8, train_per_class=16, test_per_class=4)


class TestSettings:
    def test_fig3_has_four_panels(self):
        assert len(FIG3_PANELS) == 4
        datasets = [panel[0] for panel in FIG3_PANELS]
        assert datasets == ["cifar10", "cifar100", "stl10", "stl10"]

    def test_fig4_has_two_panels(self):
        assert [panel[0] for panel in FIG4_PANELS] == ["cifar10", "cifar100"]

    def test_comparison_method_list_matches_paper_rows(self):
        # Fig. 3 compares 20 methods including all six Calibre variants.
        assert len(COMPARISON_METHODS) == 20
        assert "calibre-simclr" in COMPARISON_METHODS
        assert "fedema" in COMPARISON_METHODS

    def test_scaled_spec_injects_calibre_overrides(self):
        spec = scaled_spec("cifar10", NonIIDSetting("quantity", 2, 50),
                           ["calibre-simclr"])
        assert spec.method_overrides["calibre-simclr"]["num_prototypes"] == 5

    def test_scaled_config_preserves_paper_personalization(self):
        # The personalization protocol (10 epochs, lr 0.05, batch 32) is kept
        # at paper values even in the scaled config.
        assert SCALED_CONFIG.personalization_epochs == 10
        assert SCALED_CONFIG.personalization_lr == 0.05
        assert SCALED_CONFIG.personalization_batch_size == 32


class TestFig3Harness:
    def test_panel_runs_and_reports(self):
        outcome = run_fig3_panel(0, methods=["script-fair", "fedavg"],
                                 config=TINY_CONFIG, dataset_kwargs=TINY_DATASET)
        assert set(outcome.reports) == {"script-fair", "fedavg"}
        series = outcome.series()
        assert {row["method"] for row in series} == {"script-fair", "fedavg"}

    def test_bad_panel_index(self):
        with pytest.raises(IndexError):
            run_fig3_panel(9)


class TestFig4Harness:
    def test_panel_includes_novel_clients(self):
        outcome = run_fig4_panel(0, methods=["fedavg-ft"], config=None,
                                 num_novel_clients=2,
                                 dataset_kwargs=TINY_DATASET)
        # config=None builds the scaled config with the requested novel count
        assert "fedavg-ft" in outcome.novel_reports

    def test_bad_panel_index(self):
        with pytest.raises(IndexError):
            run_fig4_panel(5)


class TestTable1Harness:
    def test_rows_cover_all_toggles(self):
        rows = run_table1(variants=["calibre-simclr"], config=TINY_CONFIG,
                          dataset_kwargs=TINY_DATASET,
                          setting=NonIIDSetting("quantity", 2, 20))
        assert [(r["ln"], r["lp"]) for r in rows] == [
            (False, False), (True, False), (False, True), (True, True)
        ]
        for row in rows:
            mean, std = row["results"]["calibre-simclr"]
            assert 0.0 <= mean <= 1.0
            assert std >= 0.0


class TestEmbeddingHarness:
    def test_embeddings_and_silhouettes(self):
        results = compute_method_embeddings(
            ["pfl-simclr"],
            dataset_name="cifar10",
            setting=NonIIDSetting("dirichlet", 0.5, 20),
            num_embed_clients=3,
            samples_per_client=8,
            config=TINY_CONFIG,
            dataset_kwargs=TINY_DATASET,
            tsne_iterations=60,
        )
        result = results[0]
        assert result.method == "pfl-simclr"
        assert result.embedding.shape[1] == 2
        assert result.embedding.shape[0] == result.labels.shape[0]
        assert -1.0 <= result.silhouette <= 1.0
        csv = result.to_csv()
        assert csv.splitlines()[0] == "x,y,label,client"

    def test_figure_method_sets(self):
        assert set(FIGURE_METHOD_SETS) == {"fig1", "fig2", "fig5", "fig6",
                                           "fig7", "fig8"}
        assert FIGURE_METHOD_SETS["fig1"] == ["pfl-simclr", "pfl-byol"]
        assert FIGURE_METHOD_SETS["fig2"] == FIGURE_METHOD_SETS["fig1"]
        assert "calibre-simclr" in FIGURE_METHOD_SETS["fig7"]
