"""Tests for the store-backed embedding-figure pipeline (fig1/2/5-8)."""

from xml.etree import ElementTree

import numpy as np
import pytest

from repro.experiments import (
    EMBEDDING_FIGURES,
    FIGURE_METHOD_SETS,
    EmbedParams,
    embedding_from_record,
    embeddings_sweep,
    figure_results_from_records,
    render_figure_svg,
    run_figure,
)
from repro.experiments.embeddings import embed_params_of, execute_embedding_cell
from repro.fl import FederatedConfig
from repro.runs import RunKey, RunStore, run_sweep

TINY_CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                              local_epochs=1, batch_size=16,
                              personalization_epochs=2, seed=0)
TINY_DATASET = dict(image_size=8, train_per_class=16, test_per_class=4)
TINY_EMBED = EmbedParams(num_embed_clients=3, samples_per_client=8,
                         tsne_iterations=30)


def tiny_sweep(figure="fig1", methods=("script-fair",), **kwargs):
    return embeddings_sweep(figure, methods=list(methods), config=TINY_CONFIG,
                            dataset_kwargs=TINY_DATASET, embed=TINY_EMBED,
                            samples_per_client=20, **kwargs)


class TestSweepDeclaration:
    def test_every_figure_declares_a_grid(self):
        for figure in EMBEDDING_FIGURES:
            sweep = embeddings_sweep(figure)
            assert sweep.num_cells == len(FIGURE_METHOD_SETS[figure])
            assert sweep.extras["embed"]["tsne_perplexity"] == 15.0

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            embeddings_sweep("fig9")

    def test_fig8_runs_on_stl10(self):
        sweep = embeddings_sweep("fig8")
        assert sweep.datasets == ["stl10"]
        assert sweep.extras["embed"]["samples_per_client"] == 12

    def test_fig2_declares_exactly_fig1_cells(self):
        fig1 = [key.fingerprint for key in embeddings_sweep("fig1").cells()]
        fig2 = [key.fingerprint for key in embeddings_sweep("fig2").cells()]
        assert fig1 == fig2

    def test_embed_params_are_fingerprinted(self):
        base = tiny_sweep().cells()[0]
        longer = tiny_sweep(tsne_iterations=31).cells()[0]
        assert base.fingerprint != longer.fingerprint
        assert embed_params_of(longer).tsne_iterations == 31

    def test_embed_field_overrides_apply_to_figure_default(self):
        sweep = embeddings_sweep("fig7", embed_samples=5)
        params = EmbedParams.from_jsonable(sweep.extras["embed"])
        assert params.samples_per_client == 5
        assert params.tsne_iterations == 200  # fig7's default survives

    def test_calibre_overrides_injected(self):
        sweep = embeddings_sweep("fig6")
        assert all(key.overrides == {"num_prototypes": 5}
                   for key in sweep.cells())


class TestRunKeyExtras:
    def test_empty_extras_leave_payload_unchanged(self):
        key = tiny_sweep().cells()[0]
        plain = RunKey(dataset=key.dataset, setting=key.setting,
                       method=key.method, seed=key.seed, config=key.config,
                       overrides=key.overrides,
                       dataset_kwargs=key.dataset_kwargs)
        assert "extras" not in plain.semantic_payload()
        assert "extras" in key.semantic_payload()
        assert plain.fingerprint != key.fingerprint

    def test_jsonable_roundtrip_preserves_extras(self):
        key = tiny_sweep().cells()[0]
        clone = RunKey.from_jsonable(key.to_jsonable())
        assert clone.extras == key.extras
        assert clone.fingerprint == key.fingerprint

    def test_plain_key_rejected_by_embed_executor(self):
        key = tiny_sweep().cells()[0]
        plain = RunKey.from_jsonable(
            {**key.to_jsonable(), "extras": {}})
        with pytest.raises(KeyError):
            embed_params_of(plain)


class TestStoreRoundTrip:
    def run_tiny(self, tmp_path, **kwargs):
        sweep = tiny_sweep(**kwargs)
        summary = run_sweep(sweep, store=tmp_path,
                            executor=execute_embedding_cell)
        return sweep, summary

    def test_records_carry_embedding_and_report(self, tmp_path):
        _sweep, summary = self.run_tiny(tmp_path)
        record = summary.records[0]
        embedding = record["embedding"]
        # The record itself holds scalars + column *names*; the point cloud
        # lives in the store's binary arrays/ sidecar.
        assert set(embedding) >= {"arrays", "silhouette",
                                  "feature_silhouette",
                                  "per_client_silhouette", "params"}
        columns = RunStore(tmp_path).read_arrays(record["fingerprint"])
        assert set(columns) == set(embedding["arrays"])
        assert len(columns["embedding.points"]) == \
            len(columns["embedding.labels"])
        assert "mean" in record["report"]  # the training result rides along

    def test_store_rebuild_renders_byte_identical_svg(self, tmp_path):
        sweep, summary = self.run_tiny(tmp_path)
        live = figure_results_from_records(summary.cells, summary.records,
                                           methods=sweep.methods,
                                           store=tmp_path)
        reloaded = RunStore(tmp_path).load_records(sweep.cells())
        stored = figure_results_from_records(sweep.cells(), reloaded,
                                             methods=sweep.methods,
                                             store=tmp_path)
        svg_live = render_figure_svg("fig1", live)
        svg_stored = render_figure_svg("fig1", stored)
        assert svg_live == svg_stored
        ElementTree.fromstring(svg_stored)
        np.testing.assert_array_equal(live[0].embedding, stored[0].embedding)

    def test_resume_skips_completed_cells(self, tmp_path):
        sweep, summary = self.run_tiny(tmp_path)
        assert len(summary.executed) == 1
        again = run_sweep(sweep, store=tmp_path,
                          executor=execute_embedding_cell)
        assert again.executed == []
        assert len(again.skipped) == 1

    def test_run_figure_replays_from_store(self, tmp_path):
        kwargs = dict(methods=["script-fair"], config=TINY_CONFIG,
                      dataset_kwargs=TINY_DATASET, embed=TINY_EMBED,
                      samples_per_client=20, store=tmp_path)
        first = run_figure("fig1", **kwargs)
        second = run_figure("fig1", **kwargs)  # no cells left to execute
        np.testing.assert_array_equal(first[0].embedding, second[0].embedding)
        assert first[0].silhouette == second[0].silhouette

    def test_plain_training_record_rejected(self, tmp_path):
        from repro.runs import execute_cell

        key = tiny_sweep().cells()[0]
        plain_key = RunKey.from_jsonable({**key.to_jsonable(), "extras": {}})
        record = execute_cell(plain_key)
        with pytest.raises(KeyError):
            embedding_from_record(record)

    def test_training_half_matches_plain_execute_cell(self):
        # The embedding executor must stay pinned to the harness: its
        # result/report must be exactly what a plain training cell of the
        # same coordinates (extras stripped) produces.
        from repro.runs import encode_record, execute_cell

        key = tiny_sweep().cells()[0]
        plain_key = RunKey.from_jsonable({**key.to_jsonable(), "extras": {}})
        embedded = execute_embedding_cell(key)
        plain = execute_cell(plain_key)
        # byte-compare the encodings: the records carry NaN mean losses
        # (script-* baselines), and nan != nan under dict equality
        assert (encode_record(embedded["result"])
                == encode_record(plain["result"]))
        assert embedded["report"] == plain["report"]

    def test_resume_from_final_round_checkpoint_is_identical(self, tmp_path):
        # A checkpoint taken after the last training round (killed before
        # personalization) resumes without stepping; the embedding must
        # still be captured, identically.
        from repro.runs import encode_record

        key = tiny_sweep().cells()[0]
        ckpt = tmp_path / "ckpt"
        first = execute_embedding_cell(key, checkpoint_dir=ckpt)
        assert list(ckpt.glob("*.json"))  # final-round checkpoint left behind
        resumed = execute_embedding_cell(key, checkpoint_dir=ckpt)
        assert encode_record(resumed) == encode_record(first)


class TestRendering:
    def make_result(self, method="script-fair", clients=3):
        rng = np.random.default_rng(3)
        n = 8 * clients
        from repro.experiments import EmbeddingResult

        return EmbeddingResult(
            method=method,
            embedding=rng.standard_normal((n, 2)),
            labels=rng.integers(0, 4, n),
            client_ids=np.repeat(np.arange(clients), 8),
            silhouette=0.1,
            feature_silhouette=0.2,
            per_client_silhouette={0: 0.3, 1: 0.1},
        )

    def test_fig2_renders_only_per_client_panels(self):
        svg = render_figure_svg("fig2", [self.make_result()])
        root = ElementTree.fromstring(svg)
        panels = [el for el in root.iter("{http://www.w3.org/2000/svg}g")
                  if el.get("class") == "panel"]
        assert len(panels) == 2  # two recorded per-client views, no overview

    def test_fig6_renders_methods_plus_per_client(self):
        results = [self.make_result("calibre-simclr"),
                   self.make_result("calibre-byol")]
        svg = render_figure_svg("fig6", results)
        root = ElementTree.fromstring(svg)
        panels = [el for el in root.iter("{http://www.w3.org/2000/svg}g")
                  if el.get("class") == "panel"]
        assert len(panels) == 2 + 4

    def test_fig2_without_per_client_silhouettes_fails_loudly(self):
        result = self.make_result()
        result.per_client_silhouette = {}
        with pytest.raises(ValueError):
            render_figure_svg("fig2", [result])
