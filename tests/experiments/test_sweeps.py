"""Tests for the per-figure sweep definitions and store-backed reporting."""

import pytest

from repro.eval import NonIIDSetting, format_ablation_table
from repro.experiments import (
    TABLE1_TOGGLES,
    TABLE1_VARIANTS,
    fig3_sweep,
    fig4_sweep,
    run_table1,
    table1_rows_from_records,
    table1_sweep,
)
from repro.fl import FederatedConfig
from repro.runs import RunStore, run_sweep

TINY_CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                              local_epochs=1, batch_size=16,
                              personalization_epochs=2, seed=0)
TINY_DATASET = dict(image_size=8, train_per_class=16, test_per_class=4)
TINY_SETTING = NonIIDSetting("quantity", 2, 20)


class TestSweepDefinitions:
    def test_table1_grid_is_twelve_cells(self):
        sweep = table1_sweep()
        assert sweep.num_cells == len(TABLE1_VARIANTS) * len(TABLE1_TOGGLES) == 12
        labels = [v.label for v in sweep.variants]
        assert labels == ["ln0-lp0", "ln1-lp0", "ln0-lp1", "ln1-lp1"]
        for key in sweep.cells():
            assert key.overrides["num_prototypes"] == 5
            assert isinstance(key.overrides["use_ln"], bool)

    def test_fig3_grid_one_cell_per_method(self):
        sweep = fig3_sweep(0, methods=["script-fair", "fedavg"], seeds=(0, 1))
        assert sweep.num_cells == 4
        assert sweep.datasets == ["cifar10"]

    def test_samples_per_client_scales_the_setting(self):
        sweep = fig3_sweep(0, methods=["script-fair"], samples_per_client=20)
        assert sweep.settings[0].samples_per_client == 20
        default = fig3_sweep(0, methods=["script-fair"])
        assert sweep.cells()[0].fingerprint != default.cells()[0].fingerprint

    def test_fig3_calibre_overrides_injected(self):
        sweep = fig3_sweep(0, methods=["calibre-simclr"])
        assert sweep.cells()[0].overrides == {"num_prototypes": 5}

    def test_fig4_config_carries_novel_clients(self):
        sweep = fig4_sweep(1, methods=["fedavg-ft"], num_novel_clients=3)
        assert sweep.config.num_novel_clients == 3
        assert sweep.datasets == ["cifar100"]

    def test_bad_panel_rejected(self):
        with pytest.raises(IndexError):
            fig3_sweep(9)
        with pytest.raises(IndexError):
            fig4_sweep(5)


class TestTable1RowOrdering:
    def run_tiny(self, **kwargs):
        return table1_sweep(variants=["calibre-simclr"], config=TINY_CONFIG,
                            setting=TINY_SETTING, dataset_kwargs=TINY_DATASET,
                            **kwargs)

    def test_rows_follow_paper_toggle_order(self, tmp_path):
        sweep = self.run_tiny()
        summary = run_sweep(sweep, store=tmp_path)
        rows = table1_rows_from_records(summary.cells, summary.records,
                                        variants=["calibre-simclr"])
        assert [(r["ln"], r["lp"]) for r in rows] == TABLE1_TOGGLES

    def test_rows_independent_of_completion_order(self, tmp_path):
        # rows are keyed by grid coordinates, never by store/file order, so
        # loading records back from disk reproduces the exact same table.
        sweep = self.run_tiny()
        summary = run_sweep(sweep, store=tmp_path)
        live_rows = table1_rows_from_records(summary.cells, summary.records,
                                             variants=["calibre-simclr"])
        cells = sweep.cells()
        reloaded = RunStore(tmp_path).load_records(cells)
        stored_rows = table1_rows_from_records(cells, reloaded,
                                               variants=["calibre-simclr"])
        assert format_ablation_table(stored_rows) == format_ablation_table(live_rows)

    def test_missing_cell_raises(self, tmp_path):
        sweep = self.run_tiny()
        cells = sweep.cells()
        with pytest.raises(KeyError):
            table1_rows_from_records(cells, [None] * len(cells),
                                     variants=["calibre-simclr"])


class TestRunTable1StoreBacked:
    def test_store_backed_rerun_skips_training(self, tmp_path):
        kwargs = dict(variants=["calibre-simclr"], config=TINY_CONFIG,
                      setting=TINY_SETTING, dataset_kwargs=TINY_DATASET,
                      store=tmp_path)
        first = run_table1(**kwargs)
        assert len(RunStore(tmp_path)) == len(TABLE1_TOGGLES)
        second = run_table1(**kwargs)  # replays from the store
        assert format_ablation_table(second) == format_ablation_table(first)
