"""Tests for the exact t-SNE implementation and silhouette score."""

import numpy as np
import pytest

from repro.manifold import TSNE, conditional_probabilities, silhouette_score, tsne_embed


def blobs(k=3, per=25, d=8, sep=10.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, d)) * sep
    points = np.concatenate([centers[j] + rng.standard_normal((per, d)) for j in range(k)])
    labels = np.repeat(np.arange(k), per)
    return points, labels


class TestConditionalProbabilities:
    def test_rows_sum_to_one(self):
        points, _ = blobs(seed=1)
        sq = ((points[:, None] - points[None]) ** 2).sum(axis=2)
        probs = conditional_probabilities(sq, perplexity=10.0)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(points.shape[0]), atol=1e-6)

    def test_diagonal_zero(self):
        points, _ = blobs(seed=2)
        sq = ((points[:, None] - points[None]) ** 2).sum(axis=2)
        probs = conditional_probabilities(sq, perplexity=10.0)
        np.testing.assert_allclose(np.diag(probs), np.zeros(points.shape[0]))

    def test_perplexity_matched(self):
        points, _ = blobs(seed=3)
        sq = ((points[:, None] - points[None]) ** 2).sum(axis=2)
        probs = conditional_probabilities(sq, perplexity=15.0)
        entropies = np.array([
            -(row[row > 1e-12] * np.log(row[row > 1e-12])).sum() for row in probs
        ])
        np.testing.assert_allclose(np.exp(entropies), np.full(points.shape[0], 15.0), rtol=0.05)

    def test_perplexity_must_be_feasible(self):
        with pytest.raises(ValueError):
            conditional_probabilities(np.zeros((5, 5)), perplexity=5.0)


class TestTSNE:
    def test_output_shape_and_centered(self):
        points, _ = blobs(seed=4)
        embedding = tsne_embed(points, perplexity=10.0, n_iterations=150, seed=0)
        assert embedding.shape == (points.shape[0], 2)
        np.testing.assert_allclose(embedding.mean(axis=0), np.zeros(2), atol=1e-8)

    def test_separated_blobs_stay_separated(self):
        points, labels = blobs(seed=5)
        embedding = tsne_embed(points, perplexity=10.0, n_iterations=300, seed=1)
        score = silhouette_score(embedding, labels)
        assert score > 0.4, f"t-SNE failed to separate well-separated blobs: {score:.3f}"

    def test_deterministic_given_seed(self):
        points, _ = blobs(per=10, seed=6)
        a = tsne_embed(points, n_iterations=50, seed=3)
        b = tsne_embed(points, n_iterations=50, seed=3)
        np.testing.assert_allclose(a, b)

    def test_validates_input(self):
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 2, 2)))
        with pytest.raises(ValueError):
            TSNE().fit_transform(np.zeros((3, 2)))

    def test_kl_divergence_nonnegative_and_small_for_good_fit(self):
        points, _ = blobs(per=15, seed=7)
        model = TSNE(perplexity=10.0, n_iterations=300, seed=2)
        embedding = model.fit_transform(points)
        kl = model.kl_divergence(points, embedding)
        assert kl >= 0.0
        assert kl < 2.0


class TestSilhouette:
    def test_perfect_separation_close_to_one(self):
        points = np.concatenate([np.zeros((10, 2)), np.full((10, 2), 100.0)])
        points += 0.01 * np.random.default_rng(0).standard_normal(points.shape)
        labels = np.repeat([0, 1], 10)
        assert silhouette_score(points, labels) > 0.95

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal((60, 4))
        labels = rng.integers(0, 3, size=60)
        assert abs(silhouette_score(points, labels)) < 0.2

    def test_mislabeled_clusters_negative(self):
        a = np.zeros((10, 2))
        b = np.full((10, 2), 10.0)
        points = np.concatenate([a, b]) + 0.1 * np.random.default_rng(2).standard_normal((20, 2))
        # Deliberately split each true blob across both labels.
        labels = np.tile([0, 1], 10)
        assert silhouette_score(points, labels) < 0.0

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((5, 2)), np.zeros(5, dtype=int))

    def test_singleton_cluster_contributes_zero(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [10.0, 0.0]])
        labels = np.array([0, 0, 1])
        score = silhouette_score(points, labels)
        assert np.isfinite(score)
