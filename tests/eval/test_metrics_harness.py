"""Tests for eval metrics, the harness, reporting, and viz."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    ExperimentSpec,
    NonIIDSetting,
    accuracy_variance,
    fairness_report,
    format_comparison_table,
    format_ablation_table,
    format_series_csv,
    make_dataset,
    make_encoder_factory,
    make_partitions,
    mean_accuracy,
    run_experiment,
)
from repro.fl import FederatedConfig
from repro.viz import ascii_scatter, points_to_csv


class TestMetrics:
    def test_mean_and_variance(self):
        accs = [0.4, 0.6, 0.8]
        assert mean_accuracy(accs) == pytest.approx(0.6)
        assert accuracy_variance(accs) == pytest.approx(np.var(accs))

    def test_report_fields(self):
        report = fairness_report([0.2, 0.4, 0.6, 0.8])
        assert report.minimum == pytest.approx(0.2)
        assert report.maximum == pytest.approx(0.8)
        assert report.fairness_gap == pytest.approx(0.6)
        assert report.worst_decile_mean == pytest.approx(0.2)
        assert report.num_clients == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_accuracy([])
        with pytest.raises(ValueError):
            fairness_report([1.2])
        with pytest.raises(ValueError):
            fairness_report([-0.1])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_property_bounds(self, accs):
        report = fairness_report(accs)
        assert 0.0 <= report.mean <= 1.0
        assert report.variance >= 0.0
        assert report.minimum <= report.mean <= report.maximum
        assert report.worst_decile_mean <= report.mean + 1e-12


class TestNonIIDSetting:
    def test_labels(self):
        assert NonIIDSetting("quantity", 2, 500).label() == "(2, 500)"
        assert NonIIDSetting("dirichlet", 0.3, 600).label() == "(0.3, 600)"

    def test_validation(self):
        with pytest.raises(ValueError):
            NonIIDSetting("bogus", 1, 100)
        with pytest.raises(ValueError):
            NonIIDSetting("quantity", 1, 2)

    def test_make_partitions_dispatch(self):
        labels = np.repeat(np.arange(4), 30)
        rng = np.random.default_rng(0)
        for kind, param in [("quantity", 2), ("dirichlet", 0.3), ("iid", 0)]:
            parts = make_partitions(labels, 4,
                                    NonIIDSetting(kind, param, 10), rng)
            assert len(parts) == 4


class TestHarnessPieces:
    def test_make_dataset_dispatch(self):
        dataset = make_dataset("cifar10", image_size=8, train_per_class=4,
                               test_per_class=2)
        assert dataset.num_classes == 10
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_make_encoder_factory_kinds(self):
        dataset = make_dataset("cifar10", image_size=8, train_per_class=4,
                               test_per_class=2)
        for kind in ("mlp", "smallconv", "resnet9"):
            factory = make_encoder_factory(kind, dataset, width=4,
                                           hidden_dims=(16, 8))
            encoder = factory()
            assert hasattr(encoder, "feature_dim")
        with pytest.raises(KeyError):
            make_encoder_factory("transformer", dataset)

    def test_encoder_factory_replicas_identical(self):
        dataset = make_dataset("cifar10", image_size=8, train_per_class=4,
                               test_per_class=2)
        factory = make_encoder_factory("mlp", dataset, hidden_dims=(16, 8))
        a, b = factory(), factory()
        for (name_a, pa), (name_b, pb) in zip(a.named_parameters(),
                                              b.named_parameters()):
            assert name_a == name_b
            np.testing.assert_array_equal(pa.data, pb.data)


class TestRunExperiment:
    def make_spec(self, methods, novel=0):
        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=2,
                                 local_epochs=1, batch_size=16,
                                 personalization_epochs=3,
                                 num_novel_clients=novel, seed=0)
        return ExperimentSpec(
            dataset="cifar10",
            setting=NonIIDSetting("dirichlet", 0.5, 30),
            config=config,
            methods=methods,
            encoder="mlp",
            encoder_hidden_dims=(24, 12),
            dataset_kwargs=dict(image_size=8, train_per_class=24, test_per_class=4),
        )

    def test_runs_multiple_methods_on_same_partitions(self):
        outcome = run_experiment(self.make_spec(["fedavg", "script-fair"]))
        assert set(outcome.results) == {"fedavg", "script-fair"}
        assert set(outcome.reports) == {"fedavg", "script-fair"}
        fa = outcome.results["fedavg"]
        sf = outcome.results["script-fair"]
        assert sorted(fa.accuracies) == sorted(sf.accuracies)

    def test_series_rows(self):
        outcome = run_experiment(self.make_spec(["fedavg"]))
        series = outcome.series()
        assert series[0]["method"] == "fedavg"
        assert 0.0 <= series[0]["mean"] <= 1.0

    def test_novel_reports_present(self):
        outcome = run_experiment(self.make_spec(["fedavg-ft"], novel=2))
        assert "fedavg-ft" in outcome.novel_reports


class TestReporting:
    def run_outcome(self):
        config = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1,
                                 local_epochs=1, batch_size=16,
                                 personalization_epochs=2, seed=0)
        spec = ExperimentSpec(
            dataset="cifar10", setting=NonIIDSetting("dirichlet", 0.5, 20),
            config=config, methods=["script-fair"], encoder="mlp",
            encoder_hidden_dims=(16, 8),
            dataset_kwargs=dict(image_size=8, train_per_class=16, test_per_class=4),
        )
        return run_experiment(spec)

    def test_comparison_table_contains_method(self):
        table = format_comparison_table(self.run_outcome())
        assert "script-fair" in table
        assert "variance" in table

    def test_series_csv(self):
        csv = format_series_csv(self.run_outcome())
        lines = csv.splitlines()
        assert lines[0] == "method,mean_accuracy,accuracy_variance"
        assert lines[1].startswith("script-fair,")

    def test_ablation_table(self):
        rows = [
            {"ln": False, "lp": False, "results": {"calibre-simclr": (0.5467, 0.1432)}},
            {"ln": True, "lp": True, "results": {"calibre-simclr": (0.8916, 0.1058)}},
        ]
        table = format_ablation_table(rows)
        assert "calibre-simclr" in table
        assert "54.67" in table
        assert "89.16" in table
        with pytest.raises(ValueError):
            format_ablation_table([])


class TestViz:
    def test_ascii_scatter_shapes(self):
        points = np.random.default_rng(0).standard_normal((30, 2))
        labels = np.arange(30) % 3
        art = ascii_scatter(points, labels, width=20, height=10, title="demo")
        lines = art.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 13  # title + top border + 10 rows + bottom border
        assert all(len(line) == 22 for line in lines[1:])

    def test_ascii_scatter_validation(self):
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((0, 2)))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            ascii_scatter(np.zeros((3, 2)), width=2)

    def test_points_to_csv(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        csv = points_to_csv(points, labels=np.array([0, 1]),
                            extra={"client": np.array([7, 8])})
        lines = csv.splitlines()
        assert lines[0] == "x,y,label,client"
        assert len(lines) == 3
        with pytest.raises(ValueError):
            points_to_csv(points, extra={"bad": np.zeros(5)})
