"""Golden-string tests for the text renderers in ``eval.reporting``.

The run-store acceptance contract is that ``repro report`` reproduces
these tables *byte-identically* from persisted records, so the exact
layout (column widths, sorting, toggle marks) is pinned here.
"""

import pytest

from repro.eval import (
    FairnessReport,
    fairness_report,
    format_ablation_table,
    format_comparison_table,
    format_report_table,
    format_series_csv,
)
from repro.eval.harness import ExperimentOutcome, ExperimentSpec, NonIIDSetting
from repro.fl import FederatedConfig
from repro.fl.history import RunResult


def tiny_outcome():
    spec = ExperimentSpec(
        dataset="cifar10",
        setting=NonIIDSetting("quantity", 2, 20),
        config=FederatedConfig(num_clients=4, clients_per_round=2, rounds=1),
        methods=["alpha", "beta"],
    )
    results = {
        "alpha": RunResult(algorithm="alpha", accuracies={0: 0.5, 1: 1.0}),
        "beta": RunResult(algorithm="beta", accuracies={0: 0.5, 1: 0.5}),
    }
    reports = {name: fairness_report(result.accuracy_vector())
               for name, result in results.items()}
    return ExperimentOutcome(spec=spec, results=results, reports=reports)


GOLDEN_REPORT_TABLE = (
    "golden title\n"
    "method                     mean   variance      std      min      max\n"
    "alpha                    0.7500    0.06250   0.2500   0.5000   1.0000\n"
    "beta                     0.5000    0.00000   0.0000   0.5000   0.5000"
)

GOLDEN_ABLATION_TABLE = (
    "Table I\n"
    " L_n  L_p                  a-method                  b-method\n"
    "                     30.00 ±  5.00             54.67 ±  1.23\n"
    "  ✓   ✓              40.00 ±  0.00             89.16 ±  0.10"
)


class TestFormatReportTable:
    def test_golden_string(self):
        reports = {"alpha": fairness_report([0.5, 1.0]),
                   "beta": fairness_report([0.5, 0.5])}
        assert format_report_table(reports, "golden title") == GOLDEN_REPORT_TABLE

    def test_sorted_by_descending_mean(self):
        reports = {"low": fairness_report([0.1]), "high": fairness_report([0.9])}
        lines = format_report_table(reports, "t").splitlines()
        assert lines[2].startswith("high") and lines[3].startswith("low")

    def test_comparison_table_delegates(self):
        outcome = tiny_outcome()
        assert format_comparison_table(outcome, title="golden title") \
            == GOLDEN_REPORT_TABLE

    def test_comparison_table_default_title(self):
        table = format_comparison_table(tiny_outcome())
        assert table.splitlines()[0] == "cifar10 (2, 20)"

    def test_report_round_trips_through_dict(self):
        report = fairness_report([0.25, 0.5, 1.0])
        assert FairnessReport.from_dict(report.as_dict()) == report


class TestFormatAblationTable:
    def test_golden_string(self):
        rows = [
            {"ln": False, "lp": False,
             "results": {"b-method": (0.5467, 0.0123), "a-method": (0.3, 0.05)}},
            {"ln": True, "lp": True,
             "results": {"b-method": (0.8916, 0.001), "a-method": (0.4, 0.0)}},
        ]
        assert format_ablation_table(rows) == GOLDEN_ABLATION_TABLE

    def test_variant_columns_sorted_by_name(self):
        rows = [{"ln": False, "lp": False, "results": {"zz": (0.1, 0.0),
                                                       "aa": (0.2, 0.0)}}]
        header = format_ablation_table(rows).splitlines()[1]
        assert header.index("aa") < header.index("zz")

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            format_ablation_table([])

    def test_custom_title(self):
        rows = [{"ln": True, "lp": False, "results": {"m": (0.5, 0.1)}}]
        assert format_ablation_table(rows, title="T [seed 3]").splitlines()[0] \
            == "T [seed 3]"


class TestFormatSeriesCsv:
    def test_golden_string(self):
        csv = format_series_csv(tiny_outcome())
        assert csv == ("method,mean_accuracy,accuracy_variance\n"
                       "alpha,0.750000,0.06250000\n"
                       "beta,0.500000,0.00000000")
