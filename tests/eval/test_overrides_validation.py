"""Unknown-key rejection with did-you-mean hints.

``FederatedConfig.with_overrides`` and ``build_method`` sit at the front
of every sweep grid; a typo'd knob must fail at declaration instead of
passing silently into ``**overrides``.
"""

import numpy as np
import pytest

from repro.eval import available_methods, build_method, valid_overrides
from repro.fl import FederatedConfig
from repro.nn import MLPEncoder


def encoder_factory():
    return MLPEncoder(192, hidden_dims=(8,), rng=np.random.default_rng(0))


CONFIG = FederatedConfig(num_clients=4, clients_per_round=2, rounds=1)


class TestConfigOverrides:
    def test_valid_overrides_still_work(self):
        assert CONFIG.with_overrides(rounds=7).rounds == 7

    def test_unknown_key_raises_with_suggestion(self):
        with pytest.raises(ValueError, match=r"raunds.*did you mean 'rounds'"):
            CONFIG.with_overrides(raunds=5)

    def test_unknown_key_without_close_match_lists_valid_names(self):
        with pytest.raises(ValueError, match="valid names"):
            CONFIG.with_overrides(zzz_not_a_knob=1)

    def test_multiple_unknown_keys_all_reported(self):
        with pytest.raises(ValueError, match=r"(?s)raunds.*seeed"):
            CONFIG.with_overrides(raunds=5, seeed=1)


class TestBuildMethodOverrides:
    def test_typo_raises_with_suggestion(self):
        with pytest.raises(TypeError, match=r"num_prototipes.*did you mean "
                                            r"'num_prototypes'"):
            build_method("calibre-simclr", CONFIG, 10, encoder_factory,
                         num_prototipes=3)

    def test_parent_class_kwargs_are_valid(self):
        # Calibre forwards **kwargs to PFLSSL: its parent's knobs count.
        algorithm = build_method("calibre-simclr", CONFIG, 10, encoder_factory,
                                 persist_local_state=False, num_prototypes=3)
        assert algorithm.persist_local_state is False

    def test_unrelated_parent_knob_rejected_for_non_forwarding_class(self):
        # Scaffold's __init__ has no **kwargs beyond SupervisedFL's names;
        # a Calibre-only knob must not leak into it.
        with pytest.raises(TypeError, match="num_prototypes"):
            build_method("scaffold", CONFIG, 10, encoder_factory,
                         num_prototypes=3)

    def test_every_registered_method_exposes_valid_overrides(self):
        for name in available_methods():
            names = valid_overrides(name)
            assert names, name
            assert not {"self", "config", "num_classes",
                        "encoder_factory"} & names

    def test_unknown_method_still_raises_keyerror(self):
        with pytest.raises(KeyError, match="nope"):
            valid_overrides("nope")

    def test_builder_fixed_keys_rejected_up_front(self):
        # The registry name pins ssl_name/convergent; passing them must be
        # rejected here, not die as a duplicate-keyword TypeError inside
        # the constructor.
        assert "ssl_name" not in valid_overrides("pfl-simclr")
        with pytest.raises(TypeError, match="ssl_name"):
            build_method("pfl-simclr", CONFIG, 10, encoder_factory,
                         ssl_name="byol")
        with pytest.raises(TypeError, match="convergent"):
            build_method("script-fair", CONFIG, 10, encoder_factory,
                         convergent=True)

    def test_supervised_defaults_stay_overridable(self):
        # _supervised's fixed kwargs are defaults (overrides merge over
        # them), so fine_tune_head remains a valid knob.
        algorithm = build_method("fedavg", CONFIG, 10, encoder_factory,
                                 fine_tune_head=True)
        assert algorithm.fine_tune_head is True
