"""Tracer mechanics: nesting, counters, ambient activation, fragments."""

import copy
import pickle

from repro.telemetry import (
    InstrumentedTask,
    TaskOutcome,
    TelemetryFragment,
    Tracer,
    count,
    current_tracer,
    gauge,
)


class FakeClock:
    """Deterministic clock: each call returns the previous value + step."""

    def __init__(self, step=1.0):
        self.value = 0.0
        self.step = step

    def __call__(self):
        current = self.value
        self.value += self.step
        return current


def traced_pair():
    """A tracer holding one 'outer' span containing one 'inner' span."""
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer", algorithm="fedavg"):
        with tracer.span("inner", category="client", round=0):
            pass
    return tracer


class TestSpanNesting:
    def test_parent_ids_follow_the_stack(self):
        tracer = traced_pair()
        outer, inner = tracer.spans
        assert outer.name == "outer" and outer.parent_id is None
        assert inner.name == "inner" and inner.parent_id == outer.span_id

    def test_durations_come_from_the_injected_clock(self):
        # FakeClock ticks: epoch=0, outer start=1, inner start=2,
        # inner close=3, outer close=4.
        tracer = traced_pair()
        outer, inner = tracer.spans
        assert (outer.start, outer.duration) == (1.0, 3.0)
        assert (inner.start, inner.duration) == (2.0, 1.0)
        assert inner.end == 3.0

    def test_attrs_and_categories_are_recorded(self):
        outer, inner = traced_pair().spans
        assert outer.attrs == {"algorithm": "fedavg"}
        assert (inner.category, inner.attrs) == ("client", {"round": 0})

    def test_current_span_tracks_the_innermost_open_span(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current_span is None
        with tracer.span("outer") as outer:
            assert tracer.current_span is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None

    def test_siblings_share_a_parent_and_get_distinct_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round") as parent:
            with tracer.span("sample"):
                pass
            with tracer.span("dispatch"):
                pass
        names = {span.name: span for span in tracer.spans}
        assert names["sample"].parent_id == parent.span_id
        assert names["dispatch"].parent_id == parent.span_id
        assert len({span.span_id for span in tracer.spans}) == 3


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("hits")
        tracer.count("hits", 2)
        tracer.count("bytes", 100.5)
        assert tracer.counters == {"hits": 3.0, "bytes": 100.5}

    def test_gauges_last_write_wins(self):
        tracer = Tracer(clock=FakeClock())
        tracer.gauge("utilization", 0.25)
        tracer.gauge("utilization", 0.75)
        assert tracer.gauges == {"utilization": 0.75}


class TestAmbientTracer:
    def test_module_level_count_is_a_noop_when_inactive(self):
        assert current_tracer() is None
        count("orphan")  # must not raise, must not leak anywhere
        gauge("orphan", 1.0)

    def test_activation_routes_module_level_counts(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.activate():
            assert current_tracer() is tracer
            count("shm.segment_bytes", 64)
            gauge("depth", 3)
        assert current_tracer() is None
        assert tracer.counters == {"shm.segment_bytes": 64.0}
        assert tracer.gauges == {"depth": 3.0}

    def test_inner_activation_shadows_the_outer(self):
        outer, inner = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
        with outer.activate():
            with inner.activate():
                count("seen")
            count("seen")
        assert inner.counters == {"seen": 1.0}
        assert outer.counters == {"seen": 1.0}


class TestFragments:
    def worker_fragment(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("client_update", category="client", client_id=7):
            pass
        worker.count("trace.cache_hits", 4)
        worker.gauge("loss", 0.5)
        return worker.fragment()

    def test_fragment_extent_covers_the_latest_span_end(self):
        fragment = self.worker_fragment()
        assert fragment.extent == fragment.spans[0].end

    def test_fragment_pickle_round_trip(self):
        fragment = self.worker_fragment()
        clone = pickle.loads(pickle.dumps(fragment))
        assert isinstance(clone, TelemetryFragment)
        assert clone.counters == fragment.counters
        assert clone.gauges == fragment.gauges
        assert clone.pid == fragment.pid
        assert [vars(span) for span in clone.spans] \
            == [vars(span) for span in fragment.spans]

    def test_merge_reparents_offsets_and_retids(self):
        coordinator = Tracer(clock=FakeClock())
        fragment = self.worker_fragment()
        with coordinator.span("dispatch") as dispatch:
            merged = coordinator.merge_fragment(fragment)
        (span,) = merged
        assert span.parent_id == dispatch.span_id
        assert span.span_id not in {s.span_id for s in fragment.spans}
        # End-aligned: the fragment's extent lands at the merge instant.
        merge_instant = 2.0  # clock ticks: epoch=0, dispatch start=1, merge=2
        assert span.end == merge_instant
        assert span.duration == fragment.spans[0].duration
        assert span.tid == 1 and dispatch.tid == 0

    def test_merge_keeps_internal_parent_links(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("client_update"):
            with worker.span("local_epoch"):
                pass
        coordinator = Tracer(clock=FakeClock())
        with coordinator.span("dispatch"):
            merged = coordinator.merge_fragment(worker.fragment())
        by_name = {span.name: span for span in merged}
        assert by_name["local_epoch"].parent_id \
            == by_name["client_update"].span_id
        assert by_name["local_epoch"].tid == by_name["client_update"].tid

    def test_each_merged_fragment_gets_a_fresh_tid(self):
        coordinator = Tracer(clock=FakeClock())
        first = coordinator.merge_fragment(self.worker_fragment())
        second = coordinator.merge_fragment(self.worker_fragment())
        assert first[0].tid != second[0].tid

    def test_merge_accumulates_counters_and_overwrites_gauges(self):
        coordinator = Tracer(clock=FakeClock())
        coordinator.count("trace.cache_hits", 1)
        coordinator.merge_fragment(self.worker_fragment())
        coordinator.merge_fragment(self.worker_fragment())
        assert coordinator.counters == {"trace.cache_hits": 9.0}
        assert coordinator.gauges == {"loss": 0.5}


def double(item):
    return item * 2


def describe(item):
    return {"client_id": item}


class TestInstrumentedTask:
    def test_boxes_result_with_a_described_span(self):
        task = InstrumentedTask(double, "client_update", describe=describe)
        outcome = task(21)
        assert isinstance(outcome, TaskOutcome)
        assert outcome.result == 42
        (span,) = outcome.telemetry.spans
        assert span.name == "client_update"
        assert span.category == "client"
        assert span.attrs == {"client_id": 21}

    def test_task_tracer_is_ambient_while_the_task_runs(self):
        def task_with_counts(item):
            count("inner.calls")
            return item

        outcome = InstrumentedTask(task_with_counts, "client_update")(1)
        assert outcome.telemetry.counters == {"inner.calls": 1.0}
        assert current_tracer() is None

    def test_wrapper_survives_pickle_and_deepcopy(self):
        task = InstrumentedTask(double, "client_update", describe=describe)
        for clone in (pickle.loads(pickle.dumps(task)), copy.deepcopy(task)):
            outcome = clone(3)
            assert outcome.result == 6
            assert outcome.telemetry.spans[0].attrs == {"client_id": 3}
