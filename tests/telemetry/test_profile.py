"""Profile aggregation: phases, straggler spread, workers, rendering."""

import json

from repro.telemetry import (
    load_store_telemetry,
    parse_sidecar,
    profile_cell,
    render_profile,
)


def span_line(span_id, name, start, dur, parent=None, tid=0, **attrs):
    payload = {"kind": "span", "id": span_id, "name": name, "cat": "phase",
               "start_s": start, "dur_s": dur, "pid": 99, "tid": tid}
    if parent is not None:
        payload["parent"] = parent
    if attrs:
        payload["attrs"] = attrs
    return json.dumps(payload)


def two_round_sidecar():
    """cell > 2 rounds; client_update durations 1,2,5 then 2,2,2."""
    lines = [
        json.dumps({"kind": "meta", "schema": 1, "fingerprint": "f" * 16,
                    "label": "cifar10 fedavg seed=0"}),
        span_line(1, "cell", 0.0, 20.0, fingerprint="f" * 16),
        span_line(2, "round", 0.0, 9.0, parent=1, round=0),
        span_line(3, "dispatch", 1.0, 8.0, parent=2, participants=3),
        # round attr is inherited from the ancestor chain, not repeated.
        span_line(4, "client_update", 1.0, 1.0, parent=3, tid=1, client_id=0),
        span_line(5, "client_update", 1.0, 2.0, parent=3, tid=2, client_id=1),
        span_line(6, "client_update", 1.0, 5.0, parent=3, tid=3, client_id=2),
        span_line(7, "round", 9.0, 7.0, parent=1, round=1),
        span_line(8, "dispatch", 10.0, 6.0, parent=7, participants=3),
        span_line(9, "client_update", 10.0, 2.0, parent=8, tid=1,
                  client_id=0),
        span_line(10, "client_update", 10.0, 2.0, parent=8, tid=2,
                  client_id=1),
        span_line(11, "client_update", 10.0, 2.0, parent=8, tid=3,
                  client_id=2),
        json.dumps({"kind": "counter", "name": "trace.replays", "value": 2}),
    ]
    return "".join(line + "\n" for line in lines)


class TestCellProfile:
    def profile(self):
        return profile_cell("f" * 16, parse_sidecar(two_round_sidecar()))

    def test_cell_duration_and_round_count(self):
        profile = self.profile()
        assert profile.cell_duration_s == 20.0
        assert profile.rounds == 2

    def test_phase_totals(self):
        dispatch = self.profile().phases["dispatch"]
        assert (dispatch.count, dispatch.total_s) == (2, 14.0)
        assert dispatch.mean_s == 7.0
        assert dispatch.max_s == 8.0

    def test_client_stats_distribution(self):
        clients = self.profile().clients["client_update"]
        assert clients.count == 6
        assert clients.total_s == 14.0
        assert clients.median_s == 2.0
        assert clients.max_s == 5.0

    def test_straggler_spread_is_the_mean_round_tail(self):
        # Round 0: max 5 - median 2 = 3.  Round 1: all equal, spread 0.
        clients = self.profile().clients["client_update"]
        assert clients.straggler_spread_s == 1.5

    def test_round_attr_resolves_through_the_ancestor_chain(self):
        clients = self.profile().clients["client_update"]
        assert sorted(clients.durations_by_round) == [0, 1]
        assert sorted(clients.durations_by_round[0]) == [1.0, 2.0, 5.0]
        assert clients.unrounded == []

    def test_worker_busy_time_is_keyed_by_pid_tid(self):
        busy = self.profile().worker_busy_s
        assert busy == {(99, 1): 3.0, (99, 2): 4.0, (99, 3): 7.0}


class TestRenderProfile:
    def test_report_contains_every_section(self):
        report = render_profile(
            [("f" * 16, parse_sidecar(two_round_sidecar()))])
        assert "cell ffffffffffff" in report
        assert "[cifar10 fedavg seed=0]" in report
        assert "rounds=2" in report
        assert "dispatch" in report
        assert "straggler_spread=" in report
        assert "worker pid=99 tid=3" in report
        assert "counter trace.replays" in report
        assert "counter totals across cells" in report

    def test_top_limits_the_worker_rows(self):
        report = render_profile(
            [("f" * 16, parse_sidecar(two_round_sidecar()))], top=1)
        assert report.count("worker pid=") == 1
        assert "worker pid=99 tid=3" in report  # the busiest one

    def test_empty_store_renders_a_hint(self):
        assert "no telemetry sidecars" in render_profile([])


class TestLoadStoreTelemetry:
    def test_loads_sorted_sidecars(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        telemetry_dir.mkdir()
        (telemetry_dir / "bbb.jsonl").write_text(two_round_sidecar())
        (telemetry_dir / "aaa.jsonl").write_text(two_round_sidecar())
        (telemetry_dir / "notes.txt").write_text("ignored")
        cells = load_store_telemetry(str(tmp_path))
        assert [fingerprint for fingerprint, _ in cells] == ["aaa", "bbb"]
        assert cells[0][1].counters == {"trace.replays": 2.0}

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_store_telemetry(str(tmp_path)) == []
