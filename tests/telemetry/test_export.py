"""Sidecar jsonl round-trips and Chrome trace-event export/validation."""

import json

from repro.telemetry import (
    TELEMETRY_SCHEMA,
    Tracer,
    chrome_trace,
    chrome_trace_from_cells,
    iter_counter_totals,
    parse_sidecar,
    sidecar_lines,
    validate_chrome_trace,
)

from .test_spans import FakeClock


def cell_tracer():
    """A small deterministic timeline: cell > round > dispatch."""
    tracer = Tracer(clock=FakeClock())
    with tracer.span("cell", fingerprint="abc", seed=0):
        with tracer.span("round", round=0):
            with tracer.span("dispatch", participants=4):
                pass
    tracer.count("trace.replays", 2)
    tracer.gauge("loss", 0.125)
    return tracer


class TestSidecarRoundTrip:
    def test_meta_header_carries_schema_and_extras(self):
        text = sidecar_lines(cell_tracer(), meta={"fingerprint": "abc",
                                                  "resumed": False})
        cell = parse_sidecar(text)
        assert cell.meta["schema"] == TELEMETRY_SCHEMA
        assert cell.meta["fingerprint"] == "abc"
        assert cell.meta["resumed"] is False

    def test_spans_round_trip_exactly(self):
        tracer = cell_tracer()
        cell = parse_sidecar(sidecar_lines(tracer))
        assert [vars(span) for span in cell.spans] \
            == [vars(span) for span in tracer.spans]

    def test_totals_round_trip(self):
        cell = parse_sidecar(sidecar_lines(cell_tracer()))
        assert cell.counters == {"trace.replays": 2.0}
        assert cell.gauges == {"loss": 0.125}

    def test_every_line_is_one_json_object(self):
        for line in sidecar_lines(cell_tracer()).splitlines():
            assert isinstance(json.loads(line), dict)

    def test_unknown_kind_lines_are_skipped(self):
        text = sidecar_lines(cell_tracer()) \
            + '{"kind": "hologram", "x": 1}\n'
        cell = parse_sidecar(text)
        assert len(cell.spans) == 3

    def test_spans_named_and_span_index(self):
        cell = parse_sidecar(sidecar_lines(cell_tracer()))
        (round_span,) = cell.spans_named("round")
        assert round_span.attrs == {"round": 0}
        assert cell.span_index()[round_span.span_id] is round_span


class TestChromeTrace:
    def test_golden_trace_json(self):
        # FakeClock ticks: epoch=0; starts at 1,2,3; closes at 4,5,6.
        tracer = cell_tracer()
        pid = tracer.pid
        assert chrome_trace(tracer, process_name="unit") == {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "ts": 0, "pid": pid,
                 "tid": 0, "args": {"name": "unit"}},
                {"name": "thread_name", "ph": "M", "ts": 0, "pid": pid,
                 "tid": 0, "args": {"name": "coordinator"}},
                {"name": "cell", "cat": "phase", "ph": "X", "ts": 1_000_000,
                 "dur": 5_000_000, "pid": pid, "tid": 0,
                 "args": {"fingerprint": "abc", "seed": 0}},
                {"name": "round", "cat": "phase", "ph": "X", "ts": 2_000_000,
                 "dur": 3_000_000, "pid": pid, "tid": 0,
                 "args": {"round": 0}},
                {"name": "dispatch", "cat": "phase", "ph": "X",
                 "ts": 3_000_000, "dur": 1_000_000, "pid": pid, "tid": 0,
                 "args": {"participants": 4}},
                {"name": "trace.replays", "cat": "counter", "ph": "C",
                 "ts": 6_000_000, "pid": pid, "tid": 0,
                 "args": {"trace.replays": 2.0}},
            ],
            "displayTimeUnit": "ms",
        }

    def test_own_output_validates_clean(self):
        assert validate_chrome_trace(chrome_trace(cell_tracer())) == []

    def test_combined_cells_get_synthetic_process_rows(self):
        cells = [("aaa fedavg", parse_sidecar(sidecar_lines(cell_tracer()))),
                 ("bbb calibre", parse_sidecar(sidecar_lines(cell_tracer())))]
        payload = chrome_trace_from_cells(cells)
        assert validate_chrome_trace(payload) == []
        labels = {event["pid"]: event["args"]["name"]
                  for event in payload["traceEvents"]
                  if event.get("name") == "process_name"}
        assert labels == {1: "aaa fedavg", 2: "bbb calibre"}
        assert all(event["pid"] in (1, 2)
                   for event in payload["traceEvents"])


class TestValidateChromeTrace:
    def test_rejects_non_object_payloads(self):
        assert validate_chrome_trace([]) \
            == ["trace must be a JSON object, got list"]
        assert validate_chrome_trace({"events": []}) \
            == ["trace is missing its 'traceEvents' list"]

    def test_flags_empty_event_lists(self):
        assert validate_chrome_trace({"traceEvents": []}) \
            == ["'traceEvents' is empty"]

    def test_flags_unknown_phases_and_missing_fields(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0},
            {"name": "y", "ph": "X", "ts": 0, "pid": 1, "tid": 0},
        ]})
        assert any("unknown or missing ph 'B'" in p for p in problems)
        assert any("missing 'dur'" in p for p in problems)

    def test_flags_non_integer_and_negative_timestamps(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 1.5, "dur": -2,
             "pid": 1, "tid": 0},
        ]})
        assert any("'ts' must be a non-negative integer" in p
                   for p in problems)
        assert any("'dur' must be a non-negative integer" in p
                   for p in problems)

    def test_flags_non_numeric_counter_args(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"name": "c", "ph": "C", "ts": 0, "pid": 1,
             "args": {"c": "fast"}},
        ]})
        assert problems == [
            "traceEvents[0]: counter args must map names to numbers"]


class TestCounterTotals:
    def test_totals_sum_across_cells(self):
        cells = [parse_sidecar(sidecar_lines(cell_tracer())),
                 parse_sidecar(sidecar_lines(cell_tracer()))]
        assert iter_counter_totals(cells) == {"trace.replays": 4.0}
