"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

TINY_SWEEP_ARGS = [
    "--exp", "fig3", "--panel", "0", "--methods", "script-fair", "fedavg",
    "--rounds", "1", "--clients", "4", "--samples", "20",
]


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_accepts_repeated_methods(self):
        args = build_parser().parse_args(
            ["run", "--method", "fedavg", "--method", "script-fair"]
        )
        assert args.method == ["fedavg", "script-fair"]

    def test_fig3_panel_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--panel", "9"])


class TestMain:
    def test_list_prints_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "calibre-simclr" in out
        assert "fig3 panels:" in out

    def test_run_rejects_unknown_method(self, capsys):
        assert main(["run", "--method", "bogus"]) == 2

    def test_run_tiny_experiment(self, capsys):
        code = main([
            "run", "--method", "script-fair", "--dataset", "cifar10",
            "--setting", "dirichlet", "--param", "0.5", "--samples", "20",
            "--rounds", "1", "--clients", "4", "--seed", "0",
            "--csv",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "script-fair" in out
        assert "method,mean_accuracy,accuracy_variance" in out

    def test_run_out_persists_outcome(self, capsys, tmp_path):
        out_path = tmp_path / "outcome.json"
        code = main([
            "run", "--method", "script-fair", "--setting", "dirichlet",
            "--param", "0.5", "--samples", "20", "--rounds", "1",
            "--clients", "4", "--out", str(out_path),
        ])
        assert code == 0
        assert f"wrote {out_path}" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert set(payload["results"]) == {"script-fair"}
        from repro.runs import load_outcome

        outcome = load_outcome(out_path)
        assert outcome.reports["script-fair"].num_clients == 4


class TestSweepCommands:
    def test_interrupted_sweep_resumes_and_reports(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "store")
        base = ["--runs-dir", runs_dir] + TINY_SWEEP_ARGS

        # "kill" after one cell via the cell budget, then relaunch
        assert main(["sweep", "--quiet", "--max-cells", "1"] + base) == 0
        first = capsys.readouterr().out
        assert "executed=1 skipped=0 deferred=1 total=2" in first

        assert main(["sweep", "--quiet"] + base) == 0
        second = capsys.readouterr().out
        assert "executed=1 skipped=1 deferred=0 total=2" in second

        assert main(["sweep", "--quiet"] + base) == 0
        third = capsys.readouterr().out
        assert "executed=0 skipped=2 deferred=0 total=2" in third

        # the report renders purely from the store
        assert main(["report", "--csv"] + base) == 0
        report = capsys.readouterr().out
        assert "script-fair" in report and "fedavg" in report
        assert "method,mean_accuracy,accuracy_variance" in report

    def test_report_names_missing_cells(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "empty")
        assert main(["sweep", "--quiet", "--max-cells", "0",
                     "--runs-dir", runs_dir] + TINY_SWEEP_ARGS) == 0
        capsys.readouterr()
        assert main(["report", "--runs-dir", runs_dir] + TINY_SWEEP_ARGS) == 1
        err = capsys.readouterr().err
        assert "2 of 2 cells missing" in err
        assert "script-fair" in err

    def test_report_requires_existing_store(self, capsys, tmp_path):
        code = main(["report", "--runs-dir", str(tmp_path / "nope")]
                    + TINY_SWEEP_ARGS)
        assert code == 1
        assert "no run store" in capsys.readouterr().err

    def test_sweep_rejects_unknown_methods(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--runs-dir", str(tmp_path), "--exp", "fig3",
                  "--methods", "bogus"])

    def test_report_across_seeds_and_timings(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "store")
        base = ["--runs-dir", runs_dir, "--seeds", "0", "1"] + TINY_SWEEP_ARGS
        assert main(["sweep", "--quiet", "--round-checkpoints"] + base) == 0
        capsys.readouterr()

        assert main(["report", "--across-seeds", "--timings"] + base) == 0
        out = capsys.readouterr().out
        assert "[across seeds 0 1]" in out
        # One aggregated table row, not one table per seed (the other two
        # mentions are the per-seed timing rows).
        assert out.count("script-fair") == 3
        assert "±std" in out
        assert "cell timings" in out
        assert "s/cell" in out

        # Aggregation is a pure store read: byte-stable across invocations.
        assert main(["report", "--across-seeds"] + base) == 0
        first = capsys.readouterr().out
        assert main(["report", "--across-seeds"] + base) == 0
        assert capsys.readouterr().out == first

    def test_run_resume_requires_checkpoints(self, capsys):
        assert main(["run", "--method", "script-fair", "--resume"]) == 2
        assert "--resume requires --checkpoints" in capsys.readouterr().err

    def test_run_checkpoint_and_resume_round_trip(self, capsys, tmp_path):
        checkpoints = str(tmp_path / "ckpts")
        base = ["run", "--method", "fedavg", "--setting", "dirichlet",
                "--param", "0.5", "--samples", "20", "--rounds", "2",
                "--clients", "4", "--checkpoints", checkpoints]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "[resume] fedavg at round 2/2" in second
        # The resumed run skips training but lands on the same table.
        assert first.splitlines()[-1] == second.splitlines()[-1]


TINY_FIGURE_ARGS = [
    "--methods", "script-fair", "--rounds", "1", "--clients", "4",
    "--samples", "20", "--embed-clients", "3", "--embed-samples", "8",
    "--tsne-iterations", "30",
]


class TestFiguresCommands:
    def test_figures_requires_known_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "fig9", "--store", "x"])

    def test_grid_is_an_exp_alias(self):
        args = build_parser().parse_args(
            ["sweep", "--grid", "fig1", "--runs-dir", "x"])
        assert args.exp == "fig1"

    def test_store_is_a_runs_dir_alias(self):
        args = build_parser().parse_args(
            ["figures", "fig5", "--store", "somewhere"])
        assert args.runs_dir == "somewhere"

    def test_figure_sweep_then_render_from_store(self, capsys, tmp_path):
        from xml.etree import ElementTree

        runs_dir = str(tmp_path / "store")
        out_path = tmp_path / "fig1.svg"
        base = ["--runs-dir", runs_dir] + TINY_FIGURE_ARGS

        assert main(["sweep", "--quiet", "--grid", "fig1"] + base) == 0
        sweep_out = capsys.readouterr().out
        assert "executed=1" in sweep_out
        assert "repro figures fig1" in sweep_out  # the render hint

        assert main(["figures", "fig1", "--out", str(out_path)] + base) == 0
        render_out = capsys.readouterr().out
        assert "fig1 silhouettes" in render_out
        assert f"wrote {out_path}" in render_out
        svg = out_path.read_text()
        ElementTree.fromstring(svg)  # well-formed
        assert "script-fair" in svg

        # Rendering is a pure store read: byte-stable across invocations.
        assert main(["figures", "fig1", "--out", str(out_path)] + base) == 0
        capsys.readouterr()
        assert out_path.read_text() == svg

        # fig2 renders from the very same records (per-client views).
        fig2_path = tmp_path / "fig2.svg"
        assert main(["figures", "fig2", "--out", str(fig2_path)] + base) == 0
        capsys.readouterr()
        ElementTree.fromstring(fig2_path.read_text())

        # and the report renders the silhouette table from the store.
        assert main(["report", "--grid", "fig1"] + base) == 0
        report = capsys.readouterr().out
        assert "tsne_sil" in report and "script-fair" in report

    def test_figures_names_missing_cells(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "empty")
        assert main(["sweep", "--quiet", "--grid", "fig1", "--max-cells", "0",
                     "--runs-dir", runs_dir] + TINY_FIGURE_ARGS) == 0
        capsys.readouterr()
        assert main(["figures", "fig1", "--runs-dir", runs_dir]
                    + TINY_FIGURE_ARGS) == 1
        err = capsys.readouterr().err
        assert "1 of 1 cells missing" in err
        assert "script-fair" in err

    def test_figures_requires_existing_store(self, capsys, tmp_path):
        code = main(["figures", "fig1", "--store", str(tmp_path / "nope")]
                    + TINY_FIGURE_ARGS)
        assert code == 1
        assert "no run store" in capsys.readouterr().err

    def test_fig3_figure_renders_accuracy_fairness(self, capsys, tmp_path):
        from xml.etree import ElementTree

        runs_dir = str(tmp_path / "store")
        out_path = tmp_path / "fig3.svg"
        base = ["--runs-dir", runs_dir] + TINY_SWEEP_ARGS
        assert main(["sweep", "--quiet"] + base) == 0
        capsys.readouterr()
        assert main(["figures", "fig3", "--panel", "0", "--out", str(out_path),
                     "--runs-dir", runs_dir] + TINY_SWEEP_ARGS[2:]) == 0
        capsys.readouterr()
        svg = out_path.read_text()
        ElementTree.fromstring(svg)
        assert "mean accuracy" in svg
        assert "script-fair" in svg and "fedavg" in svg

    def test_figures_follows_the_sweep_hint_for_nonzero_seeds(self, capsys,
                                                              tmp_path):
        # The sweep hint echoes --seeds 1; the hinted figures command must
        # find the records without an explicit --seed (regression: --seed's
        # old default of 0 silently clobbered the grid's seed axis).
        runs_dir = str(tmp_path / "store")
        base = ["--runs-dir", runs_dir, "--seeds", "1"] + TINY_FIGURE_ARGS
        assert main(["sweep", "--quiet", "--grid", "fig1"] + base) == 0
        capsys.readouterr()
        out_path = tmp_path / "fig1.svg"
        assert main(["figures", "fig1", "--out", str(out_path)] + base) == 0
        capsys.readouterr()
        assert out_path.is_file()
        # --seed alone (grid seeds left at default) follows the seed too
        assert main(["figures", "fig1", "--seed", "1", "--out", str(out_path),
                     "--runs-dir", runs_dir] + TINY_FIGURE_ARGS) == 0
        capsys.readouterr()
        # a contradictory --seed fails loudly instead of looking up the
        # wrong fingerprints
        assert main(["figures", "fig1", "--seed", "2"] + base) == 2
        assert "not in the swept grid" in capsys.readouterr().err
        # several seeds without a pick is ambiguous
        assert main(["figures", "fig1", "--runs-dir", runs_dir, "--seeds",
                     "0", "1"] + TINY_FIGURE_ARGS) == 2
        assert "pick one" in capsys.readouterr().err
