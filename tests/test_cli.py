"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_run_accepts_repeated_methods(self):
        args = build_parser().parse_args(
            ["run", "--method", "fedavg", "--method", "script-fair"]
        )
        assert args.method == ["fedavg", "script-fair"]

    def test_fig3_panel_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig3", "--panel", "9"])


class TestMain:
    def test_list_prints_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "calibre-simclr" in out
        assert "fig3 panels:" in out

    def test_run_rejects_unknown_method(self, capsys):
        assert main(["run", "--method", "bogus"]) == 2

    def test_run_tiny_experiment(self, capsys):
        code = main([
            "run", "--method", "script-fair", "--dataset", "cifar10",
            "--setting", "dirichlet", "--param", "0.5", "--samples", "20",
            "--rounds", "1", "--clients", "4", "--seed", "0",
            "--csv",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "script-fair" in out
        assert "method,mean_accuracy,accuracy_variance" in out
