"""KMeans clustering with k-means++ seeding.

Calibre's prototype generation (paper §IV-B, Algorithm 1 line 13) clusters a
batch of encodings with KMeans to produce pseudo-labels; the per-cluster
means become the prototypes.  sklearn is unavailable offline, so this is a
self-contained numpy implementation with the features the algorithm needs:

* k-means++ initialization for stable prototypes on small batches;
* empty-cluster reseeding (tiny SSL batches often under-fill clusters);
* deterministic behaviour under an explicit RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["KMeansResult", "kmeans_plus_plus_init", "kmeans", "KMeans"]


@dataclass
class KMeansResult:
    """Outcome of a KMeans run."""

    centers: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float  # sum of squared distances to assigned centers
    iterations: int
    converged: bool


def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances."""
    p_sq = (points**2).sum(axis=1, keepdims=True)
    c_sq = (centers**2).sum(axis=1)
    cross = points @ centers.T
    return np.maximum(p_sq + c_sq - 2.0 * cross, 0.0)


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=points.dtype)
    first = rng.integers(0, n)
    centers[0] = points[first]
    closest = _squared_distances(points, centers[:1]).ravel()
    for j in range(1, k):
        total = closest.sum()
        if total <= 1e-12:
            # All points coincide with chosen centers; fill with random picks.
            centers[j] = points[rng.integers(0, n)]
            continue
        probabilities = closest / total
        choice = rng.choice(n, p=probabilities)
        centers[j] = points[choice]
        new_dist = _squared_distances(points, centers[j : j + 1]).ravel()
        closest = np.minimum(closest, new_dist)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    init: str = "k-means++",
) -> KMeansResult:
    """Lloyd's algorithm.

    ``k`` is clamped to the number of distinct points if necessary; callers
    (prototype generation on small batches) rely on that behaviour instead
    of crashing mid-training.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got {points.shape}")
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty point set")
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, n)
    rng = rng if rng is not None else np.random.default_rng()

    if init == "k-means++":
        centers = kmeans_plus_plus_init(points, k, rng)
    elif init == "random":
        centers = points[rng.choice(n, size=k, replace=False)].copy()
    else:
        raise ValueError(f"unknown init '{init}'")

    labels = np.zeros(n, dtype=np.int64)
    converged = False
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        distances = _squared_distances(points, centers)
        labels = distances.argmin(axis=1)
        new_centers = centers.copy()
        for j in range(k):
            members = points[labels == j]
            if members.shape[0] == 0:
                # Reseed an empty cluster at the point farthest from its center.
                farthest = distances.min(axis=1).argmax()
                new_centers[j] = points[farthest]
            else:
                new_centers[j] = members.mean(axis=0)
        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if shift < tolerance:
            converged = True
            break
    distances = _squared_distances(points, centers)
    labels = distances.argmin(axis=1)
    inertia = float(distances[np.arange(n), labels].sum())
    return KMeansResult(centers=centers, labels=labels, inertia=inertia,
                        iterations=iterations, converged=converged)


class KMeans:
    """sklearn-like wrapper retaining fitted centers for later assignment."""

    def __init__(self, n_clusters: int, max_iterations: int = 100,
                 tolerance: float = 1e-6, seed: Optional[int] = None):
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self._rng = np.random.default_rng(seed)
        self.result: Optional[KMeansResult] = None

    def fit(self, points: np.ndarray) -> "KMeans":
        self.result = kmeans(points, self.n_clusters, rng=self._rng,
                             max_iterations=self.max_iterations, tolerance=self.tolerance)
        return self

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.result is None:
            raise RuntimeError("fit() must be called before predict()")
        return _squared_distances(np.asarray(points, dtype=np.float64),
                                  self.result.centers).argmin(axis=1)

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        return self.fit(points).result.labels

    @property
    def centers(self) -> np.ndarray:
        if self.result is None:
            raise RuntimeError("fit() must be called before reading centers")
        return self.result.centers
