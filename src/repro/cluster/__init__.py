"""``repro.cluster`` — KMeans substrate for prototype generation."""

from .kmeans import KMeans, KMeansResult, kmeans, kmeans_plus_plus_init

__all__ = ["KMeans", "KMeansResult", "kmeans", "kmeans_plus_plus_init"]
