"""Atomic filesystem primitives shared across subsystems.

Both the run store (:mod:`repro.runs`) and the session checkpoints
(:mod:`repro.fl.session`) persist JSON with the same discipline: write to
a same-directory temp file, then ``os.replace`` into place.  Readers only
ever observe a missing file or a complete one — never a torn write.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_text", "safe_filename"]


def safe_filename(name: str) -> str:
    """Filesystem-safe spelling of a label (method names, sweep names).

    The single sanitizer shared by the run store and the session
    checkpoint layout, so the two never diverge on what a given label is
    called on disk.
    """
    return "".join(ch if ch.isalnum() or ch in "._-" else "-" for ch in name)


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX and Windows, so a killed process
    never leaves a half-written file that a resume would mistake for a
    complete one.  The temp name is dot-prefixed with a ``.tmp`` suffix so
    ``*.json`` globs can never pick it up.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    # repro: allow[ATM001] -- this IS the atomic primitive; the raw write hits the temp file only
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Binary sibling of :func:`atomic_write_text`: same temp + ``os.replace``
    discipline, for payloads that are bytes (the ``.npcol`` array containers
    of :mod:`repro.arrays`).  Readers never observe a torn container — at
    worst a missing file, which every consumer treats as "not written yet".
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    # repro: allow[ATM001] -- this IS the atomic primitive; the raw write hits the temp file only
    tmp.write_bytes(data)
    os.replace(tmp, path)
    return path
