"""Fig. 4 — D-non-i.i.d. accuracy/fairness plus novel-client generalization.

The paper's second figure evaluates 150 clients (100 training + 50 novel)
under Dirichlet(0.3) label skew on CIFAR-10 and CIFAR-100.  The right-hand
column is the novel-client panel: clients that never participated download
the final global model and personalize from scratch (§V-D).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..eval.harness import ExperimentOutcome, run_experiment
from ..eval.reporting import format_comparison_table
from .settings import FIG4_PANELS, NOVEL_METHODS, SCALED_CONFIG, scaled_spec

__all__ = ["run_fig4_panel", "FIG4_PANELS"]


def run_fig4_panel(
    panel_index: int,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    num_novel_clients: int = 6,
    config=None,
    verbose: bool = False,
    **spec_overrides,
) -> ExperimentOutcome:
    """Run one Fig. 4 panel (0 = CIFAR-10, 1 = CIFAR-100), novel clients
    included — the outcome carries both the training-client and the
    novel-client series."""
    if not 0 <= panel_index < len(FIG4_PANELS):
        raise IndexError(f"panel_index must be in [0, {len(FIG4_PANELS) - 1}]")
    dataset, paper_label, setting = FIG4_PANELS[panel_index]
    if config is None:
        config = SCALED_CONFIG.with_overrides(seed=seed,
                                              num_novel_clients=num_novel_clients)
    else:
        config = config.with_overrides(num_novel_clients=num_novel_clients)
    spec = scaled_spec(
        dataset,
        setting,
        methods if methods is not None else NOVEL_METHODS,
        seed=seed,
        config=config,
        name=f"fig4-panel{panel_index} {dataset} paper:{paper_label}",
        **spec_overrides,
    )
    outcome = run_experiment(spec, verbose=verbose)
    if verbose:
        print(format_comparison_table(outcome, title=spec.name))
        if outcome.novel_reports:
            print(format_comparison_table(outcome, novel=True,
                                          title=spec.name + " [novel]"))
    return outcome
