"""Fig. 4 — D-non-i.i.d. accuracy/fairness plus novel-client generalization.

The paper's second figure evaluates 150 clients (100 training + 50 novel)
under Dirichlet(0.3) label skew on CIFAR-10 and CIFAR-100.  The right-hand
column is the novel-client panel: clients that never participated download
the final global model and personalize from scratch (§V-D).

Each panel is a sweep grid of one cell per method (novel clients included
in every cell's config), declared by :func:`fig4_sweep` and
executed/resumed through :mod:`repro.runs`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from ..eval.harness import ExperimentOutcome
from ..eval.reporting import format_comparison_table
from ..runs import SweepSpec, outcome_from_records, run_sweep
from .settings import (
    CALIBRE_OVERRIDES,
    FIG4_PANELS,
    NOVEL_METHODS,
    SCALED_CONFIG,
    SCALED_DATASET_KWARGS,
)

__all__ = ["run_fig4_panel", "fig4_sweep", "FIG4_PANELS"]


def fig4_sweep(
    panel_index: int,
    methods: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0,),
    num_novel_clients: int = 6,
    config=None,
    dataset_kwargs: Optional[Dict] = None,
    method_overrides: Optional[Dict[str, Dict]] = None,
    samples_per_client: Optional[int] = None,
    **spec_overrides,
) -> SweepSpec:
    """Declare one Fig. 4 panel's grid (0 = CIFAR-10, 1 = CIFAR-100).

    ``samples_per_client`` scales the panel's non-i.i.d. setting down
    (smoke/budget grids); it changes the cell fingerprints.
    """
    if not 0 <= panel_index < len(FIG4_PANELS):
        raise IndexError(f"panel_index must be in [0, {len(FIG4_PANELS) - 1}]")
    dataset, _paper_label, setting = FIG4_PANELS[panel_index]
    if samples_per_client is not None:
        setting = replace(setting, samples_per_client=samples_per_client)
    base_config = config if config is not None else SCALED_CONFIG
    return SweepSpec(
        name=f"fig4-panel{panel_index}",
        methods=list(methods) if methods is not None else list(NOVEL_METHODS),
        settings=[setting],
        datasets=[dataset],
        seeds=list(seeds),
        config=base_config.with_overrides(num_novel_clients=num_novel_clients),
        method_overrides={**CALIBRE_OVERRIDES, **(method_overrides or {})},
        dataset_kwargs={dataset: {**SCALED_DATASET_KWARGS[dataset],
                                  **(dataset_kwargs or {})}},
        **spec_overrides,
    )


def run_fig4_panel(
    panel_index: int,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    num_novel_clients: int = 6,
    config=None,
    verbose: bool = False,
    store=None,
    scheduler: str = "serial",
    jobs: Optional[int] = None,
    **spec_overrides,
) -> ExperimentOutcome:
    """Run one Fig. 4 panel, novel clients included — the outcome carries
    both the training-client and the novel-client series.  With ``store``
    the panel is persistent and resumable."""
    sweep = fig4_sweep(panel_index, methods=methods, seeds=(seed,),
                       num_novel_clients=num_novel_clients, config=config,
                       **spec_overrides)
    summary = run_sweep(sweep, store=store, backend=scheduler, workers=jobs,
                        verbose=verbose)
    dataset, paper_label, _setting = FIG4_PANELS[panel_index]
    spec = sweep.to_experiment_spec(
        seed=seed, name=f"fig4-panel{panel_index} {dataset} paper:{paper_label}"
    )
    outcome = outcome_from_records(spec, summary.records)
    if verbose:
        print(format_comparison_table(outcome, title=spec.name))
        if outcome.novel_reports:
            print(format_comparison_table(outcome, novel=True,
                                          title=spec.name + " [novel]"))
    return outcome
