"""Table I — ablation of Calibre's regularizers L_n and L_p.

The paper reports accuracy mean ± std on CIFAR-10 Q-non-i.i.d. (2, 500) for
Calibre over SimCLR, SwAV, and SMoG with the four on/off combinations of
L_n and L_p.  Directional findings to reproduce (§V-F):

* for Calibre (SimCLR), each regularizer helps and both together are best;
* for SwAV/SMoG — methods with built-in prototypes — L_n conflicts and can
  hurt, while L_p still reduces variance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.harness import NonIIDSetting, run_experiment
from ..eval.reporting import format_ablation_table
from .settings import scaled_spec

__all__ = ["run_table1", "TABLE1_VARIANTS", "TABLE1_TOGGLES"]

TABLE1_VARIANTS = ("calibre-simclr", "calibre-swav", "calibre-smog")
TABLE1_TOGGLES: List[Tuple[bool, bool]] = [
    (False, False),
    (True, False),
    (False, True),
    (True, True),
]


def run_table1(
    variants: Sequence[str] = TABLE1_VARIANTS,
    seed: int = 0,
    setting: Optional[NonIIDSetting] = None,
    verbose: bool = False,
    **spec_overrides,
) -> List[Dict]:
    """Regenerate Table I rows: one experiment per (L_n, L_p) toggle pair.

    Returns rows of ``{"ln": bool, "lp": bool,
    "results": {variant: (mean, std)}}`` in the paper's row order.
    """
    setting = setting if setting is not None else NonIIDSetting("quantity", 2, 50)
    rows: List[Dict] = []
    for use_ln, use_lp in TABLE1_TOGGLES:
        results: Dict[str, Tuple[float, float]] = {}
        overrides = {
            variant: {"num_prototypes": 5, "use_ln": use_ln, "use_lp": use_lp}
            for variant in variants
        }
        spec = scaled_spec(
            "cifar10",
            setting,
            list(variants),
            seed=seed,
            name=f"table1 ln={use_ln} lp={use_lp}",
            method_overrides=overrides,
            **spec_overrides,
        )
        outcome = run_experiment(spec, verbose=verbose)
        for variant in variants:
            report = outcome.reports[variant]
            results[variant] = (report.mean, report.std)
        rows.append({"ln": use_ln, "lp": use_lp, "results": results})
    if verbose:
        print(format_ablation_table(rows))
    return rows
