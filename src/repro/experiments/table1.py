"""Table I — ablation of Calibre's regularizers L_n and L_p.

The paper reports accuracy mean ± std on CIFAR-10 Q-non-i.i.d. (2, 500) for
Calibre over SimCLR, SwAV, and SMoG with the four on/off combinations of
L_n and L_p.  Directional findings to reproduce (§V-F):

* for Calibre (SimCLR), each regularizer helps and both together are best;
* for SwAV/SMoG — methods with built-in prototypes — L_n conflicts and can
  hurt, while L_p still reduces variance.

The table is a 12-cell sweep grid (3 methods x 4 toggle variants), declared
by :func:`table1_sweep` and executed/resumed through :mod:`repro.runs`;
:func:`table1_rows_from_records` regenerates the paper's rows from stored
cell records alone, so ``repro report`` reproduces the table with no
retraining.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.harness import NonIIDSetting
from ..eval.reporting import format_ablation_table
from ..runs import RunKey, SweepSpec, SweepVariant, run_sweep
from .settings import SCALED_CONFIG, SCALED_DATASET_KWARGS

__all__ = ["run_table1", "table1_sweep", "table1_rows_from_records",
           "table1_rows_across_seeds",
           "TABLE1_VARIANTS", "TABLE1_TOGGLES", "TABLE1_SETTING"]

TABLE1_VARIANTS = ("calibre-simclr", "calibre-swav", "calibre-smog")
TABLE1_TOGGLES: List[Tuple[bool, bool]] = [
    (False, False),
    (True, False),
    (False, True),
    (True, True),
]
TABLE1_SETTING = NonIIDSetting("quantity", 2, 50)


def _toggle_variant(use_ln: bool, use_lp: bool) -> SweepVariant:
    return SweepVariant(
        label=f"ln{int(use_ln)}-lp{int(use_lp)}",
        overrides={"num_prototypes": 5, "use_ln": use_ln, "use_lp": use_lp},
    )


def table1_sweep(
    variants: Sequence[str] = TABLE1_VARIANTS,
    seeds: Sequence[int] = (0,),
    setting: Optional[NonIIDSetting] = None,
    config=None,
    dataset_kwargs: Optional[Dict] = None,
    **spec_overrides,
) -> SweepSpec:
    """Declare Table I's grid: Calibre variants x (L_n, L_p) toggles."""
    setting = setting if setting is not None else TABLE1_SETTING
    return SweepSpec(
        name="table1",
        methods=list(variants),
        settings=[setting],
        datasets=["cifar10"],
        seeds=list(seeds),
        config=config if config is not None else SCALED_CONFIG,
        variants=[_toggle_variant(use_ln, use_lp)
                  for use_ln, use_lp in TABLE1_TOGGLES],
        dataset_kwargs={"cifar10": {**SCALED_DATASET_KWARGS["cifar10"],
                                    **(dataset_kwargs or {})}},
        **spec_overrides,
    )


def table1_rows_from_records(
    cells: Sequence[RunKey],
    records: Sequence[Optional[Dict]],
    variants: Sequence[str] = TABLE1_VARIANTS,
    seed: int = 0,
) -> List[Dict]:
    """Regenerate Table I rows from stored cell records (no retraining).

    Returns rows of ``{"ln": bool, "lp": bool,
    "results": {variant: (mean, std)}}`` in the paper's row order,
    regardless of the order cells completed in.
    """
    by_coordinate = {(key.seed, key.variant, key.method): record
                     for key, record in zip(cells, records)}
    rows: List[Dict] = []
    for use_ln, use_lp in TABLE1_TOGGLES:
        label = _toggle_variant(use_ln, use_lp).label
        results: Dict[str, Tuple[float, float]] = {}
        for method in variants:
            record = by_coordinate.get((seed, label, method))
            if record is None:
                raise KeyError(f"no record for cell (seed={seed}, {label}, {method}); "
                               "run the sweep to completion first")
            results[method] = (record["report"]["mean"], record["report"]["std"])
        rows.append({"ln": use_ln, "lp": use_lp, "results": results})
    return rows


def table1_rows_across_seeds(
    cells: Sequence[RunKey],
    records: Sequence[Optional[Dict]],
    variants: Sequence[str] = TABLE1_VARIANTS,
    seeds: Sequence[int] = (0,),
) -> List[Dict]:
    """Table I rows collapsed across seeds: mean ± std of per-seed means.

    Where :func:`table1_rows_from_records` renders one seed's accuracy
    mean ± std *across clients*, this renders the across-*seed* mean ±
    population std of each cell's mean accuracy (the Cali3F-style
    multi-seed presentation).  Every ``(seed, toggle, method)`` cell must
    be present.
    """
    import numpy as np

    by_coordinate = {(key.seed, key.variant, key.method): record
                     for key, record in zip(cells, records)}
    rows: List[Dict] = []
    for use_ln, use_lp in TABLE1_TOGGLES:
        label = _toggle_variant(use_ln, use_lp).label
        results: Dict[str, Tuple[float, float]] = {}
        for method in variants:
            means = []
            for seed in seeds:
                record = by_coordinate.get((seed, label, method))
                if record is None:
                    raise KeyError(
                        f"no record for cell (seed={seed}, {label}, {method}); "
                        "run the sweep over every seed first")
                means.append(record["report"]["mean"])
            means = np.asarray(means, dtype=np.float64)
            results[method] = (float(means.mean()), float(means.std()))
        rows.append({"ln": use_ln, "lp": use_lp, "results": results})
    return rows


def run_table1(
    variants: Sequence[str] = TABLE1_VARIANTS,
    seed: int = 0,
    setting: Optional[NonIIDSetting] = None,
    verbose: bool = False,
    store=None,
    scheduler: str = "serial",
    jobs: Optional[int] = None,
    **spec_overrides,
) -> List[Dict]:
    """Regenerate Table I rows: one sweep cell per (variant, L_n, L_p).

    ``store`` (a path or :class:`~repro.runs.RunStore`) makes the run
    persistent and resumable; ``scheduler``/``jobs`` pick the
    experiment-level execution backend.  Returns rows in the paper's row
    order (see :func:`table1_rows_from_records`).
    """
    sweep = table1_sweep(variants=variants, seeds=(seed,), setting=setting,
                         **spec_overrides)
    summary = run_sweep(sweep, store=store, backend=scheduler, workers=jobs,
                        verbose=verbose)
    rows = table1_rows_from_records(summary.cells, summary.records,
                                    variants=list(variants), seed=seed)
    if verbose:
        print(format_ablation_table(rows))
    return rows
