"""Fig. 3 — mean vs. variance of test accuracy across four non-i.i.d. panels.

The paper plots ~20 methods per panel on CIFAR-10 (2, 500), CIFAR-100
(5, 500), STL-10 (2, 46), and STL-10 (0.3, 80); the headline claims are
that Calibre (SimCLR) attains the best mean accuracy while staying in the
low-variance (fair) region.  :func:`run_fig3_panel` regenerates one panel's
(method, mean, variance) series at the scaled configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..eval.harness import ExperimentOutcome, run_experiment
from ..eval.reporting import format_comparison_table, format_series_csv
from .settings import COMPARISON_METHODS, FIG3_PANELS, scaled_spec

__all__ = ["run_fig3_panel", "FIG3_PANELS"]


def run_fig3_panel(
    panel_index: int,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    verbose: bool = False,
    **spec_overrides,
) -> ExperimentOutcome:
    """Run one of the four Fig. 3 panels (0-3)."""
    if not 0 <= panel_index < len(FIG3_PANELS):
        raise IndexError(f"panel_index must be in [0, {len(FIG3_PANELS) - 1}]")
    dataset, paper_label, setting = FIG3_PANELS[panel_index]
    spec = scaled_spec(
        dataset,
        setting,
        methods if methods is not None else COMPARISON_METHODS,
        seed=seed,
        name=f"fig3-panel{panel_index} {dataset} paper:{paper_label}",
        **spec_overrides,
    )
    outcome = run_experiment(spec, verbose=verbose)
    if verbose:
        print(format_comparison_table(outcome, title=spec.name))
        print(format_series_csv(outcome))
    return outcome
