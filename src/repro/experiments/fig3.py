"""Fig. 3 — mean vs. variance of test accuracy across four non-i.i.d. panels.

The paper plots ~20 methods per panel on CIFAR-10 (2, 500), CIFAR-100
(5, 500), STL-10 (2, 46), and STL-10 (0.3, 80); the headline claims are
that Calibre (SimCLR) attains the best mean accuracy while staying in the
low-variance (fair) region.

Each panel is a sweep grid of one cell per method, declared by
:func:`fig3_sweep` and executed/resumed through :mod:`repro.runs`;
:func:`run_fig3_panel` reassembles the stored cells into the familiar
:class:`~repro.eval.harness.ExperimentOutcome`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from ..eval.harness import ExperimentOutcome
from ..eval.reporting import format_comparison_table, format_series_csv
from ..runs import SweepSpec, outcome_from_records, run_sweep
from .settings import (
    CALIBRE_OVERRIDES,
    COMPARISON_METHODS,
    FIG3_PANELS,
    SCALED_CONFIG,
    SCALED_DATASET_KWARGS,
)

__all__ = ["run_fig3_panel", "fig3_sweep", "FIG3_PANELS"]


def fig3_sweep(
    panel_index: int,
    methods: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0,),
    config=None,
    dataset_kwargs: Optional[Dict] = None,
    method_overrides: Optional[Dict[str, Dict]] = None,
    samples_per_client: Optional[int] = None,
    **spec_overrides,
) -> SweepSpec:
    """Declare one Fig. 3 panel's grid: one cell per method (x seed).

    ``samples_per_client`` scales the panel's non-i.i.d. setting down
    (smoke/budget grids); like every result-changing knob it changes the
    cell fingerprints.
    """
    if not 0 <= panel_index < len(FIG3_PANELS):
        raise IndexError(f"panel_index must be in [0, {len(FIG3_PANELS) - 1}]")
    dataset, _paper_label, setting = FIG3_PANELS[panel_index]
    if samples_per_client is not None:
        setting = replace(setting, samples_per_client=samples_per_client)
    return SweepSpec(
        name=f"fig3-panel{panel_index}",
        methods=list(methods) if methods is not None else list(COMPARISON_METHODS),
        settings=[setting],
        datasets=[dataset],
        seeds=list(seeds),
        config=config if config is not None else SCALED_CONFIG,
        method_overrides={**CALIBRE_OVERRIDES, **(method_overrides or {})},
        dataset_kwargs={dataset: {**SCALED_DATASET_KWARGS[dataset],
                                  **(dataset_kwargs or {})}},
        **spec_overrides,
    )


def run_fig3_panel(
    panel_index: int,
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    verbose: bool = False,
    store=None,
    scheduler: str = "serial",
    jobs: Optional[int] = None,
    **spec_overrides,
) -> ExperimentOutcome:
    """Run one of the four Fig. 3 panels (0-3), resumably when ``store``
    is given; the outcome is reassembled from the panel's cell records."""
    sweep = fig3_sweep(panel_index, methods=methods, seeds=(seed,),
                       **spec_overrides)
    summary = run_sweep(sweep, store=store, backend=scheduler, workers=jobs,
                        verbose=verbose)
    dataset, paper_label, _setting = FIG3_PANELS[panel_index]
    spec = sweep.to_experiment_spec(
        seed=seed, name=f"fig3-panel{panel_index} {dataset} paper:{paper_label}"
    )
    outcome = outcome_from_records(spec, summary.records)
    if verbose:
        print(format_comparison_table(outcome, title=spec.name))
        print(format_series_csv(outcome))
    return outcome
