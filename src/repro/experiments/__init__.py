"""``repro.experiments`` — per-figure/table harnesses for the paper's
evaluation section (Figs. 1-8 and Table I)."""

from .embeddings import (
    EMBEDDING_FIGURES,
    FIGURE_METHOD_SETS,
    FIGURE_WORKLOADS,
    EmbedParams,
    EmbeddingResult,
    compute_method_embeddings,
    embedding_from_record,
    embeddings_sweep,
    execute_embedding_cell,
    figure_results_from_records,
    render_figure_svg,
    run_figure,
)
from .fig3 import FIG3_PANELS, fig3_sweep, run_fig3_panel
from .fig4 import FIG4_PANELS, fig4_sweep, run_fig4_panel
from .settings import (
    CALIBRE_OVERRIDES,
    COMPARISON_METHODS,
    NOVEL_METHODS,
    SCALED_CONFIG,
    SCALED_DATASET_KWARGS,
    scaled_spec,
)
from .table1 import (
    TABLE1_SETTING,
    TABLE1_TOGGLES,
    TABLE1_VARIANTS,
    run_table1,
    table1_rows_across_seeds,
    table1_rows_from_records,
    table1_sweep,
)

__all__ = [
    "run_fig3_panel",
    "fig3_sweep",
    "FIG3_PANELS",
    "run_fig4_panel",
    "fig4_sweep",
    "FIG4_PANELS",
    "run_table1",
    "table1_sweep",
    "table1_rows_from_records",
    "table1_rows_across_seeds",
    "TABLE1_VARIANTS",
    "TABLE1_TOGGLES",
    "TABLE1_SETTING",
    "compute_method_embeddings",
    "EmbeddingResult",
    "EmbedParams",
    "FIGURE_METHOD_SETS",
    "FIGURE_WORKLOADS",
    "EMBEDDING_FIGURES",
    "embeddings_sweep",
    "execute_embedding_cell",
    "run_figure",
    "figure_results_from_records",
    "embedding_from_record",
    "render_figure_svg",
    "SCALED_CONFIG",
    "SCALED_DATASET_KWARGS",
    "COMPARISON_METHODS",
    "NOVEL_METHODS",
    "CALIBRE_OVERRIDES",
    "scaled_spec",
]
