"""Embedding figures — Figs. 1, 2, 5, 6, 7, 8.

Each figure in the paper is a 2-D t-SNE of encoder representations of
local samples, colored by true class:

* Fig. 1: pFL-SimCLR / pFL-BYOL across 10 of 100 clients — fuzzy clusters;
* Fig. 2: the same methods *within* single clients (client-14 / client-56);
* Fig. 5: pFL-SimSiam / pFL-MoCoV2 vs their Calibre versions;
* Fig. 6: Calibre (SimCLR) vs Calibre (BYOL), plus per-client views;
* Fig. 7/8: FedAvg / FedRep / FedPer / FedBABU / LG-FedAvg / Calibre
  (SimCLR) on CIFAR-10 (D-non-iid) and STL-10 (Q-non-iid).

Because "clear vs. fuzzy boundaries" is visual in the paper, we
additionally report the silhouette score of the embedding under true class
labels, turning every figure into a measurable claim: calibrated methods
must score higher than their uncalibrated counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..eval.harness import NonIIDSetting, make_partitions
from ..eval.registry import build_method
from ..fl.client import build_federation
from ..fl.server import FederatedServer
from ..manifold import silhouette_score, tsne_embed
from .settings import scaled_spec
from ..eval.harness import make_dataset, make_encoder_factory

__all__ = ["EmbeddingResult", "compute_method_embeddings", "FIGURE_METHOD_SETS"]

FIGURE_METHOD_SETS: Dict[str, List[str]] = {
    "fig1": ["pfl-simclr", "pfl-byol"],
    "fig5": ["pfl-simsiam", "pfl-mocov2", "calibre-simsiam", "calibre-mocov2"],
    "fig6": ["calibre-simclr", "calibre-byol"],
    "fig7": ["fedavg", "fedrep", "fedper", "fedbabu", "lg-fedavg", "calibre-simclr"],
    "fig8": ["fedavg", "fedrep", "fedper", "fedbabu", "lg-fedavg", "calibre-simclr"],
}


@dataclass
class EmbeddingResult:
    """A 2-D embedding of one method's representations.

    ``silhouette`` scores the 2-D t-SNE embedding; ``feature_silhouette``
    scores the raw encoder features — the more faithful quantitative
    counterpart of the paper's "clear vs. fuzzy boundary" claims.
    """

    method: str
    embedding: np.ndarray  # (n, 2)
    labels: np.ndarray  # true classes
    client_ids: np.ndarray  # source client of each point
    silhouette: float
    feature_silhouette: float = 0.0
    per_client_silhouette: Dict[int, float] = field(default_factory=dict)

    def to_csv(self) -> str:
        rows = ["x,y,label,client"]
        for (x, y), label, client in zip(self.embedding, self.labels, self.client_ids):
            rows.append(f"{x:.5f},{y:.5f},{int(label)},{int(client)}")
        return "\n".join(rows)


def compute_method_embeddings(
    methods: Sequence[str],
    dataset_name: str = "cifar10",
    setting: Optional[NonIIDSetting] = None,
    num_embed_clients: int = 6,
    samples_per_client: int = 20,
    seed: int = 0,
    tsne_iterations: int = 250,
    verbose: bool = False,
    **spec_overrides,
) -> List[EmbeddingResult]:
    """Train each method, embed representations of several clients' samples.

    The paper collects representations from 6-10 of its 100 clients; here we
    use ``num_embed_clients`` of the scaled federation.  Per-client
    silhouettes (Figs. 2 and 6's single-client panels) come with each result.
    """
    setting = setting if setting is not None else NonIIDSetting("dirichlet", 0.3, 50)
    spec = scaled_spec(dataset_name, setting, list(methods), seed=seed, **spec_overrides)
    dataset = make_dataset(spec.dataset, seed=spec.seed, **spec.dataset_kwargs)
    partition_rng = np.random.default_rng(spec.seed + 1)
    partitions = make_partitions(dataset.train.labels, spec.config.num_clients,
                                 spec.setting, partition_rng)
    encoder_factory = make_encoder_factory(
        spec.encoder, dataset, width=spec.encoder_width,
        hidden_dims=tuple(spec.encoder_hidden_dims), seed=spec.seed + 42,
    )

    results: List[EmbeddingResult] = []
    for method_name in methods:
        clients = build_federation(dataset, partitions,
                                   test_fraction=spec.config.test_fraction,
                                   seed=spec.seed + 2)
        algorithm = build_method(method_name, spec.config, dataset.num_classes,
                                 encoder_factory,
                                 **spec.method_overrides.get(method_name, {}))
        server = FederatedServer(algorithm, clients, spec.config)
        try:
            global_state = server.train()
        finally:
            server.close()  # train() alone never releases the worker pool

        chosen = clients[:num_embed_clients]
        feature_blocks, label_blocks, client_blocks = [], [], []
        for client in chosen:
            count = min(samples_per_client, len(client.train))
            images = client.train.images[:count]
            features = algorithm.extract_features(client, global_state, images)
            feature_blocks.append(features)
            label_blocks.append(client.train.labels[:count])
            client_blocks.append(np.full(count, client.client_id))
        features = np.concatenate(feature_blocks)
        labels = np.concatenate(label_blocks)
        client_ids = np.concatenate(client_blocks)

        embedding = tsne_embed(features, perplexity=15.0,
                               n_iterations=tsne_iterations, seed=seed)
        has_classes = np.unique(labels).size >= 2
        overall = silhouette_score(embedding, labels) if has_classes else 0.0
        feature_sil = silhouette_score(features, labels) if has_classes else 0.0
        per_client: Dict[int, float] = {}
        for client in chosen:
            mask = client_ids == client.client_id
            if np.unique(labels[mask]).size >= 2 and mask.sum() >= 5:
                per_client[client.client_id] = silhouette_score(
                    embedding[mask], labels[mask]
                )
        results.append(EmbeddingResult(
            method=method_name, embedding=embedding, labels=labels,
            client_ids=client_ids, silhouette=overall,
            feature_silhouette=feature_sil,
            per_client_silhouette=per_client,
        ))
        if verbose:
            print(f"  {method_name:20s} tsne_sil={overall:.4f} "
                  f"feat_sil={feature_sil:.4f}")
    return results
