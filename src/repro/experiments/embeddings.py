"""Embedding figures — Figs. 1, 2, 5, 6, 7, 8 — as store-backed sweeps.

Each figure in the paper is a 2-D t-SNE of encoder representations of
local samples, colored by true class:

* Fig. 1: pFL-SimCLR / pFL-BYOL across 10 of 100 clients — fuzzy clusters;
* Fig. 2: the same methods *within* single clients (client-14 / client-56);
* Fig. 5: pFL-SimSiam / pFL-MoCoV2 vs their Calibre versions;
* Fig. 6: Calibre (SimCLR) vs Calibre (BYOL), plus per-client views;
* Fig. 7/8: FedAvg / FedRep / FedPer / FedBABU / LG-FedAvg / Calibre
  (SimCLR) on CIFAR-10 (D-non-iid) and STL-10 (Q-non-iid).

Because "clear vs. fuzzy boundaries" is visual in the paper, we
additionally report the silhouette score of the embedding under true class
labels, turning every figure into a measurable claim: calibrated methods
must score higher than their uncalibrated counterparts.

Sweep entry points
------------------
Every figure is one :class:`~repro.runs.SweepSpec` grid (one cell per
method x seed, with the t-SNE/sampling knobs carried as fingerprinted
``extras``), executed through :func:`~repro.runs.run_sweep` with
:func:`execute_embedding_cell` as the cell executor:

* :func:`embeddings_sweep` — declare a figure's grid;
* :func:`execute_embedding_cell` — train one cell, embed, and return a
  store record carrying both the training result and the embedding;
* :func:`run_figure` — sweep a figure (resumably, given a store) and
  return its :class:`EmbeddingResult` list;
* :func:`figure_results_from_records` / :func:`embedding_from_record` —
  rebuild results from persisted records alone (no retraining);
* :func:`render_figure_svg` — the records-to-SVG assembly behind
  ``repro figures``.

:func:`compute_method_embeddings` remains as the ephemeral in-memory
path (no store, shared dataset across methods) used by quick scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..eval.harness import (
    NonIIDSetting,
    make_dataset,
    make_encoder_factory,
    make_partitions,
)
from ..eval.registry import build_method
from ..fl.client import build_federation, derive_rng
from ..fl.session import SessionCallback, TrainingSession
from ..manifold import silhouette_score, tsne_embed
from ..runs import ARRAYS_KEY, RunKey, RunStore, SweepSpec, execute_cell, run_sweep
from ..viz.svg import ScatterPanel, render_panels
from .settings import CALIBRE_OVERRIDES, SCALED_CONFIG, SCALED_DATASET_KWARGS, scaled_spec

__all__ = [
    "EmbeddingResult",
    "EmbedParams",
    "FIGURE_METHOD_SETS",
    "FIGURE_WORKLOADS",
    "EMBEDDING_FIGURES",
    "compute_method_embeddings",
    "embeddings_sweep",
    "execute_embedding_cell",
    "run_figure",
    "figure_results_from_records",
    "embedding_from_record",
    "render_figure_svg",
]

FIGURE_METHOD_SETS: Dict[str, List[str]] = {
    "fig1": ["pfl-simclr", "pfl-byol"],
    "fig2": ["pfl-simclr", "pfl-byol"],  # fig1's methods, per-client views
    "fig5": ["pfl-simsiam", "pfl-mocov2", "calibre-simsiam", "calibre-mocov2"],
    "fig6": ["calibre-simclr", "calibre-byol"],
    "fig7": ["fedavg", "fedrep", "fedper", "fedbabu", "lg-fedavg", "calibre-simclr"],
    "fig8": ["fedavg", "fedrep", "fedper", "fedbabu", "lg-fedavg", "calibre-simclr"],
}

# Workload of each figure: (dataset, scaled non-IID setting).
FIGURE_WORKLOADS: Dict[str, Tuple[str, NonIIDSetting]] = {
    "fig1": ("cifar10", NonIIDSetting("dirichlet", 0.3, 50)),
    "fig2": ("cifar10", NonIIDSetting("dirichlet", 0.3, 50)),
    "fig5": ("cifar10", NonIIDSetting("dirichlet", 0.3, 50)),
    "fig6": ("cifar10", NonIIDSetting("dirichlet", 0.3, 50)),
    "fig7": ("cifar10", NonIIDSetting("dirichlet", 0.3, 50)),
    "fig8": ("stl10", NonIIDSetting("quantity", 2, 30)),
}

EMBEDDING_FIGURES: Tuple[str, ...] = tuple(sorted(FIGURE_WORKLOADS))
"""The figures this module can sweep and render (fig2 shares fig1's cells)."""

_FIGURE_TITLES = {
    "fig1": "Fig. 1 — pFL-SSL embeddings (fuzzy class boundaries)",
    "fig2": "Fig. 2 — pFL-SSL embeddings within single clients",
    "fig5": "Fig. 5 — Calibre vs uncalibrated SSL embeddings",
    "fig6": "Fig. 6 — Calibre (SimCLR/BYOL) embeddings + per-client views",
    "fig7": "Fig. 7 — method embeddings on CIFAR-10 (D-non-iid)",
    "fig8": "Fig. 8 — method embeddings on STL-10 (Q-non-iid)",
}

# Figures whose paper panels zoom into single clients.
_PER_CLIENT_FIGURES = ("fig2", "fig6")


@dataclass(frozen=True)
class EmbedParams:
    """The embedding stage's knobs — everything past training that
    determines a figure cell's record, carried (JSON-typed) in the cell
    fingerprint via ``RunKey.extras``.

    ``tsne_iterations``/``tsne_perplexity`` configure the exact t-SNE of
    :mod:`repro.manifold.tsne`; the t-SNE seed is the cell's seed, so the
    embedding is bit-reproducible for a fixed cell.
    """

    num_embed_clients: int = 6
    samples_per_client: int = 15
    tsne_iterations: int = 250
    tsne_perplexity: float = 15.0

    def to_jsonable(self) -> Dict:
        return {
            "num_embed_clients": int(self.num_embed_clients),
            "samples_per_client": int(self.samples_per_client),
            "tsne_iterations": int(self.tsne_iterations),
            "tsne_perplexity": float(self.tsne_perplexity),
        }

    @classmethod
    def from_jsonable(cls, payload: Dict) -> "EmbedParams":
        return cls(
            num_embed_clients=int(payload["num_embed_clients"]),
            samples_per_client=int(payload["samples_per_client"]),
            tsne_iterations=int(payload["tsne_iterations"]),
            tsne_perplexity=float(payload["tsne_perplexity"]),
        )


# Figures 7/8 embed fewer samples with a shorter t-SNE (six methods/panel).
_FIGURE_EMBED_DEFAULTS = {
    "fig7": EmbedParams(samples_per_client=12, tsne_iterations=200),
    "fig8": EmbedParams(samples_per_client=12, tsne_iterations=200),
}


@dataclass
class EmbeddingResult:
    """A 2-D embedding of one method's representations.

    ``silhouette`` scores the 2-D t-SNE embedding; ``feature_silhouette``
    scores the raw encoder features — the more faithful quantitative
    counterpart of the paper's "clear vs. fuzzy boundary" claims.
    """

    method: str
    embedding: np.ndarray  # (n, 2)
    labels: np.ndarray  # true classes
    client_ids: np.ndarray  # source client of each point
    silhouette: float
    feature_silhouette: float = 0.0
    per_client_silhouette: Dict[int, float] = field(default_factory=dict)

    def to_csv(self) -> str:
        rows = ["x,y,label,client"]
        for (x, y), label, client in zip(self.embedding, self.labels, self.client_ids):
            rows.append(f"{x:.5f},{y:.5f},{int(label)},{int(client)}")
        return "\n".join(rows)


# ----------------------------------------------------------------------
# Shared embedding core
# ----------------------------------------------------------------------
def _embed_trained_method(
    method_name: str,
    algorithm,
    global_state,
    clients: Sequence,
    embed: EmbedParams,
    tsne_seed: int,
) -> EmbeddingResult:
    """Embed a trained method's representations of several clients' samples.

    Deterministic given the trained state: feature extraction is pure and
    the t-SNE seed is explicit.
    """
    chosen = clients[: embed.num_embed_clients]
    feature_blocks, label_blocks, client_blocks = [], [], []
    for client in chosen:
        count = min(embed.samples_per_client, len(client.train))
        images = client.train.images[:count]
        features = algorithm.extract_features(client, global_state, images)
        feature_blocks.append(features)
        label_blocks.append(client.train.labels[:count])
        client_blocks.append(np.full(count, client.client_id))
    features = np.concatenate(feature_blocks)
    labels = np.concatenate(label_blocks)
    client_ids = np.concatenate(client_blocks)

    embedding = tsne_embed(features, perplexity=embed.tsne_perplexity,
                           n_iterations=embed.tsne_iterations, seed=tsne_seed)
    has_classes = np.unique(labels).size >= 2
    overall = silhouette_score(embedding, labels) if has_classes else 0.0
    feature_sil = silhouette_score(features, labels) if has_classes else 0.0
    per_client: Dict[int, float] = {}
    for client in chosen:
        mask = client_ids == client.client_id
        if np.unique(labels[mask]).size >= 2 and mask.sum() >= 5:
            per_client[client.client_id] = silhouette_score(
                embedding[mask], labels[mask]
            )
    return EmbeddingResult(
        method=method_name, embedding=embedding, labels=labels,
        client_ids=client_ids, silhouette=overall,
        feature_silhouette=feature_sil,
        per_client_silhouette=per_client,
    )


def compute_method_embeddings(
    methods: Sequence[str],
    dataset_name: str = "cifar10",
    setting: Optional[NonIIDSetting] = None,
    num_embed_clients: int = 6,
    samples_per_client: int = 20,
    seed: int = 0,
    tsne_iterations: int = 250,
    verbose: bool = False,
    **spec_overrides,
) -> List[EmbeddingResult]:
    """Train each method, embed representations of several clients' samples.

    The ephemeral in-memory path: nothing is persisted and the dataset is
    built once and shared across methods.  For durable, resumable figure
    artifacts use :func:`run_figure` / :func:`embeddings_sweep` instead —
    the embedding math is shared, so for identical parameters both paths
    produce identical results.
    """
    setting = setting if setting is not None else NonIIDSetting("dirichlet", 0.3, 50)
    embed = EmbedParams(num_embed_clients=num_embed_clients,
                        samples_per_client=samples_per_client,
                        tsne_iterations=tsne_iterations)
    spec = scaled_spec(dataset_name, setting, list(methods), seed=seed, **spec_overrides)
    dataset = make_dataset(spec.dataset, seed=spec.seed, **spec.dataset_kwargs)
    partition_rng = derive_rng(spec.seed + 1)
    partitions = make_partitions(dataset.train.labels, spec.config.num_clients,
                                 spec.setting, partition_rng)
    encoder_factory = make_encoder_factory(
        spec.encoder, dataset, width=spec.encoder_width,
        hidden_dims=tuple(spec.encoder_hidden_dims), seed=spec.seed + 42,
    )

    results: List[EmbeddingResult] = []
    for method_name in methods:
        clients = build_federation(dataset, partitions,
                                   test_fraction=spec.config.test_fraction,
                                   seed=spec.seed + 2)
        algorithm = build_method(method_name, spec.config, dataset.num_classes,
                                 encoder_factory,
                                 **spec.method_overrides.get(method_name, {}))
        session = TrainingSession(algorithm, clients, spec.config)
        try:
            global_state = session.run()
        finally:
            session.close()
        results.append(_embed_trained_method(method_name, algorithm, global_state,
                                             clients, embed, tsne_seed=seed))
        if verbose:
            result = results[-1]
            print(f"  {method_name:20s} tsne_sil={result.silhouette:.4f} "
                  f"feat_sil={result.feature_silhouette:.4f}")
    return results


# ----------------------------------------------------------------------
# Store-backed sweeps
# ----------------------------------------------------------------------
def _check_figure(figure: str) -> str:
    if figure not in FIGURE_WORKLOADS:
        raise KeyError(f"unknown embedding figure '{figure}'; "
                       f"available: {list(EMBEDDING_FIGURES)}")
    return figure


def embeddings_sweep(
    figure: str,
    methods: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0,),
    config=None,
    embed: Optional[EmbedParams] = None,
    embed_clients: Optional[int] = None,
    embed_samples: Optional[int] = None,
    tsne_iterations: Optional[int] = None,
    dataset_kwargs: Optional[Dict] = None,
    method_overrides: Optional[Dict[str, Dict]] = None,
    samples_per_client: Optional[int] = None,
    **spec_overrides,
) -> SweepSpec:
    """Declare one embedding figure's grid: one cell per method (x seed).

    The t-SNE/sampling knobs travel as ``extras`` on every cell, so they
    are part of each cell's content hash — two figures differing only in
    ``tsne_iterations`` never share records.  Fig. 2 declares exactly
    Fig. 1's cells (same methods, workload, and extras), so sweeping
    either figure fills the store for both; only the rendering differs.

    ``samples_per_client`` scales the figure's non-i.i.d. setting down
    (smoke/budget grids); like every result-changing knob it changes the
    cell fingerprints.  ``embed_clients``/``embed_samples``/
    ``tsne_iterations`` override single fields of the figure's default
    :class:`EmbedParams` (the CLI flags) without replacing the whole
    ``embed`` object.
    """
    figure = _check_figure(figure)
    dataset, setting = FIGURE_WORKLOADS[figure]
    if samples_per_client is not None:
        setting = replace(setting, samples_per_client=samples_per_client)
    if embed is None:
        embed = _FIGURE_EMBED_DEFAULTS.get(figure, EmbedParams())
    embed_overrides = {
        name: value for name, value in (
            ("num_embed_clients", embed_clients),
            ("samples_per_client", embed_samples),
            ("tsne_iterations", tsne_iterations),
        ) if value is not None
    }
    if embed_overrides:
        embed = replace(embed, **embed_overrides)
    return SweepSpec(
        name=figure,
        methods=list(methods) if methods is not None else list(FIGURE_METHOD_SETS[figure]),
        settings=[setting],
        datasets=[dataset],
        seeds=list(seeds),
        config=config if config is not None else SCALED_CONFIG,
        method_overrides={**CALIBRE_OVERRIDES, **(method_overrides or {})},
        dataset_kwargs={dataset: {**SCALED_DATASET_KWARGS[dataset],
                                  **(dataset_kwargs or {})}},
        extras={"embed": embed.to_jsonable()},
        **spec_overrides,
    )


def embed_params_of(key: RunKey) -> EmbedParams:
    """The :class:`EmbedParams` carried by an embedding cell's extras."""
    payload = key.extras.get("embed")
    if payload is None:
        raise KeyError(
            f"cell {key.fingerprint} carries no 'embed' extras — it is a "
            "plain training cell, not an embedding-figure cell")
    return EmbedParams.from_jsonable(payload)


class _EmbedOnFinalRound(SessionCallback):
    """Capture the embedding on the final round's ``round_end`` event —
    after the last training round commits, before personalization runs
    (the paper's figures show pre-personalization representations)."""

    def __init__(self, extract):
        self.extract = extract

    def on_round_end(self, session, event) -> None:
        if session.round_index >= session.config.rounds:
            self.extract(session)


def execute_embedding_cell(key: RunKey, client_backend: Optional[str] = None,
                           client_batch: Optional[int] = None,
                           verbose: bool = False,
                           checkpoint_dir=None,
                           checkpoint_every: int = 1) -> Dict:
    """Run one embedding cell end-to-end and return its store record.

    Delegates the training run — federation setup, checkpoint/resume
    semantics, ``result``/``report`` record fields — entirely to
    :func:`~repro.runs.execute_cell`, hooking the cell's session to embed
    the trained encoder's representations *between* training and
    personalization; the t-SNE points, labels, client ids and silhouette
    scores are serialized under the record's ``embedding`` key.
    """
    embed = embed_params_of(key)
    captured: Dict[str, EmbeddingResult] = {}

    def extract(session: TrainingSession) -> None:
        captured["embedding"] = _embed_trained_method(
            key.method, session.algorithm, session.global_state,
            session.clients, embed, tsne_seed=key.seed)

    def session_hook(method_name: str, session: TrainingSession) -> None:
        if session.round_index >= session.config.rounds:
            # Resumed from a checkpoint taken after the final round:
            # training will not step again, so embed right away.
            extract(session)
        else:
            session.add_callback(_EmbedOnFinalRound(extract))

    record = execute_cell(key, client_backend=client_backend,
                          client_batch=client_batch, verbose=verbose,
                          checkpoint_dir=checkpoint_dir,
                          checkpoint_every=checkpoint_every,
                          session_hook=session_hook)
    embedding = captured["embedding"]
    record["embedding"] = _embedding_payload(embedding, embed)
    record[ARRAYS_KEY] = _embedding_columns(embedding)
    if verbose:
        print(f"  {key.method:20s} tsne_sil={embedding.silhouette:.4f} "
              f"feat_sil={embedding.feature_silhouette:.4f}")
    return record


_EMBEDDING_COLUMNS = ("embedding.points", "embedding.labels",
                      "embedding.client_ids")


def _embedding_columns(result: EmbeddingResult) -> Dict[str, np.ndarray]:
    """The embedding's bulk arrays, as binary sidecar columns."""
    points, labels, client_ids = _EMBEDDING_COLUMNS
    return {
        points: np.asarray(result.embedding, dtype=np.float64),
        labels: np.asarray(result.labels, dtype=np.int64),
        client_ids: np.asarray(result.client_ids, dtype=np.int64),
    }


def _embedding_payload(result: EmbeddingResult, embed: EmbedParams) -> Dict:
    """The record's ``embedding`` field: scalars inline, arrays by name.

    The point cloud itself lives in the cell's ``.npcol`` sidecar (see
    :data:`~repro.runs.ARRAYS_KEY`); the record carries only the column
    names, so cell fingerprints and record bytes are independent of the
    binary container format.
    """
    return {
        "params": embed.to_jsonable(),
        "arrays": list(_EMBEDDING_COLUMNS),
        "silhouette": float(result.silhouette),
        "feature_silhouette": float(result.feature_silhouette),
        "per_client_silhouette": {str(cid): float(value) for cid, value
                                  in sorted(result.per_client_silhouette.items())},
    }


def embedding_from_record(record: Dict,
                          arrays: Optional[Dict[str, np.ndarray]] = None
                          ) -> EmbeddingResult:
    """Rebuild an :class:`EmbeddingResult` from a stored cell record.

    The inverse of the serialization in :func:`execute_embedding_cell`.
    Current records name their bulk columns under ``embedding.arrays``
    and carry the values in a ``.npcol`` sidecar — pass those columns as
    ``arrays`` (or leave them attached in-memory under
    :data:`~repro.runs.ARRAYS_KEY` for ephemeral runs).  Legacy records
    with inline ``points``/``labels``/``client_ids`` JSON lists decode
    unchanged.  Both paths rebuild bitwise-identical results — floats
    round-trip exactly through JSON *and* through the binary container —
    so a result rebuilt from either format renders byte-identical SVGs.
    """
    payload = record.get("embedding")
    if payload is None:
        raise KeyError(
            f"record {record.get('fingerprint')} carries no embedding — "
            "it was produced by a plain training sweep, not a figure sweep")
    if "points" in payload:  # legacy inline-JSON embedding
        points = payload["points"]
        labels = payload["labels"]
        client_ids = payload["client_ids"]
    else:
        if arrays is None:
            arrays = record.get(ARRAYS_KEY)
        if arrays is None:
            raise KeyError(
                f"record {record.get('fingerprint')} stores its embedding "
                "columns in an array sidecar, but none was provided — read "
                "it via RunStore.read_arrays or pass store= to "
                "figure_results_from_records")
        names = payload["arrays"]
        points, labels, client_ids = (arrays[name] for name in names)
    return EmbeddingResult(
        method=record["key"]["method"],
        embedding=np.asarray(points, dtype=np.float64),
        labels=np.asarray(labels, dtype=int),
        client_ids=np.asarray(client_ids, dtype=int),
        silhouette=float(payload["silhouette"]),
        feature_silhouette=float(payload["feature_silhouette"]),
        per_client_silhouette={int(cid): float(value) for cid, value
                               in payload["per_client_silhouette"].items()},
    )


def figure_results_from_records(
    cells: Sequence[RunKey],
    records: Sequence[Optional[Dict]],
    methods: Optional[Sequence[str]] = None,
    seed: int = 0,
    store=None,
) -> List[EmbeddingResult]:
    """One :class:`EmbeddingResult` per method, from stored records alone.

    ``cells``/``records`` are a figure sweep's canonical grid (as
    returned by :func:`~repro.runs.run_sweep` or
    :meth:`~repro.runs.RunStore.load_records`); ``methods`` defaults to
    every method present, in grid order.  ``store`` (a path or
    :class:`~repro.runs.RunStore`) supplies the ``.npcol`` array sidecars
    of columnar records; legacy inline records and ephemeral records with
    in-memory columns need none.  Raises if any requested method's cell
    is missing for ``seed``.
    """
    if store is not None and not isinstance(store, RunStore):
        store = RunStore(store)
    by_method: Dict[str, Tuple[RunKey, Dict]] = {}
    order: List[str] = []
    for key, record in zip(cells, records):
        if key.seed != seed or record is None:
            continue
        if key.method not in by_method:
            order.append(key.method)
        by_method[key.method] = (key, record)
    wanted = list(methods) if methods is not None else order
    missing = [name for name in wanted if name not in by_method]
    if missing:
        raise KeyError(f"no stored records for methods {missing} at seed {seed}; "
                       "run the figure sweep first (repro sweep)")
    results = []
    for name in wanted:
        key, record = by_method[name]
        arrays = None
        if (store is not None and ARRAYS_KEY not in record
                and "points" not in record.get("embedding", {})
                and store.has_arrays(key)):
            arrays = store.read_arrays(key)
        results.append(embedding_from_record(record, arrays=arrays))
    return results


def run_figure(
    figure: str,
    store=None,
    scheduler: str = "serial",
    jobs: Optional[int] = None,
    seed: int = 0,
    verbose: bool = False,
    **sweep_kwargs,
) -> List[EmbeddingResult]:
    """Sweep one embedding figure (resumably, given ``store``) and return
    its per-method results.

    ``store`` (a path or :class:`~repro.runs.RunStore`) makes the run
    persistent: finished cells are skipped on relaunch and the figure is
    afterwards renderable from the store alone via
    :func:`figure_results_from_records` + :func:`render_figure_svg`.
    """
    sweep = embeddings_sweep(figure, seeds=(seed,), **sweep_kwargs)
    summary = run_sweep(sweep, store=store, backend=scheduler, workers=jobs,
                        executor=execute_embedding_cell, verbose=verbose)
    return figure_results_from_records(summary.cells, summary.records,
                                       methods=sweep.methods, seed=seed,
                                       store=store)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _per_client_panels(result: EmbeddingResult, max_clients: int = 2
                       ) -> List[ScatterPanel]:
    """Single-client zoom panels (Figs. 2/6), best-silhouette clients first."""
    ranked = sorted(result.per_client_silhouette.items(),
                    key=lambda item: (-item[1], item[0]))
    panels = []
    for client_id, sil in ranked[:max_clients]:
        mask = result.client_ids == client_id
        panels.append(ScatterPanel(
            points=result.embedding[mask],
            labels=result.labels[mask],
            title=f"{result.method} · client {client_id}",
            subtitle=f"silhouette {sil:+.3f}",
        ))
    return panels


def render_figure_svg(figure: str, results: Sequence[EmbeddingResult],
                      title: Optional[str] = None) -> str:
    """Render one embedding figure from its per-method results.

    One panel per method (t-SNE points colored+shaped by true class,
    silhouette scores in the subtitle); Figs. 2 and 6 additionally get
    per-client zoom panels.  Purely a function of ``results`` — feeding
    it records reloaded from the store reproduces the bytes of the
    original render.
    """
    figure = _check_figure(figure)
    results = list(results)
    if not results:
        raise ValueError("no embedding results to render")
    panels = []
    if figure != "fig2":  # fig2 is the paper's single-client view only
        panels.extend(ScatterPanel(
            points=result.embedding,
            labels=result.labels,
            title=result.method,
            subtitle=(f"silhouette {result.silhouette:+.3f} · "
                      f"features {result.feature_silhouette:+.3f}"),
        ) for result in results)
    if figure in _PER_CLIENT_FIGURES:
        for result in results:
            panels.extend(_per_client_panels(result))
    if not panels:
        raise ValueError(
            f"{figure} renders per-client panels, but no cell recorded a "
            "per-client silhouette (too few samples or classes per client)")
    columns = 2 if len(panels) <= 4 else 3
    return render_panels(panels, columns=columns,
                         title=title if title is not None else _FIGURE_TITLES[figure])
