"""Experiment settings: the paper's configurations and their CPU-scale twins.

The paper (§V-A) trains 100 clients for 200 rounds on CIFAR-10/100 and
STL-10 with a ResNet-18 encoder.  Pure-numpy training cannot reach that
scale in reasonable time, so every experiment here carries two
configurations:

* ``paper``  — the faithful setting (kept runnable for completeness);
* ``scaled`` — the benchmark default: fewer/smaller clients and rounds and
  a compact encoder, chosen (see EXPERIMENTS.md) so the paper's comparative
  *shapes* survive.

Both flow through identical code paths.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..eval.harness import ExperimentSpec, NonIIDSetting
from ..fl.config import FederatedConfig

__all__ = [
    "SCALED_CONFIG",
    "SCALED_DATASET_KWARGS",
    "FIG3_PANELS",
    "FIG4_PANELS",
    "COMPARISON_METHODS",
    "NOVEL_METHODS",
    "CALIBRE_OVERRIDES",
    "scaled_spec",
]

SCALED_CONFIG = FederatedConfig(
    num_clients=20,
    clients_per_round=6,
    rounds=25,
    local_epochs=2,
    batch_size=32,
    personalization_epochs=10,
    personalization_lr=0.05,
    test_fraction=0.3,
    num_novel_clients=0,
    seed=0,
)

SCALED_DATASET_KWARGS: Dict[str, Dict] = {
    "cifar10": dict(image_size=12, train_per_class=100, test_per_class=16,
                    shift_range=5, noise_level=0.6, color_jitter=0.5, class_sep=1.2),
    "cifar100": dict(image_size=12, train_per_class=24, test_per_class=6,
                     num_classes=20, shift_range=5, noise_level=0.6,
                     color_jitter=0.5, class_sep=1.2),
    "stl10": dict(image_size=12, train_per_class=24, test_per_class=10,
                  unlabeled_size=1200, shift_range=5, noise_level=0.6,
                  color_jitter=0.5, class_sep=1.2),
}

# Calibre clusters each batch with KMeans; at the scaled batch size a small
# prototype count is the stable choice (see EXPERIMENTS.md calibration).
CALIBRE_OVERRIDES: Dict[str, Dict] = {
    f"calibre-{variant}": {"num_prototypes": 5}
    for variant in ("simclr", "byol", "simsiam", "mocov2", "swav", "smog")
}

# The method list of Fig. 3 (all 20 rows), trimmed of nothing.
COMPARISON_METHODS: List[str] = [
    "fedavg", "fedavg-ft", "script-fair", "script-convergent",
    "apfl", "ditto", "lg-fedavg", "fedper", "fedrep", "perfedavg",
    "scaffold", "scaffold-ft", "fedbabu", "fedema",
    "calibre-byol", "calibre-simsiam", "calibre-mocov2",
    "calibre-swav", "calibre-smog", "calibre-simclr",
]

# Fig. 4's method list (includes the uncalibrated pFL-SSL rows).
NOVEL_METHODS: List[str] = [
    "fedavg-ft", "script-convergent", "apfl", "lg-fedavg", "fedper",
    "fedrep", "fedbabu", "fedema", "pfl-mocov2", "pfl-simclr",
    "calibre-mocov2", "calibre-simclr",
]

# Fig. 3: four panels — (dataset, paper setting, scaled setting).
FIG3_PANELS = [
    ("cifar10", "Q-non-iid (2, 500)", NonIIDSetting("quantity", 2, 50)),
    ("cifar100", "Q-non-iid (5, 500)", NonIIDSetting("quantity", 5, 50)),
    ("stl10", "Q-non-iid (2, 46)", NonIIDSetting("quantity", 2, 30)),
    ("stl10", "D-non-iid (0.3, 80)", NonIIDSetting("dirichlet", 0.3, 30)),
]

# Fig. 4: two datasets under D-non-iid, plus novel clients.
FIG4_PANELS = [
    ("cifar10", "D-non-iid (0.3, 600)", NonIIDSetting("dirichlet", 0.3, 50)),
    ("cifar100", "D-non-iid (0.3, 500)", NonIIDSetting("dirichlet", 0.3, 50)),
]


def scaled_spec(
    dataset: str,
    setting: NonIIDSetting,
    methods: Sequence[str],
    seed: int = 0,
    config: FederatedConfig = None,
    name: str = "",
    **spec_overrides,
) -> ExperimentSpec:
    """Build the scaled-down spec for one panel."""
    config = config if config is not None else SCALED_CONFIG.with_overrides(seed=seed)
    return ExperimentSpec(
        dataset=dataset,
        setting=setting,
        config=config,
        methods=list(methods),
        encoder=spec_overrides.pop("encoder", "mlp"),
        dataset_kwargs={**SCALED_DATASET_KWARGS[dataset],
                        **spec_overrides.pop("dataset_kwargs", {})},
        method_overrides={**CALIBRE_OVERRIDES,
                          **spec_overrides.pop("method_overrides", {})},
        seed=seed,
        name=name,
        **spec_overrides,
    )
