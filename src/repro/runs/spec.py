"""Declarative sweep grids and content-hashed run keys.

A :class:`SweepSpec` names a grid of independent experiment cells —
method x dataset x :class:`~repro.eval.harness.NonIIDSetting` x seed x
override variant — exactly the structure of the paper's artifacts
(Table I is 3 methods x 4 regularizer toggles; Fig. 3 is 20 methods per
panel).  :meth:`SweepSpec.cells` expands the grid into :class:`RunKey`
objects in a deterministic order.

A :class:`RunKey` is the unit of work and the unit of storage: its
``fingerprint`` is a SHA-256 content hash of everything that determines
the cell's *result* — and nothing that doesn't.  Execution knobs
(``backend``/``workers``/``shared_memory``) are excluded because the
engines are bitwise-deterministic, and the cosmetic ``variant`` label is
excluded because two labels with identical overrides denote the same
computation.  That is what makes resume safe: a killed sweep relaunched
under a different scheduler still recognizes every finished cell.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from dataclasses import asdict

from ..eval.harness import ExperimentSpec, NonIIDSetting
from ..fl.config import AvailabilitySpec, FederatedConfig
from .serialize import (
    canonical_json,
    config_from_jsonable,
    config_to_jsonable,
    setting_from_jsonable,
    setting_to_jsonable,
    to_jsonable,
)

__all__ = ["RunKey", "SweepVariant", "SweepSpec", "FINGERPRINT_LENGTH"]

FINGERPRINT_LENGTH = 16
"""Hex digits kept from the SHA-256 digest (64 bits — ample for any grid)."""


@dataclass
class RunKey:
    """One experiment cell: a single method on a single workload and seed.

    ``overrides`` are the method's fully-merged keyword overrides (base
    sweep overrides + variant overrides); ``variant`` is the cosmetic
    label of the override point that produced them.

    ``extras`` carries executor-specific parameters that change the
    cell's *record* without changing the training run — the embedding
    figures put their t-SNE/sampling knobs here.  Extras are part of the
    fingerprint (two cells with different extras are different work),
    but an empty dict is omitted from the hashed payload so plain
    training cells keep the fingerprints they have always had.
    """

    dataset: str
    setting: NonIIDSetting
    method: str
    seed: int
    config: FederatedConfig
    variant: str = ""
    overrides: Dict = field(default_factory=dict)
    encoder: str = "mlp"
    encoder_width: int = 8
    encoder_hidden_dims: Tuple[int, ...] = (64, 32)
    dataset_kwargs: Dict = field(default_factory=dict)
    extras: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def semantic_payload(self) -> Dict:
        """Everything that determines the cell's result, JSON-typed.

        Execution knobs and the variant label are deliberately absent —
        see the module docstring.  ``extras`` appears only when
        non-empty, so pre-existing stores stay addressable.
        """
        payload = {
            "dataset": self.dataset,
            "setting": setting_to_jsonable(self.setting),
            "method": self.method,
            "seed": int(self.seed),
            "config": config_to_jsonable(self.config, include_execution=False),
            "overrides": to_jsonable(self.overrides),
            "encoder": self.encoder,
            "encoder_width": int(self.encoder_width),
            "encoder_hidden_dims": [int(dim) for dim in self.encoder_hidden_dims],
            "dataset_kwargs": to_jsonable(self.dataset_kwargs),
        }
        if self.extras:
            payload["extras"] = to_jsonable(self.extras)
        return payload

    @property
    def fingerprint(self) -> str:
        digest = hashlib.sha256(canonical_json(self.semantic_payload()).encode())
        return digest.hexdigest()[:FINGERPRINT_LENGTH]

    def label(self) -> str:
        text = f"{self.dataset} {self.setting.label()} {self.method} seed={self.seed}"
        if self.variant:
            text += f" [{self.variant}]"
        return text

    # ------------------------------------------------------------------
    def to_jsonable(self) -> Dict:
        payload = self.semantic_payload()
        payload["variant"] = self.variant
        return payload

    @classmethod
    def from_jsonable(cls, payload: Dict) -> "RunKey":
        return cls(
            dataset=payload["dataset"],
            setting=setting_from_jsonable(payload["setting"]),
            method=payload["method"],
            seed=int(payload["seed"]),
            config=config_from_jsonable(payload["config"]),
            variant=payload.get("variant", ""),
            overrides=dict(payload.get("overrides", {})),
            encoder=payload.get("encoder", "mlp"),
            encoder_width=int(payload.get("encoder_width", 8)),
            encoder_hidden_dims=tuple(payload.get("encoder_hidden_dims", (64, 32))),
            dataset_kwargs=dict(payload.get("dataset_kwargs", {})),
            extras=dict(payload.get("extras", {})),
        )

    def to_spec(self) -> ExperimentSpec:
        """The single-method :class:`ExperimentSpec` this cell executes."""
        return ExperimentSpec(
            dataset=self.dataset,
            setting=self.setting,
            config=self.config,
            methods=[self.method],
            encoder=self.encoder,
            encoder_width=self.encoder_width,
            encoder_hidden_dims=tuple(self.encoder_hidden_dims),
            dataset_kwargs=dict(self.dataset_kwargs),
            method_overrides={self.method: dict(self.overrides)},
            seed=self.seed,
            name=self.label(),
        )


@dataclass
class SweepVariant:
    """One point on the override axis of a sweep grid.

    ``overrides`` are merged *over* the sweep's base per-method overrides
    for whichever method the cell runs — Table I's four (L_n, L_p)
    toggles are four variants over the three Calibre methods.
    """

    label: str = ""
    overrides: Dict = field(default_factory=dict)


@dataclass
class SweepSpec:
    """A declarative grid of experiment cells.

    The grid is the cross product ``seeds x datasets x settings x
    availability x variants x methods``; :meth:`cells` expands it in
    exactly that nested order, which is the canonical ordering every
    report uses.  Each cell's config is reseeded to the cell's seed
    (``config.seed`` drives round sampling), so one ``SweepSpec`` covers
    multi-seed replication.

    ``availability`` is the population-plane axis: each point is ``None``
    (no availability model — the historical grid shape) or an
    :class:`~repro.fl.config.AvailabilitySpec` applied to the cell's
    config.  Like every semantic knob it hashes into the cell
    fingerprint; the default single-``None`` axis leaves all pre-existing
    fingerprints untouched.
    """

    name: str
    methods: Sequence[str]
    settings: Sequence[NonIIDSetting]
    datasets: Sequence[str] = ("cifar10",)
    seeds: Sequence[int] = (0,)
    config: Optional[FederatedConfig] = None
    variants: Sequence[SweepVariant] = (SweepVariant(),)
    availability: Sequence[Optional[AvailabilitySpec]] = (None,)
    method_overrides: Dict[str, Dict] = field(default_factory=dict)
    dataset_kwargs: Dict[str, Dict] = field(default_factory=dict)
    encoder: str = "mlp"
    encoder_width: int = 8
    encoder_hidden_dims: Sequence[int] = (64, 32)
    extras: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.methods = list(self.methods)
        self.settings = list(self.settings)
        self.datasets = list(self.datasets)
        self.seeds = [int(seed) for seed in self.seeds]
        self.variants = list(self.variants)
        if isinstance(self.availability, (AvailabilitySpec, dict)) \
                or self.availability is None:
            self.availability = [self.availability]
        self.availability = [
            AvailabilitySpec(**point) if isinstance(point, dict) else point
            for point in self.availability
        ]
        for point in self.availability:
            if point is not None and not isinstance(point, AvailabilitySpec):
                raise ValueError(
                    f"availability axis points must be None or "
                    f"AvailabilitySpec, got {point!r}")
        if self.config is None:
            self.config = FederatedConfig()
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        for axis, label in ((self.methods, "methods"), (self.settings, "settings"),
                            (self.datasets, "datasets"), (self.seeds, "seeds"),
                            (self.variants, "variants"),
                            (self.availability, "availability")):
            if not axis:
                raise ValueError(f"sweep axis '{label}' must be non-empty")
        from ..eval.registry import available_methods

        unknown = [m for m in self.methods if m not in available_methods()]
        if unknown:
            raise KeyError(f"unknown methods {unknown}; "
                           f"available: {available_methods()}")
        labels = [variant.label for variant in self.variants]
        if len(set(labels)) != len(labels):
            raise ValueError(f"variant labels must be unique, got {labels}")

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return (len(self.seeds) * len(self.datasets) * len(self.settings)
                * len(self.availability) * len(self.variants)
                * len(self.methods))

    def merged_overrides(self, method: str, variant: SweepVariant) -> Dict:
        return {**self.method_overrides.get(method, {}), **variant.overrides}

    def cells(self) -> List[RunKey]:
        """Expand the grid in canonical order (seed, dataset, setting,
        availability, variant, method) — the order is part of the
        subsystem's contract: reports index into it, and it never depends
        on completion order."""
        keys: List[RunKey] = []
        for seed in self.seeds:
            config = self.config.with_overrides(seed=seed)
            for dataset in self.datasets:
                kwargs = dict(self.dataset_kwargs.get(dataset, {}))
                for setting in self.settings:
                    for point in self.availability:
                        cell_config = (config if point is None else
                                       config.with_overrides(availability=point))
                        for variant in self.variants:
                            for method in self.methods:
                                keys.append(RunKey(
                                    dataset=dataset,
                                    setting=setting,
                                    method=method,
                                    seed=seed,
                                    config=cell_config,
                                    variant=variant.label,
                                    overrides=self.merged_overrides(method, variant),
                                    encoder=self.encoder,
                                    encoder_width=self.encoder_width,
                                    encoder_hidden_dims=tuple(self.encoder_hidden_dims),
                                    dataset_kwargs=kwargs,
                                    extras=dict(self.extras),
                                ))
        return keys

    def cells_for(self, seed: Optional[int] = None, dataset: Optional[str] = None,
                  variant: Optional[str] = None) -> List[RunKey]:
        """The canonical cell list filtered by coordinate (reporting helper)."""
        return [key for key in self.cells()
                if (seed is None or key.seed == seed)
                and (dataset is None or key.dataset == dataset)
                and (variant is None or key.variant == variant)]

    def to_experiment_spec(self, seed: Optional[int] = None,
                           name: str = "") -> ExperimentSpec:
        """Collapse a single-panel sweep back into one multi-method spec.

        Only valid when the grid has exactly one dataset, setting,
        availability point, and variant (the Fig. 3/4 shape); ``seed``
        defaults to the sweep's single seed and must be one of ``seeds``
        otherwise.
        """
        if len(self.datasets) != 1 or len(self.settings) != 1 \
                or len(self.variants) != 1 or len(self.availability) != 1:
            raise ValueError(
                "to_experiment_spec needs a single-panel sweep "
                f"(got {len(self.datasets)} datasets, {len(self.settings)} settings, "
                f"{len(self.availability)} availability points, "
                f"{len(self.variants)} variants)")
        if seed is None:
            if len(self.seeds) != 1:
                raise ValueError(f"pick one of seeds {self.seeds}")
            seed = self.seeds[0]
        elif seed not in self.seeds:
            raise ValueError(f"seed {seed} not in sweep seeds {self.seeds}")
        variant = self.variants[0]
        dataset = self.datasets[0]
        overrides = {"seed": seed}
        if self.availability[0] is not None:
            overrides["availability"] = self.availability[0]
        return ExperimentSpec(
            dataset=dataset,
            setting=self.settings[0],
            config=self.config.with_overrides(**overrides),
            methods=list(self.methods),
            encoder=self.encoder,
            encoder_width=self.encoder_width,
            encoder_hidden_dims=tuple(self.encoder_hidden_dims),
            dataset_kwargs=dict(self.dataset_kwargs.get(dataset, {})),
            method_overrides={method: self.merged_overrides(method, variant)
                              for method in self.methods},
            seed=seed,
            name=name or self.name,
        )

    def to_jsonable(self) -> Dict:
        payload = {
            "name": self.name,
            "methods": list(self.methods),
            "datasets": list(self.datasets),
            "settings": [setting_to_jsonable(s) for s in self.settings],
            "seeds": list(self.seeds),
            "config": config_to_jsonable(self.config, include_execution=False),
            "variants": [{"label": v.label, "overrides": to_jsonable(v.overrides)}
                         for v in self.variants],
            "method_overrides": to_jsonable(self.method_overrides),
            "dataset_kwargs": to_jsonable(self.dataset_kwargs),
            "encoder": self.encoder,
            "encoder_width": int(self.encoder_width),
            "encoder_hidden_dims": [int(d) for d in self.encoder_hidden_dims],
            "fingerprints": [key.fingerprint for key in self.cells()],
        }
        if self.availability != [None]:
            payload["availability"] = [
                None if point is None else asdict(point)
                for point in self.availability
            ]
        if self.extras:
            payload["extras"] = to_jsonable(self.extras)
        return payload
