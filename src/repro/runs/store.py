"""Persistent, resumable run store: one JSON record per experiment cell.

Directory layout (everything human-readable except ``arrays/``)::

    <runs-dir>/
        cells/<fingerprint>.json       # authoritative: one record per finished cell
        index.jsonl                    # append-only log: one line per write
        sweeps/<name>.json             # provenance: the sweep grids that ran here
        telemetry/<fingerprint>.jsonl  # diagnostic sidecar: spans + counters
        arrays/<fingerprint>.npcol     # binary sidecar: the cell's array columns

The ``cells/`` files are the source of truth — a cell is complete iff its
file exists.  Records are written with write-then-``os.replace`` so a
killed sweep never leaves a torn file, and the filename *is* the content
hash of the cell's parameters, so resume is a directory scan, identical
cells across sweeps share storage, and two schedulers racing on the same
cell converge on identical bytes.  ``index.jsonl`` is a convenience log
(its line order reflects completion order and may interleave under
parallel scheduling); :meth:`RunStore.rebuild_index` regenerates it from
the cell files in canonical fingerprint order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Union

import numpy as np

from ..arrays import read_columns, write_columns
from ..ioutil import safe_filename
from .serialize import atomic_write_text, encode_record
from .spec import RunKey, SweepSpec

__all__ = ["RunStore", "ARRAYS_KEY", "TIMING_FIELDS", "RESUMED_FIELD",
           "CHURN_FIELD"]

ARRAYS_KEY = "__arrays__"
"""Reserved record key carrying in-memory array columns.

An executor that produces bulky numeric payloads (e.g. embedding point
clouds) attaches them under this key as a ``{name: ndarray}`` dict.  The
scheduler pops the key before the record is hashed or persisted and
routes the columns to the store's binary ``arrays/`` sidecar — so cell
records stay small, human-readable JSON and fingerprints never cover
container bytes.  In ephemeral runs (no store) the columns simply stay
attached in memory."""


def _fingerprint_of(key: Union[str, RunKey]) -> str:
    return key.fingerprint if isinstance(key, RunKey) else str(key)


TIMING_FIELDS = ("wall_clock_s", "mean_round_s")
"""Per-cell timing keys carried in ``index.jsonl`` entries.

Timings are *diagnostics*, not results: cell records stay byte-identical
across schedulers and hosts, so wall-clock lives only in the index.
``wall_clock_s`` is the cell's end-to-end execution time (training +
personalization); ``mean_round_s`` is that total divided by the round
count.

A cell finished from a mid-cell checkpoint carries ``"resumed": true``
instead of numbers — its wall clock covers only the resumed tail, which
would poison timing comparisons — so ``repro report --timings`` can tell
"resumed" apart from "never measured"."""

RESUMED_FIELD = "resumed"

CHURN_FIELD = "churn"
"""Marker on cells executed under an active availability model
(:mod:`repro.fl.population`).  Churned cells run fewer (and different)
clients per round, so their wall clocks are not comparable with the full
grid's — ``repro report --timings`` flags them the way it flags resumes."""


def _index_entry(record: Dict, timing: Optional[Dict] = None) -> Dict:
    """The one-line ``index.jsonl`` shape (shared by append and rebuild)."""
    key = record.get("key", {})
    entry = {
        "fingerprint": record["fingerprint"],
        "dataset": key.get("dataset"),
        "method": key.get("method"),
        "seed": key.get("seed"),
        "variant": key.get("variant", ""),
        "setting": key.get("setting"),
    }
    if timing:
        entry.update({name: timing[name] for name in TIMING_FIELDS
                      if timing.get(name) is not None})
        if timing.get(RESUMED_FIELD):
            entry[RESUMED_FIELD] = True
        if timing.get(CHURN_FIELD):
            entry[CHURN_FIELD] = True
    return entry


class RunStore:
    """Filesystem-backed store of completed experiment cells."""

    def __init__(self, root: Union[str, Path], create: bool = True):
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.sweeps_dir = self.root / "sweeps"
        self.index_path = self.root / "index.jsonl"
        if create:
            self.cells_dir.mkdir(parents=True, exist_ok=True)
            self.sweeps_dir.mkdir(parents=True, exist_ok=True)
        elif not self.cells_dir.is_dir():
            raise FileNotFoundError(f"no run store at {self.root}")

    # ------------------------------------------------------------------
    def path_for(self, key: Union[str, RunKey]) -> Path:
        return self.cells_dir / f"{_fingerprint_of(key)}.json"

    def has(self, key: Union[str, RunKey]) -> bool:
        return self.path_for(key).is_file()

    def completed_fingerprints(self) -> Set[str]:
        """Scan ``cells/`` — the authoritative completion set.

        In-flight temp files are dot-prefixed with a ``.tmp`` suffix, so
        the ``*.json`` glob can never pick up a partial write.
        """
        return {path.stem for path in self.cells_dir.glob("*.json")}

    def __len__(self) -> int:
        return len(self.completed_fingerprints())

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r}, cells={len(self)})"

    # ------------------------------------------------------------------
    def write_record(self, record: Dict, timing: Optional[Dict] = None) -> Path:
        """Atomically persist one cell record and append its index line.

        ``timing`` (optional ``{"wall_clock_s": ..., "mean_round_s": ...}``)
        is recorded in the index entry only — never in the cell record,
        which must stay byte-identical across schedulers and hosts.
        """
        fingerprint = record.get("fingerprint")
        if not fingerprint:
            raise ValueError("record is missing its 'fingerprint' field")
        path = atomic_write_text(self.path_for(fingerprint), encode_record(record))
        self._append_index(record, timing)
        return path

    def _append_index(self, record: Dict, timing: Optional[Dict] = None) -> None:
        # One small single-line write in append mode: safe enough under
        # concurrent writers, and the index is a rebuildable cache anyway.
        # repro: allow[ATM001] -- append-only journal of a rebuildable cache; rebuild_index() is atomic
        with open(self.index_path, "a") as stream:
            stream.write(json.dumps(_index_entry(record, timing),
                                    sort_keys=True) + "\n")

    def read_record(self, key: Union[str, RunKey]) -> Dict:
        path = self.path_for(key)
        if not path.is_file():
            raise KeyError(f"no record for cell {_fingerprint_of(key)} in {self.root}")
        with open(path) as stream:
            return json.load(stream)

    # ------------------------------------------------------------------
    def missing(self, cells: Sequence[RunKey]) -> List[RunKey]:
        """The subset of ``cells`` with no stored record, in input order."""
        done = self.completed_fingerprints()
        return [key for key in cells if key.fingerprint not in done]

    def load_records(self, cells: Sequence[Union[str, RunKey]],
                     strict: bool = True) -> List[Optional[Dict]]:
        """Records for ``cells`` in input order (canonical grid order).

        ``strict=True`` raises on any missing cell, naming them all;
        ``strict=False`` returns ``None`` placeholders instead.
        """
        records: List[Optional[Dict]] = []
        absent: List[str] = []
        for key in cells:
            if self.has(key):
                records.append(self.read_record(key))
            else:
                records.append(None)
                label = key.label() if isinstance(key, RunKey) else str(key)
                absent.append(label)
        if strict and absent:
            raise KeyError(
                f"{len(absent)} of {len(list(cells))} cells missing from {self.root}: "
                + "; ".join(absent[:5]) + ("; ..." if len(absent) > 5 else ""))
        return records

    def timings(self) -> Dict[str, Dict]:
        """Per-cell wall-clock from ``index.jsonl``: fingerprint → timing.

        Last write wins (a cell re-executed after store surgery keeps its
        most recent timing).  Cells indexed before timing existed — or
        re-indexed by :meth:`rebuild_index` without a prior timing — are
        absent from the result.  A resumed cell's timing is the marker
        ``{"resumed": True}`` (no comparable numbers exist for it).
        """
        timings: Dict[str, Dict[str, float]] = {}
        if not self.index_path.is_file():
            return timings
        with open(self.index_path) as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn concurrent append; the index is a cache
                timing = {name: float(entry[name]) for name in TIMING_FIELDS
                          if entry.get(name) is not None}
                if entry.get(RESUMED_FIELD):
                    timing[RESUMED_FIELD] = True
                if entry.get(CHURN_FIELD):
                    timing[CHURN_FIELD] = True
                if timing:
                    timings[entry["fingerprint"]] = timing
        return timings

    def rebuild_index(self) -> int:
        """Rewrite ``index.jsonl`` from the cell files, sorted by fingerprint.

        Returns the number of indexed cells.  Use after crashes or manual
        surgery on ``cells/`` — the cell files stay authoritative either
        way.  Timings recorded in the old index are preserved (they exist
        nowhere else); cells whose records vanished drop out along with
        their timing.
        """
        old_timings = self.timings()
        fingerprints = sorted(self.completed_fingerprints())
        lines = [json.dumps(_index_entry(self.read_record(fingerprint),
                                         old_timings.get(fingerprint)),
                            sort_keys=True)
                 for fingerprint in fingerprints]
        atomic_write_text(self.index_path, "".join(line + "\n" for line in lines))
        return len(fingerprints)

    # ------------------------------------------------------------------
    @property
    def telemetry_dir(self) -> Path:
        return self.root / "telemetry"

    def telemetry_path_for(self, key: Union[str, RunKey]) -> Path:
        return self.telemetry_dir / f"{_fingerprint_of(key)}.jsonl"

    def write_telemetry(self, key: Union[str, RunKey], text: str) -> Path:
        """Atomically persist one cell's ``telemetry.jsonl`` sidecar.

        Sidecars are pure diagnostics: they live beside — never inside —
        the hashed cell records (the TEL001 invariant), so writing one
        cannot perturb fingerprints, resume decisions, or report output.
        """
        self.telemetry_dir.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(self.telemetry_path_for(key), text)

    # ------------------------------------------------------------------
    @property
    def arrays_dir(self) -> Path:
        return self.root / "arrays"

    def arrays_path_for(self, key: Union[str, RunKey]) -> Path:
        return self.arrays_dir / f"{_fingerprint_of(key)}.npcol"

    def has_arrays(self, key: Union[str, RunKey]) -> bool:
        return self.arrays_path_for(key).is_file()

    def write_arrays(self, key: Union[str, RunKey],
                     columns: Dict[str, np.ndarray]) -> Path:
        """Atomically persist one cell's binary ``.npcol`` array sidecar.

        Like telemetry, array sidecars live beside — never inside — the
        hashed cell records: the record stores only the column *names*,
        so fingerprints are computed over logical values and survive any
        change to the container format.
        """
        self.arrays_dir.mkdir(parents=True, exist_ok=True)
        return write_columns(self.arrays_path_for(key), columns)

    def read_arrays(self, key: Union[str, RunKey],
                    mmap: bool = False) -> Dict[str, np.ndarray]:
        """Read a cell's array sidecar; raises ``KeyError`` if absent."""
        path = self.arrays_path_for(key)
        if not path.is_file():
            raise KeyError(
                f"no array sidecar for cell {_fingerprint_of(key)} in {self.root}")
        return read_columns(path, mmap=mmap)

    # ------------------------------------------------------------------
    def write_sweep(self, sweep: SweepSpec) -> Path:
        """Persist the sweep grid itself (provenance for ``repro report``)."""
        path = self.sweeps_dir / f"{safe_filename(sweep.name)}.json"
        return atomic_write_text(path, encode_record(sweep.to_jsonable()))
