"""Sweep scheduler: dispatch pending cells over the execution backends.

This is experiment-level parallelism layered *above* the client-level
parallelism of :mod:`repro.fl.execution`: one sweep cell = one
single-method :func:`~repro.eval.harness.run_experiment`, and the cells
are mapped over an :class:`~repro.fl.execution.ExecutionBackend` with a
chunk size of 1 so every finished cell is persisted immediately — a
killed sweep loses at most the cells in flight.

Determinism: cells are pure functions of their :class:`RunKey` (the
execution engines are bitwise-deterministic), each record lands in a file
named by the key's content hash, and reports read the store in the
sweep's canonical cell order — so sweep results are identical regardless
of scheduler backend or completion order.

When the outer scheduler is parallel, each cell's *inner* client
execution is forced serial: nesting process pools inside pool workers is
where the cores already are, and the inner backend cannot change results
anyway (it is excluded from the cell fingerprint).
"""

from __future__ import annotations

import shutil
from contextlib import nullcontext as _no_activation
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..eval.harness import run_experiment
from ..fl.execution import resolve_backend
from ..telemetry import Tracer, sidecar_lines
from .serialize import RECORD_SCHEMA
from .spec import RunKey, SweepSpec
from .store import ARRAYS_KEY, RunStore

__all__ = ["run_sweep", "execute_cell", "make_record", "SweepSummary",
           "cell_checkpoint_dir"]


def make_record(key: RunKey, result, report, novel_report=None) -> Dict:
    """Assemble the deterministic cell record (no timestamps, no host info)."""
    record = {
        "schema": RECORD_SCHEMA,
        "fingerprint": key.fingerprint,
        "key": key.to_jsonable(),
        "result": result.to_json(),
        "report": report.as_dict(),
    }
    if novel_report is not None:
        record["novel_report"] = novel_report.as_dict()
    return record


def cell_checkpoint_dir(store_root: Union[str, Path], key: RunKey) -> Path:
    """Where a cell's mid-run round checkpoints live under a store.

    One directory per cell fingerprint: the checkpoint is scoped by
    content hash exactly like the cell record, so a resumed sweep under a
    different scheduler still finds it.
    """
    return Path(store_root) / "checkpoints" / key.fingerprint


def execute_cell(key: RunKey, client_backend: Optional[str] = None,
                 client_batch: Optional[int] = None,
                 verbose: bool = False,
                 checkpoint_dir: Union[str, Path, None] = None,
                 checkpoint_every: int = 1,
                 session_hook=None) -> Dict:
    """Run one cell end-to-end and return its store record.

    With ``checkpoint_dir`` set, the cell's session writes a round-level
    checkpoint there after every round and resumes from an existing one —
    a killed sweep restarts *mid-cell* at its last finished round rather
    than from round 0 (resume is bitwise exact, so the record is
    identical either way).  ``session_hook(method, session)`` passes
    through to :func:`~repro.eval.harness.run_experiment` for attaching
    callbacks to the cell's session.
    """
    outcome = run_experiment(key.to_spec(), verbose=verbose,
                             backend=client_backend,
                             client_batch=client_batch,
                             checkpoint_dir=checkpoint_dir,
                             resume=checkpoint_dir is not None,
                             checkpoint_every=checkpoint_every,
                             session_hook=session_hook)
    result = outcome.results[key.method]
    report = outcome.reports[key.method]
    novel_report = outcome.novel_reports.get(key.method)
    return make_record(key, result, report, novel_report)


@dataclass
class _CellTask:
    """Picklable per-cell worker: run, persist, return the record.

    Writing from inside the task (rather than on the coordinator after
    ``map_clients`` returns) is what gives crash resumability its
    granularity: the store reflects every completed cell the moment it
    finishes, on every backend including serial.

    ``executor`` is the cell-execution function (default
    :func:`execute_cell`); alternative executors — the embedding figures'
    :func:`~repro.experiments.embeddings.execute_embedding_cell` — must
    be module-level callables (picklable for the process scheduler) with
    the same signature and must return a record carrying at least
    ``fingerprint``, ``result`` and ``report``.
    """

    store_root: Optional[str]
    client_backend: Optional[str] = None
    client_batch: Optional[int] = None
    verbose: bool = False
    round_checkpoints: bool = False
    checkpoint_every: int = 1
    telemetry: bool = True
    executor: Callable[..., Dict] = execute_cell

    def __call__(self, key: RunKey) -> Dict:
        checkpoint_dir = None
        resumed_mid_cell = False
        if self.round_checkpoints and self.store_root is not None:
            checkpoint_dir = cell_checkpoint_dir(self.store_root, key)
            resumed_mid_cell = any(checkpoint_dir.glob("*.json"))
        # The cell's wall clock is the "cell" span's duration: the tracer
        # owns the monotonic-clock reads (repro.telemetry sits outside the
        # DET002 scope by design), and the numbers land in the timing
        # index and the telemetry sidecar only — never in hashed records.
        tracer = Tracer()
        with tracer.activate() if self.telemetry else _no_activation(), \
                tracer.span("cell", fingerprint=key.fingerprint,
                            method=key.method, dataset=key.dataset,
                            seed=key.seed) as cell_span:
            record = self.executor(key, client_backend=self.client_backend,
                                   client_batch=self.client_batch,
                                   verbose=self.verbose,
                                   checkpoint_dir=checkpoint_dir,
                                   checkpoint_every=self.checkpoint_every)
        elapsed = cell_span.duration
        # Bulky numeric columns travel out of the executor under the
        # reserved ARRAYS_KEY; they are popped before the record is
        # persisted (or hashed by anything downstream) and routed to the
        # store's binary arrays/ sidecar.  Without a store they stay
        # attached so ephemeral in-memory runs keep working.
        columns = record.pop(ARRAYS_KEY, None)
        if self.store_root is not None:
            # A cell resumed from a mid-run checkpoint only recomputed its
            # remaining rounds; recording that partial elapsed as the
            # cell's wall clock would understate it, so mark it "resumed"
            # instead of recording misleading numbers.
            if resumed_mid_cell:
                timing = {"resumed": True}
            else:
                rounds = len(record["result"].get("rounds", []))
                timing = {"wall_clock_s": elapsed,
                          "mean_round_s": elapsed / rounds if rounds else None}
            # Churn-affected cells train fewer/different clients per round;
            # mark them so timing comparisons don't read them as baseline.
            availability = key.config.availability
            if availability is not None and availability.is_active:
                timing["churn"] = True
            store = RunStore(self.store_root)
            if columns:
                # Sidecar first: a crash between the two writes leaves an
                # unreferenced .npcol (harmless) rather than a record whose
                # arrays are missing.
                store.write_arrays(key, columns)
            store.write_record(record, timing=timing)
            if self.telemetry:
                store.write_telemetry(key, sidecar_lines(tracer, meta={
                    "fingerprint": key.fingerprint,
                    "label": key.label(),
                    "resumed": resumed_mid_cell,
                }))
            if checkpoint_dir is not None:
                # The authoritative cell record exists now; the mid-run
                # checkpoint is stale and must not shadow future reruns.
                shutil.rmtree(checkpoint_dir, ignore_errors=True)
        elif columns:
            record[ARRAYS_KEY] = columns
        if self.verbose:
            mean = record["report"]["mean"]
            print(f"  [cell {key.fingerprint}] {key.label()}: mean={mean:.4f}")
        return record


@dataclass
class SweepSummary:
    """What one scheduler pass did, plus the full grid's records.

    ``records`` aligns 1:1 with ``cells`` (the canonical grid order);
    entries are ``None`` only for cells deferred by ``max_cells``.
    """

    name: str
    cells: List[RunKey]
    records: List[Optional[Dict]]
    executed: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    deferred: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(record is not None for record in self.records)

    def describe(self) -> str:
        return (f"sweep {self.name}: executed={len(self.executed)} "
                f"skipped={len(self.skipped)} deferred={len(self.deferred)} "
                f"total={len(self.cells)}")


def run_sweep(sweep: SweepSpec,
              store: Optional[Union[str, Path, RunStore]] = None,
              backend: str = "serial",
              workers: Optional[int] = None,
              max_cells: Optional[int] = None,
              client_backend: Optional[str] = None,
              client_batch: Optional[int] = None,
              round_checkpoints: bool = False,
              checkpoint_every: int = 1,
              executor: Optional[Callable[..., Dict]] = None,
              telemetry: bool = True,
              verbose: bool = False) -> SweepSummary:
    """Run every pending cell of ``sweep``, resuming from ``store``.

    ``store`` may be a path (created on demand), an open :class:`RunStore`,
    or ``None`` for an ephemeral in-memory pass.  ``backend``/``workers``
    pick the *experiment-level* scheduler (any :mod:`repro.fl.execution`
    backend, with its usual graceful serial fallback); ``client_backend``
    overrides each cell's inner client-execution engine and defaults to
    serial whenever the outer scheduler is parallel;  ``client_batch``
    overrides each cell's cohort batching knob
    (:attr:`~repro.fl.config.FederatedConfig.client_batch`) — like the
    inner backend it changes wall-clock only, never the store's bytes.  ``max_cells`` bounds
    how many pending cells this pass may execute (budgeted/smoke runs);
    the rest are reported as deferred.

    ``round_checkpoints`` (requires a store) makes every in-flight cell
    write a round-level session checkpoint under
    ``<store>/checkpoints/<fingerprint>/``: a killed sweep then resumes
    *mid-cell* from the last finished round instead of restarting the
    cell at round 0.  Checkpoints are deleted the moment their cell's
    record persists, and resume is bitwise exact, so the store's bytes
    are identical with the flag on or off.  ``checkpoint_every`` thins
    the writes (checkpoint after every k-th round) when per-round
    serialization costs more than k rounds of recompute are worth.

    ``telemetry`` (default on; requires a store to persist anything)
    makes every executed cell write a ``telemetry/<fingerprint>.jsonl``
    span/counter sidecar next to its record.  Sidecars are diagnostics
    living outside the hashed records — store bytes are identical with
    the flag on or off (the TEL001 invariant) — so the only reason to
    turn it off is the (small) tracing overhead itself.

    ``executor`` swaps the per-cell execution function (default:
    :func:`execute_cell`, a plain training run).  It must be a
    module-level callable (picklable) accepting ``(key, client_backend=,
    client_batch=, verbose=, checkpoint_dir=, checkpoint_every=)`` and
    returning a cell
    record with at least ``fingerprint``/``result``/``report`` — the
    embedding figures use this seam to persist t-SNE payloads alongside
    the training result.
    """
    if store is not None and not isinstance(store, RunStore):
        store = RunStore(store)
    if max_cells is not None and max_cells < 0:
        raise ValueError(f"max_cells must be >= 0 or None, got {max_cells}")
    if round_checkpoints and store is None:
        raise ValueError("round_checkpoints=True requires a store "
                         "(checkpoints live under the store root)")
    cells = sweep.cells()
    done = store.completed_fingerprints() if store is not None else set()

    pending: List[RunKey] = []
    skipped: List[str] = []
    scheduled: set = set()
    for key in cells:
        fingerprint = key.fingerprint
        if fingerprint in done:
            if fingerprint not in skipped:
                skipped.append(fingerprint)
            continue
        if fingerprint in scheduled:  # duplicate cells run once
            continue
        scheduled.add(fingerprint)
        pending.append(key)
    deferred: List[RunKey] = []
    if max_cells is not None and len(pending) > max_cells:
        pending, deferred = pending[:max_cells], pending[max_cells:]

    engine = resolve_backend(backend, workers=workers, chunk_size=1)
    inner = client_backend
    if inner is None and engine.name != "serial":
        inner = "serial"
    if store is not None:
        store.write_sweep(sweep)
    task = _CellTask(store_root=str(store.root) if store is not None else None,
                     client_backend=inner, client_batch=client_batch,
                     verbose=verbose,
                     round_checkpoints=round_checkpoints,
                     checkpoint_every=checkpoint_every,
                     telemetry=telemetry,
                     executor=executor if executor is not None else execute_cell)
    try:
        new_records = engine.map_clients(task, pending)
    finally:
        engine.close()

    by_fingerprint = {record["fingerprint"]: record for record in new_records}
    records: List[Optional[Dict]] = []
    for key in cells:
        fingerprint = key.fingerprint
        if fingerprint in by_fingerprint:
            records.append(by_fingerprint[fingerprint])
        elif store is not None and store.has(fingerprint):
            records.append(store.read_record(fingerprint))
        else:
            records.append(None)
    return SweepSummary(
        name=sweep.name,
        cells=cells,
        records=records,
        executed=[key.fingerprint for key in pending],
        skipped=skipped,
        deferred=[key.fingerprint for key in deferred],
    )
