"""JSON serialization for the run store.

Everything the :mod:`repro.runs` subsystem persists goes through this
module: numpy-to-Python coercion, canonical (hash-stable) encodings, the
atomic write-then-rename primitive, and (de)serializers for the harness
types (:class:`~repro.eval.harness.ExperimentSpec`/``Outcome``,
:class:`~repro.fl.history.RunResult`, fairness reports).

Determinism contract
--------------------
Cell records must be *byte-identical* across reruns and schedulers, so
nothing written here may depend on wall-clock time, hostnames, process
ids (beyond temp-file names that are renamed away), or dict iteration
order: every encoder sorts keys, and floats round-trip exactly through
``repr`` (Python's ``json`` uses the shortest representation that parses
back to the same double).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..eval.harness import ExperimentOutcome, ExperimentSpec, NonIIDSetting
from ..eval.metrics import FairnessReport, fairness_report
from ..fl.config import FederatedConfig
from ..fl.history import RunResult
from ..ioutil import atomic_write_text

__all__ = [
    "RECORD_SCHEMA",
    "EXECUTION_FIELDS",
    "FINGERPRINTED_FIELDS",
    "DEFAULT_OMITTED_FIELDS",
    "SWEEP_FINGERPRINTED_FIELDS",
    "SWEEP_COSMETIC_FIELDS",
    "to_jsonable",
    "canonical_json",
    "encode_record",
    "atomic_write_text",
    "setting_to_jsonable",
    "setting_from_jsonable",
    "config_to_jsonable",
    "config_from_jsonable",
    "spec_to_jsonable",
    "spec_from_jsonable",
    "outcome_to_jsonable",
    "outcome_from_jsonable",
    "save_outcome",
    "load_outcome",
    "outcome_from_records",
]

RECORD_SCHEMA = 1
"""Version stamp written into every cell record and outcome file."""

EXECUTION_FIELDS = ("backend", "workers", "shared_memory", "client_batch")
"""``FederatedConfig`` knobs that change wall-clock time but never results
(see :mod:`repro.fl.execution`).  They are excluded from content hashes so
a sweep resumed under a different scheduler still recognizes its cells."""

FINGERPRINTED_FIELDS = (
    "num_clients", "clients_per_round", "rounds", "local_epochs",
    "batch_size", "learning_rate", "momentum", "weight_decay",
    "personalization_epochs", "personalization_lr",
    "personalization_batch_size", "test_fraction", "num_novel_clients",
    "seed", "availability", "aggregation", "aggregation_buffer",
    "staleness_decay",
)
"""``FederatedConfig`` knobs that determine results and therefore hash into
every :class:`~repro.runs.spec.RunKey` fingerprint.  Together with
:data:`EXECUTION_FIELDS` this classifies *every* config field — the FPR001
invariant rule (``repro check``) fails the build if a new field is added
without deciding which list it belongs to."""

DEFAULT_OMITTED_FIELDS = ("availability", "aggregation",
                          "aggregation_buffer", "staleness_decay")
"""Fingerprinted config fields omitted from serialized payloads while at
their defaults (the ``RunKey.extras`` precedent): the population-plane
knobs landed after stores already existed, so a default-valued knob must
not shift any pre-existing fingerprint or checkpoint context."""

SWEEP_FINGERPRINTED_FIELDS = (
    "methods", "settings", "datasets", "seeds", "config", "variants",
    "availability", "method_overrides", "dataset_kwargs", "encoder",
    "encoder_width", "encoder_hidden_dims", "extras",
)
"""``SweepSpec`` fields that flow into each expanded cell's hashed payload.
``variants`` is fingerprinted through its *overrides*; the cosmetic variant
labels are excluded by :meth:`~repro.runs.spec.RunKey.semantic_payload`."""

SWEEP_COSMETIC_FIELDS = ("name",)
"""``SweepSpec`` fields that never reach a fingerprint (labels only).
With :data:`SWEEP_FINGERPRINTED_FIELDS` this classifies every spec field —
enforced by the FPR002 invariant rule."""


def to_jsonable(value):
    """Recursively coerce numpy scalars/arrays (and tuples) to JSON types."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return value


def canonical_json(payload) -> str:
    """The hash-stable encoding: sorted keys, no whitespace, exact floats."""
    return json.dumps(to_jsonable(payload), sort_keys=True, separators=(",", ":"),
                      allow_nan=True)


def encode_record(record: Dict) -> str:
    """The on-disk encoding: sorted keys, indented for greppability."""
    return json.dumps(to_jsonable(record), sort_keys=True, indent=2) + "\n"


# ``atomic_write_text`` moved to :mod:`repro.ioutil` (session checkpoints
# share the same write-then-rename discipline); re-exported here for
# compatibility via the import above.


# ----------------------------------------------------------------------
# Harness-type serializers
# ----------------------------------------------------------------------
def setting_to_jsonable(setting: NonIIDSetting) -> Dict:
    # ``parameter`` is coerced to float so quantity settings hash the same
    # whether built with 2 or 2.0.
    return {
        "kind": setting.kind,
        "parameter": float(setting.parameter),
        "samples_per_client": int(setting.samples_per_client),
    }


def setting_from_jsonable(payload: Dict) -> NonIIDSetting:
    return NonIIDSetting(payload["kind"], float(payload["parameter"]),
                         int(payload["samples_per_client"]))


_OMITTED_DEFAULTS = {
    field.name: field.default for field in dataclass_fields(FederatedConfig)
    if field.name in DEFAULT_OMITTED_FIELDS
}


def config_to_jsonable(config: FederatedConfig, include_execution: bool = True) -> Dict:
    payload = to_jsonable(asdict(config))
    if not include_execution:
        for name in EXECUTION_FIELDS:
            payload.pop(name, None)
    # Population-plane knobs serialize only when set: a default-valued
    # knob must keep old fingerprints/checkpoint contexts byte-stable.
    # (asdict turns a set AvailabilitySpec into a dict != None, so it
    # survives; config_from_jsonable coerces it back.)
    for name, default in _OMITTED_DEFAULTS.items():
        if name in payload and payload[name] == default:
            payload.pop(name)
    return payload


def config_from_jsonable(payload: Dict) -> FederatedConfig:
    # Execution fields may be absent (canonical form); defaults fill them in.
    return FederatedConfig(**payload)


def spec_to_jsonable(spec: ExperimentSpec) -> Dict:
    return {
        "dataset": spec.dataset,
        "setting": setting_to_jsonable(spec.setting),
        "config": config_to_jsonable(spec.config),
        "methods": list(spec.methods),
        "encoder": spec.encoder,
        "encoder_width": int(spec.encoder_width),
        "encoder_hidden_dims": [int(dim) for dim in spec.encoder_hidden_dims],
        "dataset_kwargs": to_jsonable(spec.dataset_kwargs),
        "method_overrides": to_jsonable(spec.method_overrides),
        "seed": int(spec.seed),
        "name": spec.name,
    }


def spec_from_jsonable(payload: Dict) -> ExperimentSpec:
    return ExperimentSpec(
        dataset=payload["dataset"],
        setting=setting_from_jsonable(payload["setting"]),
        config=config_from_jsonable(payload["config"]),
        methods=list(payload["methods"]),
        encoder=payload.get("encoder", "mlp"),
        encoder_width=int(payload.get("encoder_width", 8)),
        encoder_hidden_dims=tuple(payload.get("encoder_hidden_dims", (64, 32))),
        dataset_kwargs=dict(payload.get("dataset_kwargs", {})),
        method_overrides={k: dict(v)
                          for k, v in payload.get("method_overrides", {}).items()},
        seed=int(payload.get("seed", 0)),
        name=payload.get("name", ""),
    )


def outcome_to_jsonable(outcome: ExperimentOutcome) -> Dict:
    payload = {
        "schema": RECORD_SCHEMA,
        "spec": spec_to_jsonable(outcome.spec),
        "results": {name: result.to_json()
                    for name, result in outcome.results.items()},
        "reports": {name: to_jsonable(report.as_dict())
                    for name, report in outcome.reports.items()},
    }
    if outcome.novel_reports:
        payload["novel_reports"] = {name: to_jsonable(report.as_dict())
                                    for name, report in outcome.novel_reports.items()}
    return payload


def outcome_from_jsonable(payload: Dict) -> ExperimentOutcome:
    return ExperimentOutcome(
        spec=spec_from_jsonable(payload["spec"]),
        results={name: RunResult.from_json(result)
                 for name, result in payload["results"].items()},
        reports={name: FairnessReport.from_dict(report)
                 for name, report in payload["reports"].items()},
        novel_reports={name: FairnessReport.from_dict(report)
                       for name, report in payload.get("novel_reports", {}).items()},
    )


def save_outcome(outcome: ExperimentOutcome, path: Union[str, Path]) -> Path:
    """Persist one ``ExperimentOutcome`` as JSON (``repro run --out``)."""
    return atomic_write_text(path, encode_record(outcome_to_jsonable(outcome)))


def load_outcome(path: Union[str, Path]) -> ExperimentOutcome:
    with open(path) as stream:
        return outcome_from_jsonable(json.load(stream))


def outcome_from_records(spec: ExperimentSpec,
                         records: Sequence[Optional[Dict]]) -> ExperimentOutcome:
    """Reassemble a multi-method ``ExperimentOutcome`` from cell records.

    ``records`` are store records (one per method of ``spec``); fairness
    reports are *recomputed* from the stored accuracy vectors rather than
    read back, so an outcome rebuilt from the store is bit-for-bit what
    :func:`~repro.eval.harness.run_experiment` would have returned.
    """
    results: Dict[str, RunResult] = {}
    reports: Dict[str, FairnessReport] = {}
    novel_reports: Dict[str, FairnessReport] = {}
    missing: List[str] = []
    by_method: Dict[str, Dict] = {}
    for record in records:
        if record is None:
            continue
        method = record["key"]["method"]
        if method in by_method:
            # Records spanning seeds/variants would silently last-win into
            # one outcome otherwise — make the caller slice first.
            raise ValueError(
                f"multiple records for method '{method}'; pass exactly one "
                "record per method (filter by seed/variant before assembling)")
        by_method[method] = record
    for method in spec.methods:
        record = by_method.get(method)
        if record is None:
            missing.append(method)
            continue
        result = RunResult.from_json(record["result"])
        results[method] = result
        reports[method] = fairness_report(result.accuracy_vector())
        if result.novel_accuracies:
            novel_reports[method] = fairness_report(result.accuracy_vector(novel=True))
    if missing:
        raise KeyError(f"no stored records for methods {missing}; "
                       f"run the sweep first (repro sweep)")
    return ExperimentOutcome(spec=spec, results=results, reports=reports,
                             novel_reports=novel_reports)
