"""``repro.runs`` — sweep orchestration with a persistent, resumable store.

The paper's artifacts are grids of independent experiment cells (method x
non-i.i.d. setting x seed).  This subsystem makes such grids declarative
(:class:`SweepSpec`), content-addressed (:class:`RunKey` fingerprints),
persistent (:class:`RunStore`: one JSON record per cell, atomic writes),
and schedulable (:func:`run_sweep`: experiment-level parallelism over the
:mod:`repro.fl.execution` backends, resuming past finished cells).
"""

from .scheduler import (
    SweepSummary,
    cell_checkpoint_dir,
    execute_cell,
    make_record,
    run_sweep,
)
from .serialize import (
    EXECUTION_FIELDS,
    RECORD_SCHEMA,
    atomic_write_text,
    canonical_json,
    encode_record,
    load_outcome,
    outcome_from_jsonable,
    outcome_from_records,
    outcome_to_jsonable,
    save_outcome,
    spec_from_jsonable,
    spec_to_jsonable,
    to_jsonable,
)
from .spec import FINGERPRINT_LENGTH, RunKey, SweepSpec, SweepVariant
from .store import ARRAYS_KEY, RunStore, TIMING_FIELDS

__all__ = [
    "SweepSpec",
    "SweepVariant",
    "RunKey",
    "RunStore",
    "ARRAYS_KEY",
    "run_sweep",
    "execute_cell",
    "make_record",
    "cell_checkpoint_dir",
    "SweepSummary",
    "TIMING_FIELDS",
    "outcome_from_records",
    "outcome_to_jsonable",
    "outcome_from_jsonable",
    "save_outcome",
    "load_outcome",
    "spec_to_jsonable",
    "spec_from_jsonable",
    "to_jsonable",
    "canonical_json",
    "encode_record",
    "atomic_write_text",
    "RECORD_SCHEMA",
    "EXECUTION_FIELDS",
    "FINGERPRINT_LENGTH",
]
