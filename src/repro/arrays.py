"""``.npcol`` — a binary columnar container for named numpy arrays.

One file holds an ordered set of named columns, each a raw, dtype- and
shape-tagged array, laid out so readers can map it without parsing or
copying (see docs/checkpoint-format.md for the byte-level diagram)::

    [ magic (8) | header_len u64 LE (8) | header JSON | pad to 64 ]
    [ column payloads, each 64-byte aligned, in directory order    ]
    [ footer: magic (8) | body_len u64 LE (8) | crc32 u32 LE | pad ]

The header JSON carries the schema version and the column directory —
``(name, dtype.str, shape, offset, nbytes)`` per column, offsets relative
to the start of the file.  ``dtype.str`` preserves byte order, so columns
round-trip *bitwise*: what :func:`read_columns` returns compares exactly
(dtype, shape, NaN payloads and all) with what :func:`write_columns` was
given.  The footer records the body length and its CRC-32, so a
truncated, torn, or bit-flipped file fails loudly on open with a typed
:class:`CorruptArrayFile` — never a silent misread.

Files are written via :func:`repro.ioutil.atomic_write_bytes` (the same
write-then-``os.replace`` discipline as every persisted artifact in this
repo), so on-disk containers are all-or-nothing.  The in-memory pair
:func:`pack_columns` / :func:`unpack_columns` is the same format without
the filesystem — the process execution backend ships per-client
algorithm state as one packed buffer instead of a pickled tree of
ndarrays (see ``repro.fl.session.codec.PackedState``).

This module is the sanctioned array-persistence primitive (invariant
ARR001 in docs/invariants.md): persistence-layer code stores arrays
through it, not through ad-hoc ``tobytes``/``np.save``/JSON float lists.
"""

from __future__ import annotations

import json
import mmap as _mmap
import zlib
from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

from .ioutil import atomic_write_bytes

__all__ = [
    "ARRAY_SCHEMA",
    "CorruptArrayFile",
    "pack_columns",
    "unpack_columns",
    "write_columns",
    "read_columns",
]

ARRAY_SCHEMA = 1
"""Version stamp written into every container header."""

MAGIC = b"\x93NPCOL1\n"
FOOTER_MAGIC = b"NPCOLEND"
SUFFIX = ".npcol"

_ALIGNMENT = 64
_HEADER_FIXED = len(MAGIC) + 8  # magic + header_len
_FOOTER_SIZE = 24  # magic (8) + body_len u64 (8) + crc32 u32 (4) + pad (4)


class CorruptArrayFile(ValueError):
    """A container failed validation: truncated, torn, bit-flipped, or
    structurally inconsistent.  Raised eagerly on open — a corrupt file
    never yields arrays."""


def _align(offset: int) -> int:
    return -(-offset // _ALIGNMENT) * _ALIGNMENT


def _normalized(name: str, array) -> np.ndarray:
    value = np.asarray(array)
    if value.dtype.hasobject:
        raise TypeError(f"column {name!r}: cannot store object-dtype arrays")
    # C-contiguous raw bytes; dtype.str keeps the byte order, so even
    # non-native-endian inputs round-trip with their dtype intact.  The
    # reshape undoes ascontiguousarray's promotion of 0-d inputs to 1-d.
    return np.ascontiguousarray(value).reshape(value.shape)


def pack_columns(columns: Mapping[str, "np.ndarray"]) -> bytes:
    """Serialize named arrays into one ``.npcol`` container (as bytes).

    Column order is the mapping's insertion order and is preserved by
    :func:`unpack_columns`; packing is deterministic, so equal inputs
    produce equal bytes.  Non-contiguous and F-ordered inputs are
    normalized to C-contiguous; 0-d and empty arrays are fine.
    """
    arrays = {str(name): _normalized(name, value)
              for name, value in columns.items()}
    if len(arrays) != len(columns):
        raise ValueError("column names collide after str() normalization")

    # Lay out payloads first so the directory can carry real offsets; the
    # header length depends on the directory text, so iterate: offsets are
    # relative to the aligned end of the header, which only moves in
    # 64-byte steps, so one repair pass always converges.
    def directory(payload_start: int):
        entries, offset = [], payload_start
        for name, value in arrays.items():
            offset = _align(offset)
            entries.append([name, value.dtype.str, list(value.shape),
                            offset, int(value.nbytes)])
            offset += value.nbytes
        return entries, offset

    payload_start = _align(_HEADER_FIXED)
    for _ in range(4):
        entries, payload_end = directory(payload_start)
        header = json.dumps({"schema": ARRAY_SCHEMA, "columns": entries},
                            separators=(",", ":")).encode()
        new_start = _align(_HEADER_FIXED + len(header))
        if new_start == payload_start:
            break
        payload_start = new_start
    else:  # pragma: no cover - the loop converges in <= 2 passes
        raise RuntimeError("npcol header layout failed to converge")

    body = bytearray(payload_end)
    body[:len(MAGIC)] = MAGIC
    body[len(MAGIC):_HEADER_FIXED] = len(header).to_bytes(8, "little")
    body[_HEADER_FIXED:_HEADER_FIXED + len(header)] = header
    for (name, _dtype, _shape, offset, nbytes), value in zip(entries,
                                                             arrays.values()):
        body[offset:offset + nbytes] = value.tobytes()
    crc = zlib.crc32(body)
    footer = (FOOTER_MAGIC + len(body).to_bytes(8, "little")
              + crc.to_bytes(4, "little") + b"\x00" * 4)
    return bytes(body) + footer


def _fail(reason: str) -> None:
    raise CorruptArrayFile(f"corrupt npcol container: {reason}")


def _validate(buffer) -> list:
    """Check magic, footer, checksum and directory; return the directory."""
    view = memoryview(buffer)
    total = len(view)
    if total < _align(_HEADER_FIXED) + _FOOTER_SIZE:
        _fail(f"file too short ({total} bytes)")
    if bytes(view[:len(MAGIC)]) != MAGIC:
        _fail("bad magic (not an npcol file, or its head was overwritten)")
    footer = bytes(view[total - _FOOTER_SIZE:])
    if footer[:len(FOOTER_MAGIC)] != FOOTER_MAGIC:
        _fail("bad footer magic (truncated or torn write)")
    body_len = int.from_bytes(footer[8:16], "little")
    if body_len != total - _FOOTER_SIZE:
        _fail(f"footer records a {body_len}-byte body but the file holds "
              f"{total - _FOOTER_SIZE}")
    recorded_crc = int.from_bytes(footer[16:20], "little")
    actual_crc = zlib.crc32(view[:body_len])
    if recorded_crc != actual_crc:
        _fail(f"checksum mismatch (recorded {recorded_crc:#010x}, "
              f"computed {actual_crc:#010x})")
    header_len = int.from_bytes(view[len(MAGIC):_HEADER_FIXED], "little")
    if _HEADER_FIXED + header_len > body_len:
        _fail(f"header length {header_len} overruns the body")
    try:
        header = json.loads(bytes(view[_HEADER_FIXED:
                                       _HEADER_FIXED + header_len]))
    except ValueError:
        _fail("header is not valid JSON")
    if not isinstance(header, dict) or header.get("schema") != ARRAY_SCHEMA:
        _fail(f"unsupported container schema "
              f"{header.get('schema') if isinstance(header, dict) else header!r} "
              f"(this build reads schema {ARRAY_SCHEMA})")
    entries = header.get("columns")
    if not isinstance(entries, list):
        _fail("header carries no column directory")
    seen = set()
    for entry in entries:
        try:
            name, dtype_str, shape, offset, nbytes = entry
            dtype = np.dtype(dtype_str)
            shape = tuple(int(dim) for dim in shape)
            offset, nbytes = int(offset), int(nbytes)
        except (TypeError, ValueError):
            _fail(f"malformed directory entry {entry!r}")
        if name in seen:
            _fail(f"duplicate column name {name!r}")
        seen.add(name)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if dtype.itemsize * count != nbytes:
            _fail(f"column {name!r}: dtype {dtype_str} x shape {shape} is "
                  f"{dtype.itemsize * count} bytes, directory says {nbytes}")
        if offset < _HEADER_FIXED + header_len or offset + nbytes > body_len:
            _fail(f"column {name!r} payload [{offset}, {offset + nbytes}) "
                  f"falls outside the body")
    return entries


def unpack_columns(buffer: Union[bytes, bytearray, memoryview],
                   writable: bool = False) -> Dict[str, "np.ndarray"]:
    """Deserialize a container into ``{name: array}``, validating first.

    Arrays are zero-copy views into ``buffer`` (read-only for immutable
    buffers).  ``writable=True`` copies the payload once into a fresh
    ``bytearray`` so callers that mutate state in place (restored client
    stores) get ordinary writable arrays.
    """
    entries = _validate(buffer)
    if writable and not isinstance(buffer, bytearray):
        buffer = bytearray(buffer)
    view = memoryview(buffer)
    columns: Dict[str, np.ndarray] = {}
    for name, dtype_str, shape, offset, nbytes in entries:
        dtype = np.dtype(dtype_str)
        shape = tuple(int(dim) for dim in shape)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        array = np.frombuffer(view[offset:offset + nbytes], dtype=dtype,
                              count=count).reshape(shape)
        columns[name] = array
    return columns


def write_columns(path: Union[str, Path],
                  columns: Mapping[str, "np.ndarray"]) -> Path:
    """Atomically persist ``columns`` as a ``.npcol`` file."""
    return atomic_write_bytes(path, pack_columns(columns))


def read_columns(path: Union[str, Path], mmap: bool = False
                 ) -> Dict[str, "np.ndarray"]:
    """Load a ``.npcol`` file, verifying magic, layout and checksum.

    ``mmap=False`` (default) reads eagerly and returns ordinary writable
    arrays.  ``mmap=True`` maps the file copy-on-write and returns
    *read-only* views — cheap for render paths that only look at the
    columns; the mapping lives as long as the returned arrays do, and
    ``os.replace`` of the underlying file never disturbs an open mapping.
    """
    path = Path(path)
    try:
        if mmap:
            with open(path, "rb") as stream:
                mapped = _mmap.mmap(stream.fileno(), 0,
                                    access=_mmap.ACCESS_READ)
            columns = unpack_columns(mapped)
            for array in columns.values():
                array.flags.writeable = False
            return columns
        return unpack_columns(path.read_bytes(), writable=True)
    except OSError as error:
        raise CorruptArrayFile(
            f"cannot read npcol container {path}: {error}") from error
