"""Terminal-friendly rendering of 2-D point sets.

The paper's figures are matplotlib scatter plots; in this offline
environment we render ASCII scatters (class id as glyph) and emit CSVs so
the data behind every figure is regenerable and plottable elsewhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ascii_scatter", "points_to_csv"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def ascii_scatter(
    points: np.ndarray,
    labels: Optional[np.ndarray] = None,
    width: int = 60,
    height: int = 24,
    title: str = "",
) -> str:
    """Render (n, 2) points as an ASCII grid; label ids become glyphs.

    Args:
        points: ``(n, 2)`` array of 2-D coordinates (any float range —
            the grid is normalized to the data's bounding box).
        labels: optional per-point integer class ids; each id maps to a
            glyph (``0-9a-z``, cycling); negative ids render as ``.``.
            ``None`` plots every point as glyph ``0``.
        width/height: character-grid size (minimum 8 x 4).
        title: optional line printed above the frame.

    Returns:
        The framed grid as one newline-joined string.  Rendering is
        deterministic — identical inputs produce identical text — and
        points landing on the same cell keep the last-drawn glyph
        (input order).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if points.shape[0] == 0:
        raise ValueError("no points to plot")
    if width < 8 or height < 4:
        raise ValueError("grid too small")
    labels = (np.zeros(points.shape[0], dtype=int) if labels is None
              else np.asarray(labels, dtype=int))
    mins = points.min(axis=0)
    spans = np.maximum(points.max(axis=0) - mins, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for (x, y), label in zip(points, labels):
        col = int((x - mins[0]) / spans[0] * (width - 1))
        row = int((1.0 - (y - mins[1]) / spans[1]) * (height - 1))
        glyph = _GLYPHS[label % len(_GLYPHS)] if label >= 0 else "."
        grid[row][col] = glyph
    lines = ([title] if title else []) + ["+" + "-" * width + "+"]
    lines += ["|" + "".join(row) + "|" for row in grid]
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def points_to_csv(points: np.ndarray, labels: Optional[np.ndarray] = None,
                  extra: Optional[dict] = None) -> str:
    """CSV dump of points (+ labels, + extra per-point columns).

    Args:
        points: ``(n, 2)`` coordinates; written as ``x,y`` with 5
            decimals (fixed precision keeps re-dumps byte-identical).
        labels: optional per-point values for a ``label`` column.
        extra: optional ``{column_name: values}`` of additional
            per-point columns, each of length ``n``; floats render with
            5 decimals, everything else via ``str``.

    Returns:
        The CSV text (header row first), newline-joined, no trailing
        newline.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    columns = ["x", "y"]
    series = [points[:, 0], points[:, 1]]
    if labels is not None:
        columns.append("label")
        series.append(np.asarray(labels))
    for name, values in (extra or {}).items():
        values = np.asarray(values)
        if values.shape[0] != points.shape[0]:
            raise ValueError(f"extra column '{name}' has wrong length")
        columns.append(name)
        series.append(values)
    rows = [",".join(columns)]
    for i in range(points.shape[0]):
        cells = []
        for values in series:
            value = values[i]
            cells.append(f"{value:.5f}" if isinstance(value, (float, np.floating))
                         else str(value))
        rows.append(",".join(cells))
    return "\n".join(rows)
