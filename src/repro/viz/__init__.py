"""``repro.viz`` — figure rendering without plotting dependencies.

Two renderers share the figure data:

* :mod:`repro.viz.svg` — standalone SVG documents (the ``repro figures``
  output format): multi-panel t-SNE grids, class legends, and the
  accuracy-fairness scatters;
* :mod:`repro.viz.scatter` — ASCII scatters and CSV dumps for terminals
  and logs.

Both are deterministic: identical inputs render identical bytes.
"""

from .scatter import ascii_scatter, points_to_csv
from .svg import (
    CLASS_COLORS,
    ScatterPanel,
    render_accuracy_fairness,
    render_panels,
    render_scatter,
    svg_escape,
)

__all__ = [
    "ascii_scatter",
    "points_to_csv",
    "CLASS_COLORS",
    "ScatterPanel",
    "render_panels",
    "render_scatter",
    "render_accuracy_fairness",
    "svg_escape",
]
