"""``repro.viz`` — ASCII scatter plots and CSV dumps for the figures."""

from .scatter import ascii_scatter, points_to_csv

__all__ = ["ascii_scatter", "points_to_csv"]
