"""Dependency-free SVG rendering of the paper's figures.

This module draws every visual artifact of the reproduction — the t-SNE
embedding panels of Figs. 1/2/5-8 and the accuracy-fairness scatters of
Figs. 3/4 — as standalone SVG documents, using nothing beyond numpy and
string formatting.  It is the rendering half of the store-backed figure
pipeline: ``repro figures`` feeds it records read from a
:class:`~repro.runs.RunStore` and writes the returned markup to disk.

Determinism contract
--------------------
Rendering is a pure function of its inputs: no timestamps, no random
ids, fixed-precision coordinate formatting (2 decimals), and all
iteration in sorted class order — so the same records always produce
byte-identical SVG files, and figure regeneration can be diffed.

Accessibility
-------------
Class identity is double-encoded (hue *and* marker shape), every figure
with ≥ 2 classes or series carries a legend, and the categorical hue
order below was chosen by running the palette validator: all ten slots
clear the lightness band, chroma floor, adjacent-pair CVD separation
(worst ΔE 9.1) and normal-vision floor on the light surface.  Text is
always ink-colored, never series-colored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CLASS_COLORS",
    "SERIES_COLORS",
    "SERIES_GROUP_NAMES",
    "ScatterPanel",
    "svg_escape",
    "render_panels",
    "render_scatter",
    "accuracy_fairness_panel",
    "render_accuracy_fairness",
    "render_accuracy_fairness_panels",
]

# Categorical hues, validated as a 10-slot ordering (see module docstring).
CLASS_COLORS = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#4a3aa7",  # violet
    "#9a6a00",  # ochre
    "#e87ba4",  # magenta
    "#008300",  # green
    "#0e9bb8",  # cyan
    "#e34948",  # red
)

# The first three slots validate all-pairs and are reserved for series
# grouping in the accuracy-fairness scatters (baselines / Calibre / pFL-SSL).
SERIES_COLORS = CLASS_COLORS[:3]

_SURFACE = "#fcfcfb"
_INK = "#0b0b0b"
_INK_SECONDARY = "#52514e"
_GRID = "#e7e6e3"
_FRAME = "#d5d4d0"
_FONT = "sans-serif"

# Marker shapes cycled per class — the secondary (non-color) encoding.
_SHAPES = ("circle", "square", "triangle", "diamond")


def svg_escape(text: str) -> str:
    """Escape ``text`` for use in SVG/XML content and attribute values."""
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _fmt(value: float) -> str:
    """Fixed-precision coordinate formatting (the determinism contract)."""
    return f"{float(value):.2f}"


def _marker(shape: str, cx: float, cy: float, r: float, fill: str) -> str:
    """One data marker at (cx, cy); ``shape`` is one of ``_SHAPES``."""
    if shape == "circle":
        return (f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
                f'fill="{fill}"/>')
    if shape == "square":
        side = r * 1.8
        return (f'<rect x="{_fmt(cx - side / 2)}" y="{_fmt(cy - side / 2)}" '
                f'width="{_fmt(side)}" height="{_fmt(side)}" fill="{fill}"/>')
    if shape == "triangle":
        h = r * 1.2
        points = (f"{_fmt(cx)},{_fmt(cy - h)} {_fmt(cx - h)},{_fmt(cy + h)} "
                  f"{_fmt(cx + h)},{_fmt(cy + h)}")
        return f'<polygon points="{points}" fill="{fill}"/>'
    if shape == "diamond":
        h = r * 1.4
        points = (f"{_fmt(cx)},{_fmt(cy - h)} {_fmt(cx + h)},{_fmt(cy)} "
                  f"{_fmt(cx)},{_fmt(cy + h)} {_fmt(cx - h)},{_fmt(cy)}")
        return f'<polygon points="{points}" fill="{fill}"/>'
    raise ValueError(f"unknown marker shape '{shape}'")


def class_style(class_id: int) -> Tuple[str, str]:
    """(hex color, marker shape) for a class id — hue and shape cycle at
    different periods, so nearby ids never share both."""
    class_id = int(class_id)
    return (CLASS_COLORS[class_id % len(CLASS_COLORS)],
            _SHAPES[class_id % len(_SHAPES)])


def _nice_ticks(lo: float, hi: float, target: int = 4) -> List[float]:
    """~``target`` round tick positions covering [lo, hi] (deterministic)."""
    if not math.isfinite(lo) or not math.isfinite(hi):
        return []
    if hi <= lo:
        return [lo]
    raw = (hi - lo) / max(target, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = next(m * magnitude for m in (1.0, 2.0, 2.5, 5.0, 10.0)
                if m * magnitude >= raw)
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-12:
        ticks.append(round(value, 10))
        value += step
    return ticks


def _fmt_tick(value: float) -> str:
    return f"{value:.6g}"


@dataclass
class ScatterPanel:
    """One scatter panel of a figure.

    ``points`` is (n, 2); ``labels`` assigns each point a class id that
    picks its hue *and* marker shape.  ``point_names`` (optional, same
    length as points) adds a direct text label beside each point — used
    by the accuracy-fairness panels where every point is a method.  With
    ``axes=True`` the panel draws tick marks, tick labels and a
    recessive grid (data coordinates are meaningful); without, only a
    frame is drawn (t-SNE coordinates carry no units).
    """

    points: np.ndarray
    labels: Optional[np.ndarray] = None
    title: str = ""
    subtitle: str = ""
    point_names: Optional[Sequence[str]] = None
    axes: bool = False
    x_label: str = ""
    y_label: str = ""
    marker_radius: float = 3.0

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be (n, 2)")
        if self.points.shape[0] == 0:
            raise ValueError("panel has no points")
        self.labels = (np.zeros(self.points.shape[0], dtype=int)
                       if self.labels is None
                       else np.asarray(self.labels, dtype=int))
        if self.labels.shape[0] != self.points.shape[0]:
            raise ValueError("labels length must match points")
        if (self.point_names is not None
                and len(self.point_names) != self.points.shape[0]):
            raise ValueError("point_names length must match points")


@dataclass
class _Box:
    """Pixel-space rectangle a panel draws into."""

    x: float
    y: float
    width: float
    height: float


def _data_ranges(points: np.ndarray, pad_fraction: float = 0.06
                 ) -> Tuple[float, float, float, float]:
    mins = points.min(axis=0)
    maxs = points.max(axis=0)
    spans = np.maximum(maxs - mins, 1e-9)
    pad = spans * pad_fraction
    return (mins[0] - pad[0], maxs[0] + pad[0],
            mins[1] - pad[1], maxs[1] + pad[1])


def _render_panel(panel: ScatterPanel, box: _Box) -> List[str]:
    """Render one panel into its pixel box; returns SVG fragments."""
    parts = [f'<g class="panel" transform="translate({_fmt(box.x)},{_fmt(box.y)})">']
    header = 0.0
    if panel.title:
        header += 14.0
        parts.append(f'<text x="0" y="{_fmt(header - 3)}" font-size="11" '
                     f'font-weight="600" fill="{_INK}">'
                     f"{svg_escape(panel.title)}</text>")
    if panel.subtitle:
        header += 12.0
        parts.append(f'<text x="0" y="{_fmt(header - 3)}" font-size="10" '
                     f'fill="{_INK_SECONDARY}">'
                     f"{svg_escape(panel.subtitle)}</text>")
    left = 40.0 if panel.axes else 0.0
    bottom = 28.0 if panel.axes else 0.0
    plot = _Box(left, header + 4, box.width - left, box.height - header - 4 - bottom)
    x_lo, x_hi, y_lo, y_hi = _data_ranges(panel.points)

    def to_px(x: float, y: float) -> Tuple[float, float]:
        px = plot.x + (x - x_lo) / (x_hi - x_lo) * plot.width
        py = plot.y + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot.height
        return px, py

    if panel.axes:
        for tick in _nice_ticks(x_lo, x_hi):
            px, _ = to_px(tick, y_lo)
            parts.append(f'<line x1="{_fmt(px)}" y1="{_fmt(plot.y)}" '
                         f'x2="{_fmt(px)}" y2="{_fmt(plot.y + plot.height)}" '
                         f'stroke="{_GRID}" stroke-width="1"/>')
            parts.append(f'<text x="{_fmt(px)}" y="{_fmt(plot.y + plot.height + 13)}" '
                         f'font-size="9" text-anchor="middle" '
                         f'fill="{_INK_SECONDARY}">{_fmt_tick(tick)}</text>')
        for tick in _nice_ticks(y_lo, y_hi):
            _, py = to_px(x_lo, tick)
            parts.append(f'<line x1="{_fmt(plot.x)}" y1="{_fmt(py)}" '
                         f'x2="{_fmt(plot.x + plot.width)}" y2="{_fmt(py)}" '
                         f'stroke="{_GRID}" stroke-width="1"/>')
            parts.append(f'<text x="{_fmt(plot.x - 4)}" y="{_fmt(py + 3)}" '
                         f'font-size="9" text-anchor="end" '
                         f'fill="{_INK_SECONDARY}">{_fmt_tick(tick)}</text>')
        if panel.x_label:
            parts.append(f'<text x="{_fmt(plot.x + plot.width / 2)}" '
                         f'y="{_fmt(plot.y + plot.height + 25)}" font-size="10" '
                         f'text-anchor="middle" fill="{_INK_SECONDARY}">'
                         f"{svg_escape(panel.x_label)}</text>")
        if panel.y_label:
            cx, cy = plot.x - 30, plot.y + plot.height / 2
            parts.append(f'<text x="{_fmt(cx)}" y="{_fmt(cy)}" font-size="10" '
                         f'text-anchor="middle" fill="{_INK_SECONDARY}" '
                         f'transform="rotate(-90 {_fmt(cx)} {_fmt(cy)})">'
                         f"{svg_escape(panel.y_label)}</text>")
    parts.append(f'<rect x="{_fmt(plot.x)}" y="{_fmt(plot.y)}" '
                 f'width="{_fmt(plot.width)}" height="{_fmt(plot.height)}" '
                 f'fill="none" stroke="{_FRAME}" stroke-width="1"/>')

    for i in range(panel.points.shape[0]):
        px, py = to_px(panel.points[i, 0], panel.points[i, 1])
        color, shape = class_style(int(panel.labels[i]))
        parts.append(_marker(shape, px, py, panel.marker_radius, color))

    if panel.point_names is not None:
        parts.extend(_direct_labels(panel, to_px, plot))
    parts.append("</g>")
    return parts


def _direct_labels(panel: ScatterPanel, to_px, plot: _Box) -> List[str]:
    """Direct text labels beside named points, greedily nudged downward so
    labels never overprint each other (deterministic: placement order is
    by ascending pixel y, then x, then name)."""
    order = sorted(
        range(panel.points.shape[0]),
        key=lambda i: (to_px(*panel.points[i])[1], to_px(*panel.points[i])[0],
                       str(panel.point_names[i])),
    )
    placed: List[Tuple[float, float, float]] = []  # (x_start, x_end, y)
    parts: List[str] = []
    for i in order:
        name = str(panel.point_names[i])
        px, py = to_px(panel.points[i, 0], panel.points[i, 1])
        width = 5.4 * len(name)
        lx = px + panel.marker_radius + 3
        if lx + width > plot.x + plot.width:  # flip left at the right edge
            lx = px - panel.marker_radius - 3 - width
        ly = py + 3
        while any(not (lx + width < ox_start or lx > ox_end)
                  and abs(ly - oy) < 10 for ox_start, ox_end, oy in placed):
            ly += 10.0
        placed.append((lx, lx + width, ly))
        parts.append(f'<text x="{_fmt(lx)}" y="{_fmt(ly)}" font-size="9" '
                     f'fill="{_INK}">{svg_escape(name)}</text>')
    return parts


def _legend(items: Sequence[Tuple[int, str]], width: float, y: float
            ) -> Tuple[List[str], float]:
    """A wrapping legend row of (class id, label) swatches; returns the
    fragments and the total legend height."""
    parts: List[str] = []
    x, row_y = 16.0, y
    row_height = 16.0
    for class_id, label in items:
        item_width = 18.0 + 5.8 * len(label)
        if x + item_width > width - 8 and x > 16.0:
            x, row_y = 16.0, row_y + row_height
        color, shape = class_style(class_id)
        parts.append(_marker(shape, x + 4, row_y + 5, 3.5, color))
        parts.append(f'<text x="{_fmt(x + 12)}" y="{_fmt(row_y + 9)}" '
                     f'font-size="10" fill="{_INK_SECONDARY}">'
                     f"{svg_escape(label)}</text>")
        x += item_width
    return parts, row_y + row_height - y


def render_panels(
    panels: Sequence[ScatterPanel],
    columns: Optional[int] = None,
    class_names: Optional[Dict[int, str]] = None,
    title: str = "",
    panel_width: float = 250.0,
    panel_height: float = 230.0,
    legend: bool = True,
) -> str:
    """Render a grid of scatter panels as one standalone SVG document.

    ``columns`` defaults to ``min(len(panels), 3)``.  With ``legend``
    (the default) a shared class legend is rendered under the grid; the
    class ids come from the union of all panels' labels, sorted, and
    ``class_names`` may map ids to display names (default ``class <id>``).
    The output is deterministic — see the module docstring.
    """
    panels = list(panels)
    if not panels:
        raise ValueError("no panels to render")
    if columns is None:
        columns = min(len(panels), 3)
    if columns < 1:
        raise ValueError("columns must be >= 1")
    rows = (len(panels) + columns - 1) // columns
    margin, gap = 16.0, 12.0
    header = 26.0 if title else 0.0
    width = margin * 2 + columns * panel_width + (columns - 1) * gap

    body: List[str] = []
    if title:
        body.append(f'<text x="{_fmt(margin)}" y="18" font-size="13" '
                    f'font-weight="600" fill="{_INK}">{svg_escape(title)}</text>')
    for index, panel in enumerate(panels):
        row, col = divmod(index, columns)
        box = _Box(margin + col * (panel_width + gap),
                   header + margin / 2 + row * (panel_height + gap),
                   panel_width, panel_height)
        body.extend(_render_panel(panel, box))

    grid_bottom = header + margin / 2 + rows * panel_height + (rows - 1) * gap
    legend_height = 0.0
    if legend:
        class_ids = sorted({int(label) for panel in panels
                            for label in np.unique(panel.labels)})
        if class_ids:
            names = class_names or {}
            items = [(cid, names.get(cid, f"class {cid}")) for cid in class_ids]
            fragments, legend_height = _legend(items, width, grid_bottom + 10)
            body.extend(fragments)
            legend_height += 10.0
    height = grid_bottom + legend_height + margin / 2

    return "\n".join([
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(width)}" '
        f'height="{_fmt(height)}" viewBox="0 0 {_fmt(width)} {_fmt(height)}" '
        f'font-family="{_FONT}">',
        f'<rect width="{_fmt(width)}" height="{_fmt(height)}" fill="{_SURFACE}"/>',
        *body,
        "</svg>",
    ]) + "\n"


def render_scatter(points: np.ndarray, labels: Optional[np.ndarray] = None,
                   title: str = "", subtitle: str = "", **kwargs) -> str:
    """One-panel convenience wrapper over :func:`render_panels`."""
    panel = ScatterPanel(points=points, labels=labels, title=title,
                         subtitle=subtitle)
    return render_panels([panel], columns=1, **kwargs)


def _series_group(method: str) -> int:
    """Series-color slot for a method name (0 baseline, 1 Calibre, 2 pFL-SSL).

    Only the first three categorical slots are used here — they are the
    ones validated under the all-pairs rule that scatter charts need."""
    if method.startswith("calibre-"):
        return 1
    if method.startswith("pfl-"):
        return 2
    return 0


SERIES_GROUP_NAMES = {0: "baselines", 1: "Calibre", 2: "pFL-SSL"}


def accuracy_fairness_panel(
    series: Sequence[Dict],
    title: str = "",
    subtitle: str = "",
    x_label: str = "mean accuracy",
    y_label: str = "accuracy variance",
) -> ScatterPanel:
    """One Fig. 3/4-style panel: a labeled point per method, mean vs.
    variance.

    ``series`` rows need ``method``/``mean``/``variance`` keys (the shape
    of :meth:`~repro.eval.harness.ExperimentOutcome.series`).  Methods
    are grouped into baselines / Calibre / pFL-SSL, colored with the
    three all-pairs-validated categorical slots, and every point carries
    a direct method label (the relief for low-contrast hues).  Rows are
    sorted by method name, so rendering is independent of dict order.
    Compose panels with :func:`render_panels`, passing
    :data:`SERIES_GROUP_NAMES` entries as ``class_names``.
    """
    rows = sorted(series, key=lambda row: str(row["method"]))
    if not rows:
        raise ValueError("no series rows to plot")
    points = np.asarray([[float(row["mean"]), float(row["variance"])]
                         for row in rows])
    labels = np.asarray([_series_group(str(row["method"])) for row in rows])
    names = [str(row["method"]) for row in rows]
    return ScatterPanel(points=points, labels=labels, point_names=names,
                        title=title, subtitle=subtitle,
                        axes=True, x_label=x_label, y_label=y_label,
                        marker_radius=4.0)


def render_accuracy_fairness_panels(
    panels: Sequence[ScatterPanel],
    title: str = "",
    panel_width: float = 540.0,
    panel_height: float = 380.0,
) -> str:
    """Compose :func:`accuracy_fairness_panel` panels side by side into
    one SVG document with the shared series-group legend (the Fig. 4
    layout: training clients beside novel clients)."""
    groups = sorted({int(label) for panel in panels
                     for label in np.unique(panel.labels)})
    return render_panels(
        panels, columns=len(panels), title=title,
        class_names={gid: SERIES_GROUP_NAMES[gid] for gid in groups},
        panel_width=panel_width, panel_height=panel_height,
    )


def render_accuracy_fairness(
    series: Sequence[Dict],
    title: str = "",
    x_label: str = "mean accuracy",
    y_label: str = "accuracy variance",
    panel_width: float = 540.0,
    panel_height: float = 380.0,
) -> str:
    """A standalone one-panel accuracy-fairness SVG (see
    :func:`accuracy_fairness_panel`).  The fair-and-accurate region of
    the paper's claim is the bottom-right: high mean, low variance."""
    panel = accuracy_fairness_panel(series, x_label=x_label, y_label=y_label)
    return render_accuracy_fairness_panels(
        [panel], title=title,
        panel_width=panel_width, panel_height=panel_height,
    )
