"""``repro.manifold`` — exact t-SNE for the paper's qualitative figures."""

from .tsne import TSNE, conditional_probabilities, silhouette_score, tsne_embed

__all__ = ["TSNE", "tsne_embed", "conditional_probabilities", "silhouette_score"]
