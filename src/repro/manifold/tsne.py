"""Exact t-SNE (van der Maaten & Hinton, 2008).

The paper's qualitative results (Figs. 1, 2, 5, 6, 7, 8) are 2-D t-SNE
embeddings of encoder representations.  sklearn is unavailable offline, so
this module implements exact t-SNE: perplexity calibration by per-point
binary search over Gaussian bandwidths, then KL-divergence gradient descent
with momentum and early exaggeration.  Exact (O(n^2)) computation is fine at
the few-hundred-point scale of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TSNE", "tsne_embed", "conditional_probabilities", "silhouette_score"]


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sq = (x**2).sum(axis=1)
    dist = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(dist, 0.0)
    return np.maximum(dist, 0.0)


def _entropy_and_probs(distances_row: np.ndarray, beta: float):
    """Shannon entropy (nats) and probabilities for one point at bandwidth beta."""
    exponent = -distances_row * beta
    exponent -= exponent.max()
    probs = np.exp(exponent)
    total = probs.sum()
    if total <= 0:
        return 0.0, np.zeros_like(probs)
    probs = probs / total
    positive = probs[probs > 1e-12]
    entropy = float(-(positive * np.log(positive)).sum())
    return entropy, probs


def conditional_probabilities(
    distances: np.ndarray, perplexity: float, tolerance: float = 1e-5,
    max_steps: int = 50,
) -> np.ndarray:
    """Row-stochastic P with each row's perplexity matched by binary search.

    Args:
        distances: ``(n, n)`` squared pairwise distances in the input
            space (diagonal ignored).
        perplexity: target perplexity (effective neighbor count); must
            be ``< n``.
        tolerance: entropy tolerance (nats) ending each row's search.
        max_steps: binary-search iteration cap per row.

    Returns:
        ``(n, n)`` conditional probabilities ``p(j|i)`` with a zero
        diagonal.  Fully deterministic — no randomness is involved.
    """
    n = distances.shape[0]
    if perplexity >= n:
        raise ValueError(f"perplexity {perplexity} must be < number of points {n}")
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        row = distances[i].copy()
        row[i] = np.inf
        beta, beta_min, beta_max = 1.0, 0.0, np.inf
        entropy, probs = _entropy_and_probs(row, beta)
        for _ in range(max_steps):
            if abs(entropy - target_entropy) < tolerance:
                break
            if entropy > target_entropy:
                beta_min = beta
                beta = beta * 2.0 if np.isinf(beta_max) else (beta + beta_max) / 2.0
            else:
                beta_max = beta
                beta = beta / 2.0 if beta_min == 0.0 else (beta + beta_min) / 2.0
            entropy, probs = _entropy_and_probs(row, beta)
        probabilities[i] = probs
        probabilities[i, i] = 0.0
    return probabilities


@dataclass
class TSNE:
    """Configured t-SNE embedder (call :meth:`fit_transform`).

    Determinism: the only randomness is the embedding's Gaussian
    initialization, drawn from ``np.random.default_rng(seed)`` — with a
    fixed ``seed`` and identical float64 inputs, :meth:`fit_transform`
    is bit-for-bit reproducible across runs and schedulers.  That is
    what lets the figure pipeline persist embeddings in the run store
    and regenerate byte-identical SVGs from the records alone.
    """

    n_components: int = 2
    perplexity: float = 20.0
    learning_rate: float = 100.0
    n_iterations: int = 400
    early_exaggeration: float = 12.0
    exaggeration_iterations: int = 80
    momentum_start: float = 0.5
    momentum_final: float = 0.8
    seed: int = 0

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed ``x`` into ``n_components`` dimensions.

        Args:
            x: ``(n, d)`` input features, ``n >= 5``.  The effective
                perplexity is clamped to ``(n - 1) / 3``.

        Returns:
            ``(n, n_components)`` float64 embedding, centered on the
            origin.  Deterministic for a fixed ``seed`` (see class
            docstring).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("t-SNE expects (n, d) input")
        n = x.shape[0]
        if n < 5:
            raise ValueError("need at least 5 points")
        perplexity = min(self.perplexity, (n - 1) / 3.0)

        distances = _pairwise_sq_distances(x)
        conditional = conditional_probabilities(distances, perplexity)
        joint = (conditional + conditional.T) / (2.0 * n)
        joint = np.maximum(joint, 1e-12)

        rng = np.random.default_rng(self.seed)
        embedding = 1e-4 * rng.standard_normal((n, self.n_components))
        velocity = np.zeros_like(embedding)
        gains = np.ones_like(embedding)

        p_effective = joint * self.early_exaggeration
        for iteration in range(self.n_iterations):
            if iteration == self.exaggeration_iterations:
                p_effective = joint
            momentum = (
                self.momentum_start
                if iteration < self.exaggeration_iterations
                else self.momentum_final
            )

            emb_dist = _pairwise_sq_distances(embedding)
            student = 1.0 / (1.0 + emb_dist)
            np.fill_diagonal(student, 0.0)
            q = student / max(student.sum(), 1e-12)
            q = np.maximum(q, 1e-12)

            coeff = (p_effective - q) * student
            grad = 4.0 * (
                np.diag(coeff.sum(axis=1)) @ embedding - coeff @ embedding
            )

            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - self.learning_rate * gains * grad
            embedding = embedding + velocity
            embedding = embedding - embedding.mean(axis=0)
        return embedding

    def kl_divergence(self, x: np.ndarray, embedding: np.ndarray) -> float:
        """KL(P || Q) of a fitted embedding (quality diagnostic).

        Args:
            x: the ``(n, d)`` inputs that were embedded.
            embedding: the ``(n, n_components)`` embedding to score.

        Returns:
            The (non-negative) KL divergence t-SNE minimizes; lower
            means the embedding preserves the input neighborhoods
            better.  Deterministic.
        """
        n = x.shape[0]
        distances = _pairwise_sq_distances(np.asarray(x, dtype=np.float64))
        conditional = conditional_probabilities(distances, min(self.perplexity, (n - 1) / 3.0))
        joint = np.maximum((conditional + conditional.T) / (2.0 * n), 1e-12)
        emb_dist = _pairwise_sq_distances(embedding)
        student = 1.0 / (1.0 + emb_dist)
        np.fill_diagonal(student, 0.0)
        q = np.maximum(student / max(student.sum(), 1e-12), 1e-12)
        return float((joint * np.log(joint / q)).sum())


def tsne_embed(x: np.ndarray, perplexity: float = 20.0, n_iterations: int = 400,
               seed: int = 0) -> np.ndarray:
    """One-call exact t-SNE to 2-D.

    Args:
        x: ``(n, d)`` features, ``n >= 5``.
        perplexity: target perplexity (clamped to ``(n - 1) / 3``).
        n_iterations: gradient-descent steps.
        seed: seeds the embedding initialization — the single source of
            randomness, so a fixed seed makes the output bit-exact.

    Returns:
        ``(n, 2)`` float64 embedding (see :class:`TSNE`).
    """
    return TSNE(perplexity=perplexity, n_iterations=n_iterations,
                seed=seed).fit_transform(x)


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient — the quantitative stand-in for the
    paper's visual "clear vs. fuzzy cluster boundaries" claims.

    Args:
        points: ``(n, d)`` coordinates (2-D t-SNE output or raw encoder
            features — the figures report both).
        labels: ``(n,)`` cluster assignment per point; at least two
            distinct values are required.

    Returns:
        The mean silhouette coefficient in ``[-1, 1]``; higher means
        tighter, better-separated clusters.  Points in singleton
        clusters contribute 0, matching sklearn.  Deterministic — a pure
        function of its inputs.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if unique.shape[0] < 2:
        raise ValueError("silhouette requires at least two clusters")
    distances = np.sqrt(_pairwise_sq_distances(points))
    n = points.shape[0]
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same_count = same.sum() - 1
        if same_count == 0:
            scores[i] = 0.0
            continue
        a = distances[i][same].sum() / same_count
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            members = labels == other
            b = min(b, distances[i][members].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())
