"""Prototype generation for Calibre (paper §IV-B, Algorithm 1).

Calibre "generates pseudo labels through a straightforward clustering
algorithm, such as KMeans, thereby the prototype vector for the k-th
cluster is calculated as the average of encodings assigned to this group."

Clustering runs on the *detached* encodings of both augmented views
(Algorithm 1 line 13: ``Kr = KMeans(z), z = [z_{2i-1}, z_{2i}]``); the
prototype tensors themselves are *differentiable* means so the regularizer
gradients flow back into the encoder through both the samples and their
prototypes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster import kmeans
from ..nn.tensor import Tensor

__all__ = ["ViewClusters", "cluster_views", "differentiable_prototypes",
           "average_prototype_distance"]


@dataclass
class ViewClusters:
    """KMeans pseudo-labels over the two views of a batch.

    ``centers`` are the (K, d) KMeans centroids (constants); ``labels_e``
    and ``labels_o`` assign each view's samples to clusters.
    """

    centers: np.ndarray
    labels_e: np.ndarray
    labels_o: np.ndarray

    @property
    def num_clusters(self) -> int:
        return self.centers.shape[0]


def cluster_views(
    z_e: Tensor,
    z_o: Tensor,
    num_clusters: int,
    rng: Optional[np.random.Generator] = None,
) -> ViewClusters:
    """KMeans over the concatenated (detached) encodings of both views."""
    if z_e.shape != z_o.shape:
        raise ValueError(f"view encodings disagree: {z_e.shape} vs {z_o.shape}")
    combined = np.concatenate([z_e.data, z_o.data], axis=0)
    result = kmeans(combined, num_clusters, rng=rng)
    n = z_e.shape[0]
    return ViewClusters(
        centers=result.centers,
        labels_e=result.labels[:n],
        labels_o=result.labels[n:],
    )


def differentiable_prototypes(
    features: Tensor, assignments: np.ndarray, num_clusters: int,
    fallback_centers: Optional[np.ndarray] = None,
) -> Tensor:
    """Per-cluster mean of ``features`` as a differentiable (K, d) tensor.

    Clusters with no members in this view fall back to the constant KMeans
    center (small SSL batches under non-i.i.d. data regularly under-fill
    clusters; training must not crash).
    """
    assignments = np.asarray(assignments)
    if assignments.shape[0] != features.shape[0]:
        raise ValueError("assignments must match features on N")
    membership = np.zeros((features.shape[0], num_clusters), dtype=features.data.dtype)
    membership[np.arange(assignments.shape[0]), assignments] = 1.0
    counts = membership.sum(axis=0)
    empty = counts == 0
    safe_counts = np.where(empty, 1.0, counts)
    sums = Tensor(membership).transpose() @ features  # (K, d)
    prototypes = sums / Tensor(safe_counts.reshape(-1, 1))
    if np.any(empty):
        if fallback_centers is None:
            raise ValueError("empty cluster with no fallback centers")
        mask = Tensor(np.where(empty, 0.0, 1.0).reshape(-1, 1).astype(features.data.dtype))
        fallback = Tensor(fallback_centers.astype(features.data.dtype))
        prototypes = prototypes * mask + fallback * (1.0 - mask)
    return prototypes


def average_prototype_distance(z: Tensor, clusters: ViewClusters) -> float:
    """Mean Euclidean distance between encodings and their assigned KMeans
    centers — the paper's *local divergence rate* reported to the server."""
    combined_labels = np.concatenate([clusters.labels_e, clusters.labels_o])
    if combined_labels.shape[0] == z.shape[0]:
        assigned = clusters.centers[combined_labels]
        data = z.data
    else:
        # z holds a single view; use its labels only.
        assigned = clusters.centers[clusters.labels_e]
        data = z.data
        if assigned.shape[0] != data.shape[0]:
            raise ValueError("encoding/label count mismatch")
    return float(np.linalg.norm(data - assigned, axis=1).mean())
