"""Divergence-aware server aggregation (paper §IV, contribution 2).

"Each client then computes the average distance between its samples and
their corresponding prototypes.  Such average distance can be effectively
used to measure the local divergence rate, which acts as a weighting factor
during the server aggregation."

The paper does not spell out the functional form of the weighting, so this
module implements the natural reading — clients whose representations sit
*closer* to their prototypes (lower divergence = cleaner local cluster
structure) contribute more to the aggregate — and records the choice:

    weight_c  ∝  n_c · exp(-η · d_c / mean(d))        (mode="softmax")
    weight_c  ∝  n_c / (ε + d_c / mean(d))            (mode="inverse")

Both reduce to plain FedAvg when all divergences are equal; η (temperature)
controls how aggressively divergent clients are down-weighted.  The
substitution is documented in DESIGN.md and exercised by the ablation
benchmark.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["divergence_weights"]


def divergence_weights(
    sample_counts: Sequence[float],
    divergences: Sequence[float],
    temperature: float = 1.0,
    mode: str = "softmax",
    eps: float = 1e-8,
) -> np.ndarray:
    """Aggregation weights from client sample counts and divergence rates.

    Returns weights normalized to sum to 1.  Non-finite or negative
    divergences are rejected; all-zero divergences degrade gracefully to
    sample-count (FedAvg) weighting.
    """
    counts = np.asarray(sample_counts, dtype=np.float64)
    divs = np.asarray(divergences, dtype=np.float64)
    if counts.shape != divs.shape:
        raise ValueError("sample_counts and divergences must align")
    if counts.size == 0:
        raise ValueError("need at least one client")
    if np.any(counts <= 0):
        raise ValueError("sample counts must be positive")
    if np.any(~np.isfinite(divs)) or np.any(divs < 0):
        raise ValueError("divergences must be finite and non-negative")
    if temperature < 0:
        raise ValueError("temperature must be non-negative")

    mean_div = divs.mean()
    if mean_div <= eps:
        weights = counts.copy()
    else:
        normalized = divs / mean_div
        if mode == "softmax":
            weights = counts * np.exp(-temperature * normalized)
        elif mode == "inverse":
            weights = counts / (eps + normalized * max(temperature, eps))
        else:
            raise ValueError(f"unknown divergence weighting mode '{mode}'")
    total = weights.sum()
    if total <= 0:
        raise ValueError("degenerate divergence weights")
    return weights / total
