"""Calibre: the paper's personalized-FL framework (§IV).

Calibre extends pFL-SSL with exactly the two mechanisms of the paper:

1. **Client-adaptive prototype regularizers** during the local update
   (Algorithm 1): the total loss becomes

       L = l_c + l_s + α (l_p + l_n),        α = 0.3 (§V-A)

   where l_s is the base SSL objective of the wrapped method and the other
   terms come from KMeans prototypes over the batch encodings
   (:mod:`repro.core.losses`).  ``use_ln``/``use_lp`` toggles reproduce the
   Table I ablation.

2. **Divergence-aware aggregation**: each update carries the client's
   average sample-to-prototype distance; the server turns those divergence
   rates into aggregation weights (:mod:`repro.core.divergence`).

``Calibre(SimCLR)``, ``Calibre(BYOL)``, … from the paper are obtained by
passing the corresponding ``ssl_name``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..baselines.pfl_ssl import PFLSSL
from ..fl.algorithm import ClientUpdate
from ..fl.config import FederatedConfig
from ..nn.serialize import StateDict, weighted_average
from ..ssl import SSLMethod, SSLOutputs
from .divergence import divergence_weights
from .losses import (
    prototype_classification_loss,
    prototype_contrastive_loss,
    prototype_meta_loss,
)
from .prototypes import cluster_views

__all__ = ["Calibre"]


class Calibre(PFLSSL):
    """The paper's framework, parameterized by the base SSL method."""

    def __init__(
        self,
        config: FederatedConfig,
        num_classes: int,
        encoder_factory,
        ssl_name: str = "simclr",
        alpha: float = 0.3,
        num_prototypes: Optional[int] = None,
        prototype_temperature: float = 0.5,
        use_ln: bool = True,
        use_lp: bool = True,
        use_lc: bool = True,
        divergence_temperature: float = 1.0,
        divergence_mode: str = "softmax",
        **kwargs,
    ):
        super().__init__(config, num_classes, encoder_factory, ssl_name=ssl_name, **kwargs)
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.name = f"calibre-{self.ssl_name}"
        self.alpha = alpha
        # The paper clusters with KMeans without fixing K; we default to the
        # task's class count, capped by what a batch can support.
        self.num_prototypes = num_prototypes if num_prototypes is not None else num_classes
        if self.num_prototypes < 2:
            raise ValueError("need at least two prototypes")
        self.prototype_temperature = prototype_temperature
        self.use_ln = use_ln
        self.use_lp = use_lp
        self.use_lc = use_lc
        self.divergence_temperature = divergence_temperature
        self.divergence_mode = divergence_mode

    # ------------------------------------------------------------------
    # Contribution 1: the calibrated local loss (Algorithm 1)
    # ------------------------------------------------------------------
    def local_loss(self, method: SSLMethod, outputs: SSLOutputs,
                   rng: np.random.Generator):
        loss = outputs.loss  # l_s
        clusters = cluster_views(outputs.z_e, outputs.z_o, self.num_prototypes, rng=rng)
        metrics: Dict[str, float] = {}

        if self.use_lc:
            l_c = prototype_classification_loss(outputs.z_e, clusters, view="e")
            loss = loss + l_c
            metrics["l_c"] = l_c.item()
        regularizer = None
        if self.use_ln:
            l_n = prototype_meta_loss(
                outputs.z_e, outputs.z_o, clusters, self.prototype_temperature
            )
            regularizer = l_n
            metrics["l_n"] = l_n.item()
        if self.use_lp:
            l_p = prototype_contrastive_loss(
                outputs.h_e, outputs.h_o, clusters, self.prototype_temperature
            )
            if l_p is not None:
                regularizer = l_p if regularizer is None else regularizer + l_p
                metrics["l_p"] = l_p.item()
        if regularizer is not None:
            loss = loss + self.alpha * regularizer

        # The local divergence rate reported to the server (mean distance of
        # this batch's encodings to their assigned prototypes).
        both = np.concatenate([outputs.z_e.data, outputs.z_o.data], axis=0)
        assigned = clusters.centers[
            np.concatenate([clusters.labels_e, clusters.labels_o])
        ]
        metrics["divergence"] = float(np.linalg.norm(both - assigned, axis=1).mean())
        return loss, metrics

    # ------------------------------------------------------------------
    # Contribution 2: divergence-aware aggregation
    # ------------------------------------------------------------------
    def aggregate(self, updates: Sequence[ClientUpdate],
                  global_state: StateDict, round_index: int) -> StateDict:
        if not updates:
            return global_state
        divergences = [u.metrics.get("divergence", 0.0) for u in updates]
        weights = divergence_weights(
            [u.weight for u in updates],
            divergences,
            temperature=self.divergence_temperature,
            mode=self.divergence_mode,
        )
        return weighted_average([u.state for u in updates], weights)
