"""Calibre's loss terms (paper §IV-B, Algorithm 1).

The total training-stage loss is ``L = l_c + l_s + α (l_p + l_n)``:

* ``l_s`` — the base SSL objective (NT-Xent for Calibre (SimCLR));
* ``l_n`` (:func:`prototype_meta_loss`) — Algorithm 1 line 17: each view-e
  encoding is pulled toward the prototype of its cluster (built from view-o
  encodings) and pushed from encodings of other clusters;
* ``l_p`` (:func:`prototype_contrastive_loss`) — lines 8-12: the two views'
  per-cluster prototypes of the projector outputs form positive pairs in an
  NT-Xent loss, shrinking prototype variance across augmentations;
* ``l_c`` (:func:`prototype_classification_loss`) — the prototypical-network
  term softmax(-d(z, v_k)) against pseudo-labels, maximizing I(x'; y'|θ_b)
  per Theorem 1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.losses import cross_entropy
from ..nn.tensor import Tensor
from ..ssl.losses import nt_xent
from .prototypes import ViewClusters, differentiable_prototypes

__all__ = [
    "prototype_meta_loss",
    "prototype_contrastive_loss",
    "prototype_classification_loss",
]


def prototype_meta_loss(
    z_e: Tensor,
    z_o: Tensor,
    clusters: ViewClusters,
    temperature: float = 0.5,
) -> Tensor:
    """L_n of Algorithm 1 (line 17).

    Prototypes ``v_k`` are differentiable means of view-o encodings per
    cluster; for every view-e encoding ``z_j`` in cluster k the loss is

        -log  exp(z_j · v_k / τ) / (exp(z_j · v_k / τ) +
              Σ_{a ∈ I_e, cluster(a) ≠ k} exp(z_a · v_k / τ))

    i.e. the positive is the sample-prototype affinity, the negatives are
    the affinities of *other clusters'* samples to the same prototype.
    Encodings and prototypes are L2-normalized for numerical stability.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    k = clusters.num_clusters
    prototypes = differentiable_prototypes(z_o, clusters.labels_o, k, clusters.centers)
    z_norm = F.normalize(z_e, axis=1)
    proto_norm = F.normalize(prototypes, axis=1)
    logits = (z_norm @ proto_norm.transpose()) / temperature  # (N, K)

    # exp with a detached global max subtracted for stability.
    shift = float(logits.data.max())
    exp_scores = (logits - shift).exp()  # (N, K)

    membership = np.zeros((z_e.shape[0], k), dtype=z_e.data.dtype)
    membership[np.arange(clusters.labels_e.shape[0]), clusters.labels_e] = 1.0
    member_t = Tensor(membership)

    positives = (exp_scores * member_t).sum(axis=1)  # exp(z_j . v_{k_j})
    column_total = exp_scores.sum(axis=0)  # (K,) over all view-e samples
    member_total = (exp_scores * member_t).sum(axis=0)  # (K,) same-cluster mass
    negatives_per_cluster = column_total - member_total  # exclude own cluster
    negatives = member_t @ negatives_per_cluster  # (N,) pick own cluster's denom
    losses = -(positives.log() - (positives + negatives).log())

    # Average within each cluster, then across clusters (the paper's
    # Σ_k (1/N_k) Σ_{j∈I_k^e} form).
    counts = membership.sum(axis=0)
    weights = np.zeros_like(counts)
    nonempty = counts > 0
    weights[nonempty] = 1.0 / counts[nonempty]
    per_sample_weight = membership @ weights  # 1/N_{k_j}
    total = (losses * Tensor(per_sample_weight)).sum()
    return total / max(int(nonempty.sum()), 1)


def prototype_contrastive_loss(
    h_e: Tensor,
    h_o: Tensor,
    clusters: ViewClusters,
    temperature: float = 0.5,
) -> Optional[Tensor]:
    """L_p of Algorithm 1 (lines 8-12).

    The per-cluster prototypes of the two views' projector outputs are
    contrasted with NT-Xent: matching clusters across views are positives,
    all other prototypes negatives.  Only clusters populated in *both*
    views participate; returns None when fewer than two such clusters exist
    (the caller skips the term for that batch).
    """
    k = clusters.num_clusters
    populated = np.intersect1d(np.unique(clusters.labels_e), np.unique(clusters.labels_o))
    if populated.shape[0] < 2:
        return None
    nu_e = differentiable_prototypes(h_e, clusters.labels_e, k, None
                                     if populated.shape[0] == k else _zeros_fallback(h_e, k))
    nu_o = differentiable_prototypes(h_o, clusters.labels_o, k, None
                                     if populated.shape[0] == k else _zeros_fallback(h_o, k))
    keep = populated.astype(np.int64)
    return nt_xent(nu_e[keep], nu_o[keep], temperature)


def _zeros_fallback(h: Tensor, k: int) -> np.ndarray:
    return np.zeros((k, h.shape[1]), dtype=h.data.dtype)


def prototype_classification_loss(
    z: Tensor,
    clusters: ViewClusters,
    view: str = "e",
) -> Tensor:
    """l_c: prototypical-networks classification against pseudo-labels.

    ``p(y' = k | x') = softmax(-d(z, v_k))`` with Euclidean distance to the
    (constant) KMeans centers; the pseudo-label is the sample's own cluster.
    """
    if view not in ("e", "o"):
        raise ValueError("view must be 'e' or 'o'")
    labels = clusters.labels_e if view == "e" else clusters.labels_o
    centers = Tensor(clusters.centers.astype(z.data.dtype))
    logits = -F.pairwise_sq_distances(z, centers)
    return cross_entropy(logits, labels)
