"""``repro.core`` — Calibre, the paper's primary contribution.

Prototype generation (KMeans pseudo-labels over both augmented views), the
three prototype loss terms of Algorithm 1, divergence-aware aggregation,
and the :class:`Calibre` federated algorithm wrapping any SSL method.
"""

from ..fl.client import derive_rng
from .calibre import Calibre
from .divergence import divergence_weights
from .losses import (
    prototype_classification_loss,
    prototype_contrastive_loss,
    prototype_meta_loss,
)
from .prototypes import (
    ViewClusters,
    average_prototype_distance,
    cluster_views,
    differentiable_prototypes,
)

__all__ = [
    "Calibre",
    "derive_rng",
    "divergence_weights",
    "prototype_meta_loss",
    "prototype_contrastive_loss",
    "prototype_classification_loss",
    "ViewClusters",
    "cluster_views",
    "differentiable_prototypes",
    "average_prototype_distance",
]
