"""Simulated-async server aggregation: FedBuff-style buffers, staleness.

The synchronous round loop waits for every sampled client, reorders
updates into dispatch order, and averages once — the CI bitwise
contract.  Real cross-device servers do not wait: they flush a buffer of
the ``K`` fastest updates as soon as it fills (FedBuff), down-weighting
whatever arrives late.  :class:`BufferedAccumulator` reproduces that
behaviour *deterministically*: client completion times are simulated
from the availability model's per-client speed multipliers and local
sample counts, so "who finished first" is a pure function of the run
config — the same updates flush in the same order on every backend.

Policy mapping (``FederatedConfig.aggregation``):

* ``"buffered"`` — FedBuff with ``aggregation_buffer``-sized flushes;
* ``"staleness"`` — the degenerate buffer of size 1, i.e. pure
  staleness-weighted sequential application;
* ``"sync"`` — not this module; the classic
  :class:`~repro.fl.algorithm.UpdateAccumulator`.

An update in the ``f``-th flush has staleness ``f`` (it arrived ``f``
server steps after the round's model was cut) and its weight is scaled
by ``(1 + f) ** -staleness_decay`` before the algorithm's own
``aggregate`` runs.  Each flush then moves the server model by its
population share: ``state <- (1 - r) * state + r * flushed`` with
``r = len(flush) / total_updates``, so a full single flush reduces
exactly to the synchronous path.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ...nn.serialize import StateDict, weighted_average
from ..algorithm import ClientUpdate, UpdateAccumulator

__all__ = ["BufferedAccumulator", "simulated_completion_order"]


def simulated_completion_order(durations: Sequence[float]) -> List[int]:
    """Positions ordered by simulated completion time.

    Ties break by input position, which keeps the order total and
    deterministic even for a homogeneous fleet (all durations equal
    reduces to dispatch order — and therefore to the sync reduction
    order).
    """
    return sorted(range(len(durations)),
                  key=lambda position: (float(durations[position]), position))


class BufferedAccumulator(UpdateAccumulator):
    """FedBuff-style buffered aggregation over simulated completion order.

    ``durations`` maps input position -> simulated duration (speed
    multiplier x local sample count, supplied by the session); positions
    without an entry default to ``0.0``.  Like the base class, the real
    combine happens at :meth:`finalize` from accepted slots only, so
    mid-round dropouts simply never enter a flush.
    """

    def __init__(self, algorithm, global_state: StateDict, round_index: int,
                 *, buffer_size: int, staleness_decay: float,
                 durations: Optional[Dict[int, float]] = None):
        super().__init__(algorithm, global_state, round_index)
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if staleness_decay < 0.0:
            raise ValueError("staleness_decay must be >= 0")
        self.buffer_size = int(buffer_size)
        self.staleness_decay = float(staleness_decay)
        self.durations: Dict[int, float] = dict(durations or {})
        self.staleness_by_position: Dict[int, int] = {}

    def finalize(self) -> StateDict:
        positions = sorted(self._slots)
        if not positions:
            return self.global_state
        ordered = simulated_completion_order(
            [self.durations.get(position, 0.0) for position in positions])
        arrival = [positions[index] for index in ordered]
        total = len(arrival)
        state = self.global_state
        for start in range(0, total, self.buffer_size):
            flush = arrival[start:start + self.buffer_size]
            flush_index = start // self.buffer_size
            scale = (1.0 + flush_index) ** (-self.staleness_decay)
            updates = []
            for position in flush:
                update = self._slots[position]
                self.staleness_by_position[position] = flush_index
                updates.append(replace(update, weight=update.weight * scale))
            flushed = self.algorithm.aggregate(updates, state, self.round_index)
            rate = len(flush) / total
            # One full flush is exactly the sync combine; partial flushes
            # move the server by their population share.
            state = flushed if rate >= 1.0 else weighted_average(
                [state, flushed], [1.0 - rate, rate])
        return state

    def total_staleness(self) -> int:
        """Sum of per-update staleness recorded by the last finalize."""
        return sum(self.staleness_by_position.values())
