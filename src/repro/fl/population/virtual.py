"""Virtual client populations: descriptors in, realized clients out.

A :class:`VirtualPopulation` holds the *recipe* for every client — a
:class:`ClientDescriptor` of ``(partition indices, generator seed)`` —
and realizes an actual :class:`~repro.fl.client.ClientData` only when a
client participates.  Realization is a pure function of ``(population
seed, client_id)`` via :func:`~repro.fl.client.derive_rng`, so a client
evicted from the cache and realized again later gets bitwise-identical
arrays, and resident memory stays O(active clients) instead of
O(population): a million-client population costs a ``range`` and a few
scalars until someone is sampled.

Two construction modes:

* **explicit partitions** — the classic :func:`build_federation` shape:
  per-client index arrays from a partitioner, carried in the descriptors;
* **derived** — ``num_clients`` + ``samples_per_client`` (optionally
  label-skewed with ``classes_per_client``): indices are *drawn* from the
  dataset at realization time, so descriptors are O(1) and the population
  scales to millions of clients.

Realized clients live in an LRU cache of ``max_resident`` entries,
pinned for the duration of a round (:meth:`realize_round` /
:meth:`end_round`).  Eviction syncs the client's persistent ``store``
back into the population (per-client algorithm state must survive
re-realization) and, when the shared-memory plane is enabled, closes the
client's shared segment so /dev/shm is bounded the same way RAM is.
Counters ``population.realized`` / ``population.evicted`` record cache
traffic on the ambient tracer.
"""

from __future__ import annotations

import hashlib
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ... import telemetry
from ...data.partition import stratified_split
from ...data.shm import SharedArrayStore, share_client_splits, shared_memory_available
from ...data.synthetic import DataSplit, SyntheticImageDataset
from ..client import ClientData, derive_rng, payload_nbytes

__all__ = ["ClientDescriptor", "VirtualPopulation"]

# Domain-separation tag for realization draws (index sampling, local
# splits, unlabeled shards).  Distinct from the sampler's participant
# stream and the availability streams; large enough to never collide
# with a round index in the (seed, round, client) coordinates.
_REALIZE_STREAM = 860_509


@dataclass(frozen=True)
class ClientDescriptor:
    """The O(bytes) stand-in for an unrealized client.

    Picklable and tiny — this is what :meth:`VirtualPopulation.payload_nbytes`
    measures for clients that never participated.  ``indices`` is ``None``
    in derived mode (the realization draw produces them) and the explicit
    partition array otherwise.
    """

    client_id: int
    seed: int
    num_samples: int
    indices: Optional[np.ndarray] = field(default=None, repr=False)


class VirtualPopulation:
    """Lazily-realized federation over one dataset.

    Parameters
    ----------
    dataset:
        The shared :class:`~repro.data.synthetic.SyntheticImageDataset`.
    num_clients:
        Population size (derived mode).  Mutually exclusive with
        ``partitions``.
    partitions:
        Per-client index arrays (explicit mode); the population size is
        ``len(partitions)``.
    samples_per_client:
        Local sample count drawn per client in derived mode.
    classes_per_client:
        Optional label skew in derived mode: each client draws its
        samples from this many classes only.
    test_fraction, seed:
        As in :func:`~repro.fl.client.build_federation`; realization uses
        ``derive_rng(seed, _REALIZE_STREAM, client_id)``.
    unlabeled_per_client:
        Unlabeled samples drawn per client from the dataset's pool.
    max_resident:
        LRU cache capacity — the O(active) bound on resident clients.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        num_clients: Optional[int] = None,
        *,
        partitions: Optional[Sequence[np.ndarray]] = None,
        samples_per_client: int = 32,
        classes_per_client: Optional[int] = None,
        test_fraction: float = 0.25,
        seed: int = 0,
        unlabeled_per_client: int = 0,
        max_resident: int = 64,
    ):
        if (num_clients is None) == (partitions is None):
            raise ValueError(
                "pass exactly one of num_clients (derived mode) or "
                "partitions (explicit mode)")
        if partitions is not None:
            self._partitions: Optional[List[np.ndarray]] = [
                np.asarray(indices) for indices in partitions]
            self._size = len(self._partitions)
        else:
            self._partitions = None
            self._size = int(num_clients)
        if self._size < 1:
            raise ValueError("population must hold at least one client")
        if samples_per_client < 4:
            # A stratified split needs a handful of samples per client to
            # stay non-degenerate; fail at declaration, not realization.
            raise ValueError("samples_per_client must be >= 4")
        if classes_per_client is not None and classes_per_client < 1:
            raise ValueError("classes_per_client must be >= 1")
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self._dataset = dataset
        self._labels = dataset.train.labels
        self._samples_per_client = int(samples_per_client)
        self._classes_per_client = (None if classes_per_client is None
                                    else int(classes_per_client))
        self._test_fraction = float(test_fraction)
        self._seed = int(seed)
        self._unlabeled_per_client = int(unlabeled_per_client)
        self.max_resident = int(max_resident)
        self._class_pools: Optional[List[np.ndarray]] = None
        if self._partitions is None and self._classes_per_client is not None:
            self._class_pools = [np.flatnonzero(self._labels == class_id)
                                 for class_id in range(dataset.num_classes)]
        self._resident: "OrderedDict[int, ClientData]" = OrderedDict()
        self._stores: Dict[int, Dict] = {}
        self._segments: Dict[int, SharedArrayStore] = {}
        self._pinned: Set[int] = set()
        self._shm = False
        self.realized_total = 0
        self.evicted_total = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def client_ids(self) -> range:
        """All client ids — a ``range``, never a materialized list."""
        return range(self._size)

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    def is_resident(self, client_id: int) -> bool:
        return int(client_id) in self._resident

    # ------------------------------------------------------------------
    # Descriptors and realization
    # ------------------------------------------------------------------
    def descriptor(self, client_id: int) -> ClientDescriptor:
        client_id = self._check_id(client_id)
        if self._partitions is not None:
            indices = self._partitions[client_id]
            return ClientDescriptor(client_id, self._seed, int(indices.size),
                                    indices=indices)
        return ClientDescriptor(client_id, self._seed,
                                self._samples_per_client)

    def _check_id(self, client_id: int) -> int:
        client_id = int(client_id)
        if not 0 <= client_id < self._size:
            raise KeyError(
                f"client id {client_id} outside population [0, {self._size})")
        return client_id

    def _draw_indices(self, client_id: int,
                      rng: np.random.Generator) -> np.ndarray:
        if self._partitions is not None:
            return self._partitions[client_id]
        if self._class_pools is not None:
            num_classes = len(self._class_pools)
            classes = rng.choice(
                num_classes,
                size=min(self._classes_per_client, num_classes),
                replace=False)
            pool = np.concatenate(
                [self._class_pools[class_id] for class_id in np.sort(classes)])
        else:
            pool = None
        pool_size = (len(self._dataset.train) if pool is None else len(pool))
        take = min(self._samples_per_client, pool_size)
        picked = np.sort(rng.choice(pool_size, size=take, replace=False))
        return picked if pool is None else pool[picked]

    def _build_client(self, client_id: int) -> ClientData:
        """Realize one client — pure in ``(population seed, client_id)``."""
        rng = derive_rng(self._seed, _REALIZE_STREAM, client_id)
        indices = self._draw_indices(client_id, rng)
        train_idx, test_idx = stratified_split(
            indices, self._labels, self._test_fraction, rng)
        if train_idx.size == 0 or test_idx.size == 0:
            raise ValueError(
                f"client {client_id} would realize a degenerate split "
                f"(train={train_idx.size}, test={test_idx.size})")
        unlabeled = None
        if self._unlabeled_per_client > 0 and len(self._dataset.unlabeled) > 0:
            take = min(self._unlabeled_per_client, len(self._dataset.unlabeled))
            picked = np.sort(rng.choice(len(self._dataset.unlabeled),
                                        size=take, replace=False))
            unlabeled = self._dataset.unlabeled.subset(picked)
        client = ClientData(
            client_id=client_id,
            train=self._dataset.train.subset(train_idx),
            test=self._dataset.train.subset(test_idx),
            unlabeled=unlabeled,
            store=self._stores.get(client_id, {}),
        )
        return client

    def realize(self, client_id: int) -> ClientData:
        """The resident client, realizing (and possibly evicting) as needed."""
        client_id = self._check_id(client_id)
        client = self._resident.get(client_id)
        if client is not None:
            self._resident.move_to_end(client_id)
            return client
        client = self._build_client(client_id)
        self._share(client)
        self._resident[client_id] = client
        self.realized_total += 1
        telemetry.count("population.realized", 1)
        self._evict_to_budget()
        return client

    def realize_round(self, client_ids: Sequence[int]) -> List[ClientData]:
        """Realize one round's participants, pinned until :meth:`end_round`.

        Pinning keeps every participant resident for the whole round even
        when the round is wider than ``max_resident`` (the cache
        temporarily overshoots and :meth:`end_round` trims it back).
        """
        ids = [self._check_id(cid) for cid in client_ids]
        self._pinned = set(ids)
        return [self.realize(cid) for cid in ids]

    def end_round(self) -> None:
        """Unpin the current round's participants and trim to budget."""
        self._pinned = set()
        self._evict_to_budget()

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _evict_to_budget(self) -> None:
        while len(self._resident) > self.max_resident:
            victim = next((cid for cid in self._resident
                           if cid not in self._pinned), None)
            if victim is None:
                break  # everything resident is pinned by the round in flight
            self._evict(victim)

    def _evict(self, client_id: int) -> None:
        client = self._resident.pop(client_id)
        self._sync_store(client_id, client)
        segment = self._segments.pop(client_id, None)
        if segment is not None:
            segment.close()
        self.evicted_total += 1
        telemetry.count("population.evicted", 1)

    def _sync_store(self, client_id: int, client: ClientData) -> None:
        # The session replaces client.store with the worker-returned dict
        # each round, so the population re-captures it here; per-client
        # algorithm state is O(ever-participated) by design (it *is* the
        # personalized state) while arrays stay O(resident).
        if client.store:
            self._stores[client_id] = client.store
        else:
            self._stores.pop(client_id, None)

    # ------------------------------------------------------------------
    # Shared-memory plane
    # ------------------------------------------------------------------
    def enable_shared_memory(self) -> bool:
        """Opt realized clients into per-client shared segments.

        Returns whether the plane is usable here.  Each realized client
        gets its own :class:`~repro.data.shm.SharedArrayStore`, closed at
        eviction — so shared-memory usage obeys the same O(active) bound
        as RAM.
        """
        if not self._shm:
            self._shm = shared_memory_available()
        return self._shm

    def _share(self, client: ClientData) -> None:
        if not self._shm or not isinstance(client.train, DataSplit):
            return
        segment = share_client_splits([client])
        if segment is not None:
            self._segments[client.client_id] = segment
        else:
            self._shm = False  # plane broke mid-run; realize inline from here

    @property
    def shared_segment_count(self) -> int:
        return len(self._segments)

    # ------------------------------------------------------------------
    # Stores, payloads, context
    # ------------------------------------------------------------------
    def stores(self) -> Dict[int, Dict]:
        """Every non-empty persistent client store (checkpoint surface)."""
        for client_id in list(self._resident):
            self._sync_store(client_id, self._resident[client_id])
        return {client_id: store
                for client_id, store in self._stores.items() if store}

    def set_stores(self, mapping: Dict[int, Dict]) -> None:
        """Replace all persistent stores (checkpoint restore surface)."""
        self._stores = {self._check_id(client_id): store
                        for client_id, store in mapping.items() if store}
        for client_id in list(self._resident):
            self._resident[client_id].store = self._stores.get(client_id, {})

    def client_store(self, client_id: int) -> Dict:
        client_id = self._check_id(client_id)
        client = self._resident.get(client_id)
        if client is not None:
            return client.store
        return self._stores.get(client_id, {})

    def payload_nbytes(self, client_id: int) -> int:
        """Wire cost of one client: realized payload or descriptor bytes."""
        client_id = self._check_id(client_id)
        client = self._resident.get(client_id)
        if client is not None:
            return payload_nbytes(client)
        return len(pickle.dumps(self.descriptor(client_id),
                                protocol=pickle.HIGHEST_PROTOCOL))

    def context_payload(self) -> Dict:
        """Shape fingerprint for session contexts — O(1) in derived mode.

        Stands in for the per-client ``[id, num_samples]`` list a
        materialized federation hashes (enumerating a million clients
        into a checkpoint guard would defeat the point of being virtual).
        """
        payload = {
            "population": self._size,
            "seed": self._seed,
            "test_fraction": self._test_fraction,
            "samples_per_client": self._samples_per_client,
            "classes_per_client": self._classes_per_client,
            "unlabeled_per_client": self._unlabeled_per_client,
        }
        if self._partitions is not None:
            digest = hashlib.sha256()
            for indices in self._partitions:
                digest.update(np.ascontiguousarray(
                    indices.astype(np.int64)).tobytes())
            payload["partitions_sha256"] = digest.hexdigest()[:16]
        return payload

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Evict everything and release every shared segment (idempotent)."""
        self._pinned = set()
        for client_id in list(self._resident):
            self._evict(client_id)
        for segment in list(self._segments.values()):
            segment.close()
        self._segments.clear()

    def __enter__(self) -> "VirtualPopulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"VirtualPopulation(size={self._size}, "
                f"resident={len(self._resident)}/{self.max_resident}, "
                f"seed={self._seed}, shm={self._shm})")
