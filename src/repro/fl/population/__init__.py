"""Virtual client populations: million-client federations on one machine.

The package splits the problem into three orthogonal planes, all riding
on the repo's one RNG primitive (:func:`~repro.fl.client.derive_rng`) so
every behaviour is a pure function of ``(seed, round, client_id)``:

* :mod:`~repro.fl.population.virtual` — **existence**.
  :class:`VirtualPopulation` keeps clients as O(bytes)
  :class:`ClientDescriptor` recipes and realizes
  :class:`~repro.fl.client.ClientData` lazily behind an LRU cache, so
  resident memory (and /dev/shm, when the shared plane is on) is
  O(active clients), not O(population).
* :mod:`~repro.fl.population.availability` — **presence**.
  :class:`AvailabilityModel` derives per-round join/leave churn, mid-round
  dropout, and per-client speed multipliers from an
  :class:`~repro.fl.config.AvailabilitySpec`.
* :mod:`~repro.fl.population.aggregation` — **arrival**.
  :class:`BufferedAccumulator` simulates FedBuff-style buffered /
  staleness-weighted servers over deterministic simulated completion
  times; strictly opt-in via ``FederatedConfig.aggregation`` (the sync
  path remains the CI bitwise contract).

:class:`~repro.fl.session.TrainingSession` accepts a
``VirtualPopulation`` anywhere it accepts a client list; see
``docs/population.md`` for the full tour.
"""

from ..config import AGGREGATION_POLICIES, AvailabilitySpec
from .aggregation import BufferedAccumulator, simulated_completion_order
from .availability import AvailabilityModel
from .virtual import ClientDescriptor, VirtualPopulation

__all__ = [
    "AGGREGATION_POLICIES",
    "AvailabilitySpec",
    "AvailabilityModel",
    "BufferedAccumulator",
    "ClientDescriptor",
    "VirtualPopulation",
    "simulated_completion_order",
]
