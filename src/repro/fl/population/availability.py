"""Deterministic client availability: join/leave churn, dropout, speed.

:class:`AvailabilityModel` turns an
:class:`~repro.fl.config.AvailabilitySpec` into concrete per-round
decisions, all derived from ``derive_rng`` streams so churned runs stay
bitwise identical across the serial/thread/process backends:

* **membership** — a two-state Markov chain per client, advanced one
  round at a time with vectorized draws.  The stationary online fraction
  is ``spec.availability``; ``spec.churn`` sets how fast the chain mixes
  (``1.0`` redraws membership i.i.d. each round, values toward ``0.0``
  make membership sticky).  Membership for round ``r`` is a pure function
  of ``(seed, rounds 0..r)``: querying out of order simply replays the
  chain from round 0, and the checkpointed ``round_cursor``
  (:meth:`state_dict`) lets ``--resume`` re-derive the exact state.
* **dropout** — a per-``(round, client)`` Bernoulli draw from its own
  stream, independent of the sampled set, so whether a client drops never
  depends on who else was sampled.
* **speed** — a static per-client lognormal multiplier used by the async
  aggregation policies to order simulated completions.

The three stream tags below are domain-separation constants in the same
spirit as the sampler's ``_PARTICIPANT_STREAM``: large enough to never
collide with round indices or the small per-algorithm stream ids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..client import derive_rng
from ..config import AvailabilitySpec

__all__ = ["AvailabilityModel"]

_MEMBERSHIP_STREAM = 860_501
_DROPOUT_STREAM = 860_503
_SPEED_STREAM = 860_507


class AvailabilityModel:
    """Per-round availability decisions over ``num_clients`` positions.

    Membership is tracked positionally (position ``i`` is the ``i``-th
    candidate client the session offers to the sampler); dropout and
    speed are keyed by actual client id so they stay pure per client no
    matter how the candidate list shifts.
    """

    def __init__(self, spec: AvailabilitySpec, num_clients: int, seed: int):
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        self.spec = spec
        self.num_clients = int(num_clients)
        self.seed = int(seed)
        self._cursor = -1  # last round the membership chain advanced to
        self._online: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Membership (Markov join/leave churn)
    # ------------------------------------------------------------------
    def _advance_one(self) -> None:
        round_index = self._cursor + 1
        rng = derive_rng(self.seed, _MEMBERSHIP_STREAM, round_index)
        draw = rng.random(self.num_clients)
        p = self.spec.availability
        if self._online is None:
            # Round 0 starts the chain at its stationary distribution.
            self._online = draw < p
        else:
            # Transition rates scaled by churn keep the stationary online
            # fraction at p for every churn in (0, 1]: offline->online
            # with probability churn*p, online->offline with churn*(1-p).
            churn = self.spec.churn
            join = draw < churn * p
            stay = draw >= churn * (1.0 - p)
            self._online = np.where(self._online, stay, join)
        self._cursor = round_index

    def _seek(self, round_index: int) -> None:
        if round_index < 0:
            raise ValueError("round_index must be >= 0")
        if round_index < self._cursor:
            # Rewind by replaying from round 0 — same draws, same chain.
            self._cursor = -1
            self._online = None
        while self._cursor < round_index:
            self._advance_one()

    def available_positions(self, round_index: int) -> np.ndarray:
        """Sorted positions online in ``round_index`` (pure per round)."""
        self._seek(round_index)
        return np.flatnonzero(self._online)

    # ------------------------------------------------------------------
    # Mid-round dropout and straggler speed
    # ------------------------------------------------------------------
    def drops_out(self, client_id: int, round_index: int) -> bool:
        """Whether this sampled participant drops before its update lands."""
        if self.spec.dropout <= 0.0:
            return False
        rng = derive_rng(self.seed, _DROPOUT_STREAM, round_index, client_id)
        return bool(rng.random() < self.spec.dropout)

    def speed_multiplier(self, client_id: int) -> float:
        """Static simulated-duration multiplier for one client (>= 0).

        ``1.0`` for a homogeneous fleet (``speed_spread == 0``); larger
        values mean a slower device.
        """
        if self.spec.speed_spread <= 0.0:
            return 1.0
        rng = derive_rng(self.seed, _SPEED_STREAM, client_id)
        return float(rng.lognormal(mean=0.0, sigma=self.spec.speed_spread))

    def speed_multipliers(self, client_ids: Sequence[int]) -> List[float]:
        return [self.speed_multiplier(int(cid)) for cid in client_ids]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        """The RNG cursor a checkpoint persists (see ``ServerState``).

        Membership itself is not serialized: it is a pure function of
        ``(seed, rounds 0..cursor)``, so :meth:`load_state_dict` replays
        the chain instead — bitwise identical and O(rounds) cheap.
        """
        return {"round_cursor": int(self._cursor)}

    def load_state_dict(self, state: Dict) -> None:
        cursor = int(state.get("round_cursor", -1))
        self._cursor = -1
        self._online = None
        if cursor >= 0:
            self._seek(cursor)

    def __repr__(self) -> str:
        return (f"AvailabilityModel(num_clients={self.num_clients}, "
                f"seed={self.seed}, cursor={self._cursor}, spec={self.spec})")
