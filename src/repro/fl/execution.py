"""Pluggable client-execution backends for the federated round loop.

Every client's local SSL + personalization step is embarrassingly parallel,
so the server dispatches per-client work through an
:class:`ExecutionBackend` instead of a bare ``for`` loop.  Three backends
ship with the repo:

* :class:`SerialBackend` — the reference implementation: run tasks inline,
  one after another, on the calling thread;
* :class:`ThreadBackend` — a thread pool; useful when tasks release the
  GIL (large numpy kernels) or block on I/O;
* :class:`ProcessBackend` — a process pool for true CPU parallelism.

Determinism contract
--------------------
Parallel and serial runs must produce bitwise-identical results.  The
pieces that make this hold:

1. **Per-client seeded RNG.**  All client-side randomness is derived from
   ``derive_client_rng(seed, round_index, client_id)`` — a pure function of
   the run seed and the task's coordinates, never of execution order.
2. **Pure tasks.**  A task submitted to ``map_clients`` may execute on a
   *copy* of itself (``ThreadBackend`` deep-copies per chunk so worker
   replicas never share mutable algorithm state; ``ProcessBackend`` copies
   by pickling).  Anything the caller needs back — client stores, updated
   state — must flow through the task's return value, which the server
   writes back on the coordinating process.
3. **Order-preserving dispatch.**  ``map_clients`` always returns results
   in input order, regardless of completion order.

Fallback contract
-----------------
Backends constructed with ``fallback=True`` (the default) degrade to
serial execution — with a one-time warning — when the parallel machinery
is unavailable (no ``_multiprocessing``, sandboxed ``fork``, unpicklable
task, broken pool).  Because tasks are pure, re-running a failed chunk
serially is always safe.
"""

from __future__ import annotations

import copy
import math
import os
import pickle
import warnings
from concurrent.futures import ThreadPoolExecutor, as_completed

try:
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # stripped-down builds without _multiprocessing
    class BrokenProcessPool(RuntimeError):
        """Placeholder when concurrent.futures.process cannot import."""
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

from .client import derive_rng

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ExecutionError",
    "BACKENDS",
    "available_backends",
    "resolve_backend",
    "resolve_workers",
    "chunk_items",
    "derive_client_rng",
]


class ExecutionError(RuntimeError):
    """A backend could not execute a task batch and fallback was disabled."""


def derive_client_rng(seed: int, round_index: int, client_id: int) -> np.random.Generator:
    """The canonical per-(seed, round, client) generator.

    Execution backends rely on this being a pure function of its arguments:
    it makes client tasks independent of dispatch order, which is what lets
    parallel runs reproduce serial runs bit for bit.
    """
    return derive_rng(seed, round_index, client_id)


def resolve_workers(workers: Optional[int]) -> int:
    """Turn a ``workers`` knob into a concrete positive count.

    ``None`` means "use every available core"; explicit values must be
    positive integers.
    """
    if workers is None:
        return max(os.cpu_count() or 1, 1)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise ValueError(f"workers must be a positive integer or None, got {workers!r}")
    return workers


def chunk_items(items: Sequence, workers: int, chunk_size: Optional[int] = None
                ) -> List[List]:
    """Split ``items`` into contiguous chunks for dispatch.

    With the default automatic sizing, items spread evenly over the worker
    count (one chunk per worker) so per-task IPC overhead is paid once per
    worker, not once per client.  An explicit ``chunk_size`` trades load
    balance against dispatch overhead.
    """
    items = list(items)
    if not items:
        return []
    if chunk_size is None:
        chunk_size = math.ceil(len(items) / max(workers, 1))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [items[start:start + chunk_size] for start in range(0, len(items), chunk_size)]


def _run_chunk(task: Callable, chunk: Sequence) -> List:
    """Apply ``task`` to every item of one chunk (module-level: picklable)."""
    return [task(item) for item in chunk]


def _chunk_starts(chunks: Sequence[Sequence]) -> List[int]:
    """Global input index of each contiguous chunk's first item."""
    starts: List[int] = []
    position = 0
    for chunk in chunks:
        starts.append(position)
        position += len(chunk)
    return starts


class ExecutionBackend:
    """Common interface: map a pure task over client payloads, in order."""

    name = "base"

    uses_data_plane = False
    """Whether payloads cross a process boundary and therefore benefit from
    the shared-memory data plane.  Class-level so callers that manage their
    own segments (a :class:`~repro.fl.population.VirtualPopulation` sharing
    clients at realization time) can decide *before* any client exists —
    ``register_clients`` only answers for clients already materialized."""

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None, fallback: bool = True):
        self.workers = resolve_workers(workers)
        if chunk_size is not None and (not isinstance(chunk_size, int) or chunk_size < 1):
            raise ValueError(f"chunk_size must be a positive integer or None, got {chunk_size!r}")
        self.chunk_size = chunk_size
        self.fallback = fallback
        self._warned_fallback = False

    # ------------------------------------------------------------------
    def map_clients(self, task: Callable, items: Sequence) -> List:
        """Apply ``task`` to each item, returning results in input order."""
        raise NotImplementedError

    def imap_clients(self, task: Callable, items: Sequence
                     ) -> Iterator[Tuple[int, object]]:
        """Apply ``task`` to each item, yielding ``(input_index, result)``
        pairs as results complete.

        This is the streaming counterpart of :meth:`map_clients`: the
        caller (the session's round loop) can begin consuming updates —
        writing client stores back, feeding the aggregator — before the
        whole batch finishes.  Completion order is *not* input order under
        parallel backends; callers needing determinism must reorder by the
        yielded index before any order-sensitive reduction (see
        :class:`~repro.fl.algorithm.UpdateAccumulator`).

        The base implementation evaluates lazily in input order, which is
        exactly right for :class:`SerialBackend`: item ``i``'s result is
        consumed before item ``i + 1`` even starts.
        """
        for index, item in enumerate(items):
            yield index, task(item)

    def map_cohorts(self, task: Callable, cohorts: Sequence[Sequence]) -> List:
        """Apply a cohort-level task to each group of clients, in order.

        The batched dispatch path of the cohort execution API: each item is
        a *list* of clients handled by one task invocation (one vectorized
        local update).  Backends are item-agnostic, so dispatch, chunking,
        shared-memory registration, and fallback behaviour are exactly
        those of :meth:`map_clients` — a cohort is just a bigger item.
        """
        return self.map_clients(task, cohorts)

    def imap_cohorts(self, task: Callable, cohorts: Sequence[Sequence]
                     ) -> Iterator[Tuple[int, object]]:
        """Streaming counterpart of :meth:`map_cohorts`.

        Yields ``(cohort_index, results)`` pairs as cohorts complete, with
        the same completion-order caveats as :meth:`imap_clients`.
        """
        return self.imap_clients(task, cohorts)

    def register_clients(self, clients: Sequence) -> bool:
        """Opt the clients into this backend's data plane; True when active.

        The base implementation is a no-op: serial and thread backends
        share the coordinator's address space already, so there is nothing
        to gain from a shared-memory store.  Only :class:`ProcessBackend`
        overrides this.
        """
        return False

    def close(self) -> None:
        """Release pools; the backend may be reused (pools are lazily rebuilt)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"

    # ------------------------------------------------------------------
    def _fallback_guard(self, cause: BaseException, stacklevel: int = 3) -> None:
        """Raise if fallback is disabled; otherwise warn once per backend."""
        if not self.fallback:
            raise ExecutionError(
                f"{self.name} backend failed and fallback is disabled: {cause}"
            ) from cause
        if not self._warned_fallback:
            self._warned_fallback = True
            warnings.warn(
                f"{self.name} backend unavailable ({type(cause).__name__}: {cause}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=stacklevel + 1,
            )

    def _serial_fallback(self, task: Callable, items: Sequence,
                         cause: BaseException) -> List:
        self._fallback_guard(cause)
        return _run_chunk(task, items)


class SerialBackend(ExecutionBackend):
    """Reference backend: inline execution on the calling thread."""

    name = "serial"

    def map_clients(self, task: Callable, items: Sequence) -> List:
        return _run_chunk(task, list(items))


class ThreadBackend(ExecutionBackend):
    """Thread-pool backend.

    Each chunk runs against a deep copy of the task, so worker threads never
    share the algorithm's mutable scratch state (e.g. the SSL template
    module that local updates load state into).
    """

    name = "thread"

    def map_clients(self, task: Callable, items: Sequence) -> List:
        items = list(items)
        chunks = chunk_items(items, self.workers, self.chunk_size)
        if len(chunks) <= 1:
            return _run_chunk(task, items)
        try:
            replicas = [copy.deepcopy(task) for _ in chunks]
        except Exception as error:  # unexpected — algorithms are plain containers
            return self._serial_fallback(task, items, error)
        with ThreadPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            futures = [pool.submit(_run_chunk, replica, chunk)
                       for replica, chunk in zip(replicas, chunks)]
            results: List = []
            for future in futures:  # input order, not completion order
                results.extend(future.result())
        return results

    def imap_clients(self, task: Callable, items: Sequence
                     ) -> Iterator[Tuple[int, object]]:
        items = list(items)
        chunks = chunk_items(items, self.workers, self.chunk_size)
        if len(chunks) <= 1:
            yield from super().imap_clients(task, items)
            return
        try:
            replicas = [copy.deepcopy(task) for _ in chunks]
        except Exception as error:  # unexpected — algorithms are plain containers
            for index, result in enumerate(self._serial_fallback(task, items, error)):
                yield index, result
            return
        starts = _chunk_starts(chunks)
        with ThreadPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            futures = {
                pool.submit(_run_chunk, replica, chunk): start
                for replica, chunk, start in zip(replicas, chunks, starts)
            }
            for future in as_completed(futures):
                start = futures[future]
                for offset, result in enumerate(future.result()):
                    yield start + offset, result


class ProcessBackend(ExecutionBackend):
    """Process-pool backend: true CPU parallelism across client updates.

    Tasks and payloads cross the process boundary by pickle, so everything
    reachable from them (algorithm, encoder factory, client data, stores)
    must be picklable; ``eval.harness.EncoderSpec`` exists for exactly
    this reason.  The pool is created lazily and kept alive across rounds
    to amortize worker start-up.

    ``register_clients`` activates the shared-memory data plane
    (:mod:`repro.data.shm`): client datasets move into a
    :class:`~repro.data.shm.SharedArrayStore` this backend owns, so each
    per-round pickle ships lightweight handles instead of image arrays.
    The store is released on :meth:`close` (and, as a backstop, at process
    exit by the shm module's atexit hook).
    """

    name = "process"

    uses_data_plane = True

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None, fallback: bool = True,
                 mp_context: Optional[str] = None):
        super().__init__(workers=workers, chunk_size=chunk_size, fallback=fallback)
        self.mp_context = mp_context
        self._pool = None
        self._broken = False
        self._broken_cause: Optional[BaseException] = None
        self._stores: List = []

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor
            import multiprocessing

            context = (multiprocessing.get_context(self.mp_context)
                       if self.mp_context else None)
            self._pool = ProcessPoolExecutor(max_workers=self.workers,
                                             mp_context=context)
        return self._pool

    def register_clients(self, clients: Sequence) -> bool:
        """Move client datasets into a shared-memory store owned by this
        backend.  Returns True when the plane is active; False (with the
        clients untouched) when shared memory is unavailable here, which
        leaves the classic inline-pickle path in effect.  ``close``
        restores the clients' plain splits before unlinking, so the same
        clients can be registered again with a future backend."""
        from ..data.shm import share_client_splits

        store = share_client_splits(clients)
        if store is None:
            return False
        self._stores.append((store, list(clients)))
        return True

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._stores:
            from ..data.shm import unshare_client_splits

            while self._stores:
                store, clients = self._stores.pop()
                unshare_client_splits(store, clients)
                store.close()

    def _mark_broken(self, cause: BaseException) -> None:
        self._broken = True
        self._broken_cause = cause
        self.close()

    def map_clients(self, task: Callable, items: Sequence) -> List:
        items = list(items)
        if not items:
            return []
        if self._broken:
            return self._serial_fallback(task, items, self._broken_cause)
        chunks = chunk_items(items, self.workers, self.chunk_size)
        try:
            # Probe picklability up front: a cheap dumps() here turns an
            # opaque mid-flight pool crash into a clean serial fallback.
            pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
            pool = self._ensure_pool()
            futures = [pool.submit(_run_chunk, task, chunk) for chunk in chunks]
        except (pickle.PicklingError, AttributeError, TypeError, ImportError,
                OSError, PermissionError, RuntimeError, EOFError) as error:
            # Unpicklable tasks, sandboxes that forbid fork/spawn, pool
            # creation failures.  Tasks are pure, so running the batch
            # serially instead is safe.
            self._mark_broken(error)
            return self._serial_fallback(task, items, error)
        try:
            results: List = []
            for future in futures:  # input order, not completion order
                results.extend(future.result())
            return results
        except BrokenProcessPool as error:
            # A worker died (crash, OOM, sandbox kill) — infra failure, so
            # fall back.  Any other exception came from the task itself and
            # must propagate, exactly as it would under SerialBackend.
            self._mark_broken(error)
            return self._serial_fallback(task, items, error)

    def imap_clients(self, task: Callable, items: Sequence
                     ) -> Iterator[Tuple[int, object]]:
        items = list(items)
        if not items:
            return
        if self._broken:
            for index, result in enumerate(
                    self._serial_fallback(task, items, self._broken_cause)):
                yield index, result
            return
        chunks = chunk_items(items, self.workers, self.chunk_size)
        starts = _chunk_starts(chunks)
        try:
            pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
            pool = self._ensure_pool()
            pending = {
                pool.submit(_run_chunk, task, chunk): (start, chunk)
                for chunk, start in zip(chunks, starts)
            }
        except (pickle.PicklingError, AttributeError, TypeError, ImportError,
                OSError, PermissionError, RuntimeError, EOFError) as error:
            self._mark_broken(error)
            for index, result in enumerate(self._serial_fallback(task, items, error)):
                yield index, result
            return
        try:
            for future in as_completed(list(pending)):
                start, _chunk = pending[future]
                results = future.result()  # may raise BrokenProcessPool
                del pending[future]
                for offset, result in enumerate(results):
                    yield start + offset, result
        except BrokenProcessPool as error:
            # Some chunks already streamed out; rerun only the unfinished
            # ones serially (tasks are pure, so re-execution is safe).
            self._mark_broken(error)
            self._fallback_guard(error, stacklevel=2)
            for start, chunk in pending.values():
                for offset, result in enumerate(_run_chunk(task, chunk)):
                    yield start + offset, result


BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> List[str]:
    return sorted(BACKENDS)


def resolve_backend(spec, workers: Optional[int] = None,
                    chunk_size: Optional[int] = None,
                    fallback: bool = True) -> ExecutionBackend:
    """Build an :class:`ExecutionBackend` from a name or pass one through.

    ``spec`` may be an existing backend instance (returned unchanged), a
    registered name (``"serial"``, ``"thread"``, ``"process"``), or ``None``
    (serial).  Unknown names raise ``ValueError`` listing the registry.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = SerialBackend.name
    if not isinstance(spec, str):
        raise ValueError(
            f"backend must be a name or ExecutionBackend instance, got {type(spec).__name__}"
        )
    key = spec.lower()
    if key not in BACKENDS:
        raise ValueError(
            f"unknown execution backend '{spec}'; available: {available_backends()}"
        )
    if key == SerialBackend.name:
        # Serial ignores worker counts but still validates them, so a bad
        # ``--workers`` value fails loudly under every backend.
        resolve_workers(workers)
        return SerialBackend(workers=1, chunk_size=chunk_size, fallback=fallback)
    return BACKENDS[key](workers=workers, chunk_size=chunk_size, fallback=fallback)
