"""Model containers used by the supervised FL baselines.

``ClassifierModel`` is the paper's supervised architecture: the fully
convolutional ``Encoder`` (θ_b) plus the linear-classifier ``Head``.  Its
state-dict names are prefixed ``encoder.``/``head.`` so body/head algorithms
(FedRep, FedPer, LG-FedAvg, FedBABU) can split the wire format with
:func:`repro.nn.serialize.split_state`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..nn import Linear, Module
from ..nn.tensor import Tensor, no_grad

__all__ = ["ClassifierModel", "ENCODER_PREFIX", "HEAD_PREFIX"]

ENCODER_PREFIX = "encoder"
HEAD_PREFIX = "head"


class ClassifierModel(Module):
    """Encoder + linear head; ``forward`` returns logits."""

    def __init__(self, encoder_factory: Callable[[], Module], num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.encoder = encoder_factory()
        if not hasattr(self.encoder, "feature_dim"):
            raise ValueError("encoder must expose feature_dim")
        self.head = Linear(self.encoder.feature_dim, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.encoder(x))

    def features(self, images: np.ndarray) -> np.ndarray:
        """Frozen encoder features (eval mode, no grad)."""
        was_training = self.training
        self.eval()
        with no_grad():
            out = self.encoder(Tensor(images)).data.copy()
        if was_training:
            self.train()
        return out

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Logits in eval mode (no grad)."""
        was_training = self.training
        self.eval()
        with no_grad():
            out = self.forward(Tensor(images)).data.copy()
        if was_training:
            self.train()
        return out
