"""The personalization stage shared by every method (paper §III-B).

After federated training converges, each client uses the frozen global
encoder θ_b as a feature extractor and trains a lightweight personalized
model φ — a linear classifier — on its local training set for 10 epochs
with SGD (lr 0.05, batch size 32), then reports accuracy on the local test
set.  The same routine also powers the Script-* local-only baselines and
head fine-tuning variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..data.loader import batch_iterator
from ..nn import Linear, SGD, Tensor, accuracy, cross_entropy, no_grad

__all__ = ["PersonalizationResult", "train_linear_probe", "evaluate_linear_head"]


@dataclass
class PersonalizationResult:
    """Outcome of one client's personalization."""

    accuracy: float
    train_accuracy: float
    head: Linear
    losses: list


def train_linear_probe(
    train_features: np.ndarray,
    train_labels: np.ndarray,
    test_features: np.ndarray,
    test_labels: np.ndarray,
    num_classes: int,
    epochs: int = 10,
    learning_rate: float = 0.05,
    batch_size: int = 32,
    momentum: float = 0.9,
    rng: Optional[np.random.Generator] = None,
    head: Optional[Linear] = None,
) -> PersonalizationResult:
    """Train the paper's personalized model: a linear classifier over frozen
    features.  Pass ``head`` to continue training an existing classifier
    (FedAvg-FT-style fine-tuning)."""
    if train_features.shape[0] != train_labels.shape[0]:
        raise ValueError("train features/labels disagree on N")
    if train_features.shape[0] == 0:
        raise ValueError("cannot personalize with no training samples")
    # repro: allow[DET001] -- unseeded convenience fallback; federated paths always pass rng
    rng = rng if rng is not None else np.random.default_rng()
    feature_dim = train_features.shape[1]
    if head is None:
        head = Linear(feature_dim, num_classes, rng=rng)
    optimizer = SGD(head.parameters(), lr=learning_rate, momentum=momentum)
    losses = []
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for batch in batch_iterator(train_features.shape[0], batch_size, shuffle=True, rng=rng):
            optimizer.zero_grad()
            logits = head(Tensor(train_features[batch]))
            loss = cross_entropy(logits, train_labels[batch])
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    test_acc = evaluate_linear_head(head, test_features, test_labels)
    train_acc = evaluate_linear_head(head, train_features, train_labels)
    return PersonalizationResult(accuracy=test_acc, train_accuracy=train_acc,
                                 head=head, losses=losses)


def evaluate_linear_head(head: Linear, features: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a linear head over precomputed features."""
    if features.shape[0] == 0:
        return 0.0
    with no_grad():
        logits = head(Tensor(features))
    return accuracy(logits, labels)
