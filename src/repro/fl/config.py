"""Configuration dataclasses for federated experiments.

``FederatedConfig`` captures the paper's learning settings (§V-A): 100
clients, 10 sampled per round, 200 rounds, 3 local epochs, 10-epoch
personalization with SGD at lr 0.05 and batch size 32, plus 50 novel
clients.  Benchmark configurations scale these down for CPU (DESIGN.md §2)
without changing any code path.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace
from typing import Iterable, Optional

AGGREGATION_POLICIES = ("sync", "buffered", "staleness")
"""Server aggregation policies (see :mod:`repro.fl.population.aggregation`).

``"sync"`` is the default and the only policy under the CI bitwise
contract; ``"staleness"`` and ``"buffered"`` simulate asynchronous
FedBuff-style servers and are strictly opt-in (POP001)."""


def suggest_unknown_keys(unknown: Iterable[str], valid: Iterable[str],
                         kind: str) -> str:
    """A did-you-mean message for unknown keyword names.

    Shared by :meth:`FederatedConfig.with_overrides` and
    :func:`repro.eval.registry.build_method`, so every knob surface in the
    stack rejects typos the same way instead of passing them silently into
    ``**kwargs``.
    """
    valid = sorted(valid)
    parts = []
    for name in sorted(unknown):
        close = difflib.get_close_matches(name, valid, n=2, cutoff=0.5)
        hint = f" (did you mean {' or '.join(repr(c) for c in close)}?)" if close else ""
        parts.append(f"{name!r}{hint}")
    return (f"unknown {kind}: {', '.join(parts)}; "
            f"valid names: {', '.join(valid)}")


@dataclass(frozen=True)
class AvailabilitySpec:
    """Deterministic client-availability model for one run.

    All four knobs are *semantic* — they change which clients train and
    how updates weigh in, so a non-default spec changes the run
    fingerprint (unlike the execution knobs).  The draws themselves are
    pure functions of ``(config.seed, round, client_id)`` via
    :func:`~repro.fl.client.derive_rng`, which is what keeps churned runs
    bitwise identical across execution backends (see
    ``docs/population.md``).

    ``availability``
        Stationary fraction of the population online each round.
    ``churn``
        Per-round flip intensity of the Markov join/leave chain: ``1.0``
        redraws membership i.i.d. every round, values toward ``0.0`` make
        membership sticky (a client online this round tends to stay
        online).  Irrelevant when ``availability == 1.0``.
    ``dropout``
        Probability a *sampled* participant drops mid-round before its
        update reaches the server.
    ``speed_spread``
        Sigma of the lognormal per-client speed multipliers used to order
        simulated completions under async aggregation (``0.0`` means a
        homogeneous fleet).
    """

    availability: float = 1.0
    churn: float = 1.0
    dropout: float = 0.0
    speed_spread: float = 0.0

    def __post_init__(self):
        if not 0.0 < float(self.availability) <= 1.0:
            raise ValueError(
                f"availability must be in (0, 1], got {self.availability!r}")
        if not 0.0 <= float(self.churn) <= 1.0:
            raise ValueError(f"churn must be in [0, 1], got {self.churn!r}")
        if not 0.0 <= float(self.dropout) < 1.0:
            raise ValueError(
                f"dropout must be in [0, 1), got {self.dropout!r}")
        if float(self.speed_spread) < 0.0:
            raise ValueError(
                f"speed_spread must be >= 0, got {self.speed_spread!r}")
        # Normalize to float so equal specs built from ints and floats
        # serialize — and therefore fingerprint — identically.
        for name in ("availability", "churn", "dropout", "speed_spread"):
            object.__setattr__(self, name, float(getattr(self, name)))

    @property
    def is_active(self) -> bool:
        """Whether this spec changes anything relative to no model at all.

        ``availability == 1.0`` keeps every client online regardless of
        churn, so only partial availability, dropout, or a speed spread
        make the model observable.
        """
        return (self.availability < 1.0 or self.dropout > 0.0
                or self.speed_spread > 0.0)


@dataclass(frozen=True)
class FederatedConfig:
    """Knobs of one federated run.

    ``backend``/``workers`` select the client-execution engine (see
    :mod:`repro.fl.execution`): ``"serial"`` (default), ``"thread"``, or
    ``"process"``, with ``workers=None`` meaning "all available cores".
    Backends are bitwise-deterministic, so these knobs change wall-clock
    time, never results.

    ``shared_memory`` controls the zero-copy client-data plane
    (:mod:`repro.data.shm`), which only the process backend uses:
    ``None`` (default) enables it automatically for the process backend,
    falling back silently to inline pickling when shared memory is
    unavailable; ``True`` requests it and warns when it cannot activate;
    ``False`` disables it.  Like the backend knobs it never changes
    results — workers read the same bytes either way.

    ``client_batch`` controls cohort-level vectorized execution (see
    :mod:`repro.nn.trace`): ``None`` (default) automatically batches each
    homogeneous cohort of sampled clients whole; ``1`` disables batching
    (the classic per-client path); ``k >= 2`` caps cohort size at ``k``.
    Batched execution is required to be bitwise identical to the
    per-client path, so — like backend/workers/shared_memory — this knob
    changes wall-clock time, never results, and is excluded from run
    fingerprints.

    ``availability``/``aggregation``/``aggregation_buffer``/
    ``staleness_decay`` are the population-plane knobs
    (:mod:`repro.fl.population`): an :class:`AvailabilitySpec` turns on
    deterministic churn/dropout/speed modelling, and a non-``"sync"``
    aggregation policy opts into simulated-async (FedBuff-style) server
    behaviour.  Unlike the execution knobs these change *results*, so
    they are fingerprinted; all four default to "off" and are omitted
    from serialized payloads at their defaults, so every pre-existing
    fingerprint survives.
    """

    num_clients: int = 20
    clients_per_round: int = 5
    rounds: int = 10
    local_epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    personalization_epochs: int = 10
    personalization_lr: float = 0.05
    personalization_batch_size: int = 32
    test_fraction: float = 0.25
    num_novel_clients: int = 0
    seed: int = 0
    availability: Optional[AvailabilitySpec] = None
    aggregation: str = "sync"
    aggregation_buffer: int = 10
    staleness_decay: float = 0.5
    backend: str = "serial"
    workers: Optional[int] = None
    shared_memory: Optional[bool] = None
    client_batch: Optional[int] = None

    def __post_init__(self):
        if self.num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if not 1 <= self.clients_per_round <= self.num_clients:
            raise ValueError("clients_per_round must be in [1, num_clients]")
        if self.rounds < 0:
            raise ValueError("rounds must be >= 0")
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be >= 1")
        if self.batch_size < 1 or self.personalization_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.learning_rate <= 0 or self.personalization_lr <= 0:
            raise ValueError("learning rates must be positive")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        if self.num_novel_clients < 0:
            raise ValueError("num_novel_clients must be >= 0")
        # Availability/aggregation are semantic knobs (they hash into run
        # fingerprints); a dict availability is coerced so configs rebuilt
        # from stored JSON compare equal to freshly constructed ones.
        if isinstance(self.availability, dict):
            object.__setattr__(self, "availability",
                               AvailabilitySpec(**self.availability))
        if self.availability is not None and not isinstance(
                self.availability, AvailabilitySpec):
            raise ValueError(
                f"availability must be None or an AvailabilitySpec, "
                f"got {self.availability!r}")
        if self.aggregation not in AGGREGATION_POLICIES:
            raise ValueError(
                f"unknown aggregation policy {self.aggregation!r}; "
                f"available: {AGGREGATION_POLICIES}")
        if isinstance(self.aggregation_buffer, bool) or not isinstance(
                self.aggregation_buffer, int) or self.aggregation_buffer < 1:
            raise ValueError(
                f"aggregation_buffer must be an integer >= 1, "
                f"got {self.aggregation_buffer!r}")
        if self.staleness_decay < 0.0:
            raise ValueError(
                f"staleness_decay must be >= 0, got {self.staleness_decay!r}")
        from .execution import available_backends, resolve_workers

        if not isinstance(self.backend, str) or self.backend.lower() not in available_backends():
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"available: {available_backends()}"
            )
        resolve_workers(self.workers)  # raises on non-positive / non-int values
        # Identity checks, not equality: the server dispatches on
        # ``is True`` / ``is not False``, so 0/1 must be rejected here
        # rather than behave differently from False/True downstream.
        if self.shared_memory is not None and not isinstance(self.shared_memory, bool):
            raise ValueError(
                f"shared_memory must be None (auto), True, or False, "
                f"got {self.shared_memory!r}"
            )
        # bool is an int subclass; reject it explicitly so client_batch=True
        # does not silently mean "disable batching".
        if self.client_batch is not None and (
                isinstance(self.client_batch, bool)
                or not isinstance(self.client_batch, int)
                or self.client_batch < 1):
            raise ValueError(
                f"client_batch must be None (auto) or an integer >= 1, "
                f"got {self.client_batch!r}"
            )

    def with_overrides(self, **kwargs) -> "FederatedConfig":
        """Return a copy with fields replaced.

        Unknown field names raise ``ValueError`` with a did-you-mean hint
        instead of the bare ``TypeError`` ``dataclasses.replace`` would
        produce — a sweep grid with a typo'd knob must fail loudly at
        declaration, not silently diverge from the intended config.
        """
        valid = {f.name for f in fields(self)}
        unknown = set(kwargs) - valid
        if unknown:
            raise ValueError(suggest_unknown_keys(unknown, valid,
                                                  "FederatedConfig override(s)"))
        return replace(self, **kwargs)


PAPER_CONFIG = FederatedConfig(
    num_clients=100,
    clients_per_round=10,
    rounds=200,
    local_epochs=3,
    batch_size=32,
    personalization_epochs=10,
    personalization_lr=0.05,
    num_novel_clients=50,
)
"""The paper's full-scale configuration (§V-A), kept for reference and for
anyone running this reproduction on serious hardware."""
