"""The federated-algorithm strategy interface.

A :class:`FederatedAlgorithm` owns model construction and the three phases
of a pFL experiment:

* ``local_update`` — one sampled client's contribution in a round;
* ``aggregate`` — combine client updates into the next global state
  (default: FedAvg's sample-count-weighted average);
* ``personalize`` — the post-training stage run on *every* client
  (default: the paper's linear probe on frozen encoder features).

Baselines override the pieces they change; Calibre overrides
``local_update`` (prototype losses) and ``aggregate`` (divergence-aware
weighting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from ..nn.serialize import StateDict, weighted_average
from .client import ClientData, derive_rng
from .config import FederatedConfig
from .personalization import PersonalizationResult, train_linear_probe

__all__ = ["ClientUpdate", "FederatedAlgorithm"]


@dataclass
class ClientUpdate:
    """What a client sends back to the server after a local update.

    ``payload`` carries algorithm-specific structures beyond the model
    state (e.g. SCAFFOLD's control-variate deltas).
    """

    client_id: int
    state: StateDict
    weight: float
    metrics: Dict[str, float] = field(default_factory=dict)
    payload: Dict[str, object] = field(default_factory=dict)


class FederatedAlgorithm:
    """Base class; subclasses define the model and local training."""

    name = "base"

    def __init__(self, config: FederatedConfig, num_classes: int):
        self.config = config
        self.num_classes = num_classes

    # ------------------------------------------------------------------
    # Required pieces
    # ------------------------------------------------------------------
    def build_global_state(self) -> StateDict:
        """Initial global model snapshot (round 0)."""
        raise NotImplementedError

    def local_update(self, client: ClientData, global_state: StateDict,
                     round_index: int) -> ClientUpdate:
        """Run local training on one client, returning its update."""
        raise NotImplementedError

    def extract_features(self, client: ClientData, global_state: StateDict,
                         images: np.ndarray) -> np.ndarray:
        """Frozen-feature extraction used by the default personalization."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Default behaviours
    # ------------------------------------------------------------------
    def aggregate(self, updates: Sequence[ClientUpdate],
                  global_state: StateDict, round_index: int) -> StateDict:
        """FedAvg: weighted average of client states by sample count."""
        if not updates:
            return global_state
        return weighted_average([u.state for u in updates], [u.weight for u in updates])

    def personalize(self, client: ClientData, global_state: StateDict
                    ) -> PersonalizationResult:
        """The paper's personalization stage: linear probe on frozen features."""
        config = self.config
        rng = derive_rng(config.seed, 9_999, client.client_id)
        train_features = self.extract_features(client, global_state, client.train.images)
        test_features = self.extract_features(client, global_state, client.test.images)
        return train_linear_probe(
            train_features,
            client.train.labels,
            test_features,
            client.test.labels,
            num_classes=self.num_classes,
            epochs=config.personalization_epochs,
            learning_rate=config.personalization_lr,
            batch_size=config.personalization_batch_size,
            rng=rng,
        )

    def rng_for(self, client: ClientData, round_index: int) -> np.random.Generator:
        """Per-(seed, round, client) generator.

        Delegates to the canonical derivation in :mod:`repro.fl.execution`
        so local updates stay independent of dispatch order and the
        parallel backends reproduce serial runs exactly.
        """
        from .execution import derive_client_rng

        return derive_client_rng(self.config.seed, round_index, client.client_id)
