"""The federated-algorithm strategy interface.

A :class:`FederatedAlgorithm` owns model construction and the three phases
of a pFL experiment:

* ``local_update`` — one sampled client's contribution in a round;
* ``aggregate`` — combine client updates into the next global state
  (default: FedAvg's sample-count-weighted average);
* ``personalize`` — the post-training stage run on *every* client
  (default: the paper's linear probe on frozen encoder features).

Baselines override the pieces they change; Calibre overrides
``local_update`` (prototype losses) and ``aggregate`` (divergence-aware
weighting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from ..nn.serialize import StateDict, weighted_average
from .client import ClientData, derive_rng
from .config import FederatedConfig
from .personalization import PersonalizationResult, train_linear_probe

__all__ = ["ClientUpdate", "FederatedAlgorithm", "UpdateAccumulator"]


@dataclass
class ClientUpdate:
    """What a client sends back to the server after a local update.

    ``payload`` carries algorithm-specific structures beyond the model
    state (e.g. SCAFFOLD's control-variate deltas).
    """

    client_id: int
    state: StateDict
    weight: float
    metrics: Dict[str, float] = field(default_factory=dict)
    payload: Dict[str, object] = field(default_factory=dict)


class UpdateAccumulator:
    """Consumes client updates as they complete; combines at finalize.

    The :class:`~repro.fl.session.TrainingSession` feeds this object from
    an iterator of completed futures (``ExecutionBackend.imap_clients``),
    so per-update work in :meth:`ingest` overlaps with still-running
    clients instead of waiting for the round barrier — the seam future
    async-aggregation strategies plug into.

    The final combine runs over updates reordered into *input* (dispatch)
    order, never completion order: floating-point reduction is
    order-sensitive, and reordering is what keeps serial, thread, and
    process backends bitwise identical (the determinism contract of
    :mod:`repro.fl.execution`).  The async aggregation policies
    (:class:`~repro.fl.population.BufferedAccumulator`) subclass this and
    override :meth:`finalize` with a *simulated* completion order — also a
    pure function of the run config, never of real scheduling — so even
    "async" runs keep the cross-backend guarantee.
    """

    def __init__(self, algorithm: "FederatedAlgorithm", global_state: StateDict,
                 round_index: int):
        self.algorithm = algorithm
        self.global_state = global_state
        self.round_index = round_index
        self._slots: Dict[int, ClientUpdate] = {}

    def add(self, index: int, update: ClientUpdate) -> None:
        """Accept the update of input position ``index`` (completion order)."""
        if index in self._slots:
            raise ValueError(f"duplicate update for input position {index}")
        self._slots[index] = update
        self.ingest(update)

    def ingest(self, update: ClientUpdate) -> None:
        """Eager per-update hook, called in completion order.

        The default does nothing; algorithms override it to start
        order-insensitive work (cloning, divergence statistics, delta
        precomputation) before the round barrier.
        """

    def finalize(self) -> StateDict:
        """Combine all accepted updates into the next global state."""
        ordered = [self._slots[index] for index in sorted(self._slots)]
        return self.algorithm.aggregate(ordered, self.global_state,
                                        self.round_index)

    def updates_in_order(self) -> Sequence[ClientUpdate]:
        """Accepted updates in input (dispatch) order."""
        return [self._slots[index] for index in sorted(self._slots)]


class FederatedAlgorithm:
    """Base class; subclasses define the model and local training."""

    name = "base"

    def __init__(self, config: FederatedConfig, num_classes: int):
        self.config = config
        self.num_classes = num_classes

    # ------------------------------------------------------------------
    # Required pieces
    # ------------------------------------------------------------------
    def build_global_state(self) -> StateDict:
        """Initial global model snapshot (round 0)."""
        raise NotImplementedError

    def local_update(self, client: ClientData, global_state: StateDict,
                     round_index: int) -> ClientUpdate:
        """Run local training on one client, returning its update."""
        raise NotImplementedError

    def extract_features(self, client: ClientData, global_state: StateDict,
                         images: np.ndarray) -> np.ndarray:
        """Frozen-feature extraction used by the default personalization."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cohort-level execution (client-batched vectorization seam)
    # ------------------------------------------------------------------
    def cohort_key(self, client: ClientData) -> Optional[Hashable]:
        """Grouping key for client-batched execution, or ``None``.

        Clients returning the same non-``None`` key may be dispatched
        together through :meth:`cohort_update`; ``None`` (the default)
        opts the client out of batching entirely.  A key must only group
        clients whose local updates are *homogeneous* — identical data
        shapes and identical per-step computation — because batched
        execution is required to be bitwise identical to the per-client
        path.
        """
        return None

    def cohort_update(self, clients: Sequence[ClientData],
                      global_state: StateDict,
                      round_index: int) -> List[ClientUpdate]:
        """Run local updates for a cohort, in client order.

        The default simply loops :meth:`local_update`; algorithms with a
        vectorized engine (see :class:`~repro.baselines.pfl_ssl.PFLSSL`)
        override this to batch homogeneous clients and must return results
        bitwise identical to the loop — falling back to it whenever the
        batched path cannot guarantee that.
        """
        return [self.local_update(client, global_state, round_index)
                for client in clients]

    # ------------------------------------------------------------------
    # Default behaviours
    # ------------------------------------------------------------------
    def aggregate(self, updates: Sequence[ClientUpdate],
                  global_state: StateDict, round_index: int) -> StateDict:
        """FedAvg: weighted average of client states by sample count."""
        if not updates:
            return global_state
        return weighted_average([u.state for u in updates], [u.weight for u in updates])

    def personalize(self, client: ClientData, global_state: StateDict
                    ) -> PersonalizationResult:
        """The paper's personalization stage: linear probe on frozen features."""
        config = self.config
        rng = derive_rng(config.seed, 9_999, client.client_id)
        train_features = self.extract_features(client, global_state, client.train.images)
        test_features = self.extract_features(client, global_state, client.test.images)
        return train_linear_probe(
            train_features,
            client.train.labels,
            test_features,
            client.test.labels,
            num_classes=self.num_classes,
            epochs=config.personalization_epochs,
            learning_rate=config.personalization_lr,
            batch_size=config.personalization_batch_size,
            rng=rng,
        )

    def make_aggregator(self, global_state: StateDict,
                        round_index: int) -> UpdateAccumulator:
        """Build this round's update consumer (see :class:`UpdateAccumulator`).

        The default buffers updates and calls :meth:`aggregate` over them
        in input order at finalize — bitwise identical to the classic
        barriered round loop.  Algorithms with order-insensitive
        aggregation can return an accumulator that does real work in
        ``ingest`` instead.
        """
        return UpdateAccumulator(self, global_state, round_index)

    # ------------------------------------------------------------------
    # Server-side state (round-level checkpointing)
    # ------------------------------------------------------------------
    def server_state(self) -> Dict:
        """Snapshot of all server-side state this algorithm mutates across
        rounds (beyond the global model, which the session owns).

        The returned dict must be a *copy* (checkpoints must not alias
        live arrays) and must survive the exact-JSON codec of
        :mod:`repro.fl.session.codec`: nested dicts/lists/tuples of numpy
        arrays and plain scalars.  Stateless algorithms return ``{}``.
        """
        return {}

    def load_server_state(self, state: Dict) -> None:
        """Restore a :meth:`server_state` snapshot.

        Called after :meth:`build_global_state` has re-initialized the
        algorithm's internal slots, so implementations may assume the
        same post-init invariants as round 0.
        """
        if state:
            raise ValueError(
                f"algorithm '{self.name}' keeps no server-side state but the "
                f"checkpoint carries keys {sorted(state)}")

    def rng_for(self, client: ClientData, round_index: int) -> np.random.Generator:
        """Per-(seed, round, client) generator.

        Delegates to the canonical derivation in :mod:`repro.fl.execution`
        so local updates stay independent of dispatch order and the
        parallel backends reproduce serial runs exactly.
        """
        from .execution import derive_client_rng

        return derive_client_rng(self.config.seed, round_index, client.client_id)
