"""Client sampling: which clients participate in each round."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .client import ClientData

__all__ = ["RandomSampler", "RoundRobinSampler"]


class RandomSampler:
    """Uniformly sample ``count`` distinct clients each round (the paper's
    protocol: 10 of 100 clients per round)."""

    def __init__(self, count: int, seed: int = 0):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count
        self._rng = np.random.default_rng(seed)

    def sample(self, clients: Sequence[ClientData], round_index: int) -> List[ClientData]:
        if self.count > len(clients):
            raise ValueError(
                f"cannot sample {self.count} of {len(clients)} clients"
            )
        chosen = self._rng.choice(len(clients), size=self.count, replace=False)
        return [clients[i] for i in sorted(chosen)]


class RoundRobinSampler:
    """Deterministic rotation — useful in tests where coverage matters."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count

    def sample(self, clients: Sequence[ClientData], round_index: int) -> List[ClientData]:
        n = len(clients)
        start = (round_index * self.count) % n
        picked = [(start + offset) % n for offset in range(min(self.count, n))]
        return [clients[i] for i in picked]
