"""Client sampling: which clients participate in each round.

Both samplers expose two surfaces over the same draw:

* ``sample(clients, round_index)`` — the classic list-of-
  :class:`~repro.fl.client.ClientData` API;
* ``sample_ids(client_ids, round_index)`` — id-based sampling for
  virtual populations (:mod:`repro.fl.population`), where materializing
  the candidate list as ``ClientData`` would defeat lazy realization.

``sample`` delegates to ``sample_ids`` over candidate *positions*, so the
two surfaces draw from the same stream and pick the same clients — adding
the id surface changed no existing participant set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .client import ClientData, derive_rng

__all__ = ["RandomSampler", "RoundRobinSampler"]

# Domain-separation tag for the participant-sampling stream.  Algorithms
# already consume derive_rng(seed, small_int) streams (e.g. the SSL
# template init uses (seed, 0)), so sampling must not share their
# coordinates: a collision would correlate participant selection with
# model-init noise under the same config.seed.
_PARTICIPANT_STREAM = 715_517


class RandomSampler:
    """Uniformly sample ``count`` distinct clients each round (the paper's
    protocol: 10 of 100 clients per round).

    The participant set is a pure function of ``(seed, round_index)`` —
    the determinism contract of :mod:`repro.fl.execution` — so sampling
    round 5 before round 3, or sampling the same round twice, always
    yields the same participants.  (A stateful generator advanced per
    call would make participant sets depend on call order instead.)
    """

    def __init__(self, count: int, seed: int = 0):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count
        self.seed = seed

    def sample_ids(self, client_ids: Sequence[int], round_index: int,
                   count: Optional[int] = None) -> List[int]:
        """Sample ids from a candidate list, sorted ascending by position.

        ``count`` overrides ``self.count`` for callers that must clamp to
        a shrunken candidate pool (availability churn can leave fewer than
        ``count`` clients online); ``count < 1`` returns an empty round
        rather than raising, since an empty online pool is a legitimate
        churn outcome, not a configuration error.
        """
        if count is None:
            count = self.count
        if count < 1:
            return []
        if count > len(client_ids):
            raise ValueError(
                f"cannot sample {count} of {len(client_ids)} clients")
        rng = derive_rng(self.seed, _PARTICIPANT_STREAM, round_index)
        chosen = rng.choice(len(client_ids), size=count, replace=False)
        return [int(client_ids[i]) for i in sorted(chosen)]

    def sample(self, clients: Sequence[ClientData], round_index: int) -> List[ClientData]:
        positions = self.sample_ids(range(len(clients)), round_index)
        return [clients[i] for i in positions]


class RoundRobinSampler:
    """Deterministic rotation — useful in tests where coverage matters."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count

    def sample_ids(self, client_ids: Sequence[int], round_index: int,
                   count: Optional[int] = None) -> List[int]:
        n = len(client_ids)
        if count is None:
            count = self.count
        if n == 0 or count < 1:
            return []
        # Stride by self.count (not the clamped count) so the rotation
        # pattern is independent of per-round availability.
        start = (round_index * self.count) % n
        return [int(client_ids[(start + offset) % n])
                for offset in range(min(count, n))]

    def sample(self, clients: Sequence[ClientData], round_index: int) -> List[ClientData]:
        positions = self.sample_ids(range(len(clients)), round_index)
        return [clients[i] for i in positions]
