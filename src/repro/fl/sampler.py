"""Client sampling: which clients participate in each round."""

from __future__ import annotations

from typing import List, Sequence

from .client import ClientData, derive_rng

__all__ = ["RandomSampler", "RoundRobinSampler"]

# Domain-separation tag for the participant-sampling stream.  Algorithms
# already consume derive_rng(seed, small_int) streams (e.g. the SSL
# template init uses (seed, 0)), so sampling must not share their
# coordinates: a collision would correlate participant selection with
# model-init noise under the same config.seed.
_PARTICIPANT_STREAM = 715_517


class RandomSampler:
    """Uniformly sample ``count`` distinct clients each round (the paper's
    protocol: 10 of 100 clients per round).

    The participant set is a pure function of ``(seed, round_index)`` —
    the determinism contract of :mod:`repro.fl.execution` — so sampling
    round 5 before round 3, or sampling the same round twice, always
    yields the same participants.  (A stateful generator advanced per
    call would make participant sets depend on call order instead.)
    """

    def __init__(self, count: int, seed: int = 0):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count
        self.seed = seed

    def sample(self, clients: Sequence[ClientData], round_index: int) -> List[ClientData]:
        if self.count > len(clients):
            raise ValueError(
                f"cannot sample {self.count} of {len(clients)} clients"
            )
        rng = derive_rng(self.seed, _PARTICIPANT_STREAM, round_index)
        chosen = rng.choice(len(clients), size=self.count, replace=False)
        return [clients[i] for i in sorted(chosen)]


class RoundRobinSampler:
    """Deterministic rotation — useful in tests where coverage matters."""

    def __init__(self, count: int):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count

    def sample(self, clients: Sequence[ClientData], round_index: int) -> List[ClientData]:
        n = len(clients)
        start = (round_index * self.count) % n
        picked = [(start + offset) % n for offset in range(min(self.count, n))]
        return [clients[i] for i in picked]
