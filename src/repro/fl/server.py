"""``FederatedServer`` — compatibility shim over :class:`TrainingSession`.

The round loop now lives in :mod:`repro.fl.session`: an explicit,
serializable server state, ``step()``/``run_until()`` advancement, typed
lifecycle events, and round-level checkpointing.  This class preserves
the original monolithic surface — ``train()``, ``personalize_all()``,
``run()``, plus the ``global_state``/``round_records`` attributes — by
delegating every operation to an owned session.

New code should construct :class:`~repro.fl.session.TrainingSession`
directly; see the migration note in the README.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Union

from ..nn.serialize import StateDict
from .algorithm import FederatedAlgorithm
from .client import ClientData
from .config import FederatedConfig
from .execution import ExecutionBackend
from .history import RoundRecord, RunResult
from .session import TrainingSession

__all__ = ["FederatedServer"]


class FederatedServer:
    """Coordinates one federated run of a given algorithm (legacy API)."""

    def __init__(
        self,
        algorithm: FederatedAlgorithm,
        clients: Sequence[ClientData],
        config: FederatedConfig,
        novel_clients: Sequence[ClientData] = (),
        sampler=None,
        backend: Union[ExecutionBackend, str, None] = None,
        verbose: bool = False,
    ):
        self.session = TrainingSession(
            algorithm,
            clients,
            config,
            novel_clients=novel_clients,
            sampler=sampler,
            backend=backend,
            verbose=verbose,
        )

    # ------------------------------------------------------------------
    # Legacy attribute surface (all views over the session)
    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> FederatedAlgorithm:
        return self.session.algorithm

    @property
    def clients(self) -> List[ClientData]:
        return self.session.clients

    @property
    def novel_clients(self) -> List[ClientData]:
        return self.session.novel_clients

    @property
    def config(self) -> FederatedConfig:
        return self.session.config

    @property
    def sampler(self):
        return self.session.sampler

    @property
    def backend(self) -> ExecutionBackend:
        return self.session.backend

    @property
    def verbose(self) -> bool:
        return self.session.verbose

    @property
    def shared_memory_active(self) -> bool:
        return self.session.shared_memory_active

    @property
    def global_state(self) -> Optional[StateDict]:
        return self.session.global_state

    @property
    def round_records(self) -> List[RoundRecord]:
        return self.session.round_records

    # ------------------------------------------------------------------
    def train(self) -> StateDict:
        """Run the federated training stage and return the final global state.

        .. deprecated:: use ``TrainingSession.run()`` instead.
        """
        warnings.warn(
            "FederatedServer.train() is deprecated; construct a "
            "repro.fl.session.TrainingSession and call run() instead "
            "(see docs/architecture.md, 'Training sessions')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session.run()

    def personalize_all(self) -> RunResult:
        """Run the personalization stage on every client (train + novel).

        .. deprecated:: use ``TrainingSession.personalize()`` instead.
        """
        warnings.warn(
            "FederatedServer.personalize_all() is deprecated; construct a "
            "repro.fl.session.TrainingSession and call personalize() instead "
            "(see docs/architecture.md, 'Training sessions')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session.personalize()

    def run(self) -> RunResult:
        """Full experiment: training stage then personalization stage.

        .. deprecated:: use ``TrainingSession.execute()`` instead.
        """
        warnings.warn(
            "FederatedServer.run() is deprecated; construct a "
            "repro.fl.session.TrainingSession and call execute() instead "
            "(see docs/architecture.md, 'Training sessions')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session.execute()

    def close(self) -> None:
        """Release execution-backend resources (worker pools)."""
        self.session.close()
