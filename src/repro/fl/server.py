"""The federated server: round loop, aggregation, and the evaluation stage.

Mirrors the experiment protocol of §V-A: train the global model for R
rounds with a sampled subset of clients per round, then have *all* clients
— training clients and novel clients alike — download the final global
model and run the personalization stage.

Both stages dispatch per-client work through a pluggable
:class:`~repro.fl.execution.ExecutionBackend` (serial, thread pool, or
process pool).  Tasks are pure: they return the client update *and* the
client's mutated store, and the server writes both back on the
coordinating process, so results are identical across backends (see the
determinism contract in :mod:`repro.fl.execution`).
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..nn.serialize import StateDict
from .algorithm import ClientUpdate, FederatedAlgorithm
from .client import ClientData
from .config import FederatedConfig
from .execution import ExecutionBackend, resolve_backend
from .history import RoundRecord, RunResult
from .sampler import RandomSampler

__all__ = ["FederatedServer"]


@dataclass
class _ClientOutcome:
    """What one client task ships back to the coordinator.

    ``store`` carries the client's persistent algorithm state: under the
    process backend the worker mutates a pickled copy of the client, so the
    store must travel back explicitly for the server to reattach.
    """

    client_id: int
    result: object
    store: Dict


def _local_update_task(algorithm: FederatedAlgorithm, global_state: StateDict,
                       round_index: int, client: ClientData) -> _ClientOutcome:
    """One sampled client's round contribution (module-level: picklable)."""
    update = algorithm.local_update(client, global_state, round_index)
    return _ClientOutcome(client.client_id, update, client.store)


def _personalize_task(algorithm: FederatedAlgorithm, global_state: StateDict,
                      client: ClientData) -> _ClientOutcome:
    """One client's personalization stage (module-level: picklable)."""
    result = algorithm.personalize(client, global_state)
    return _ClientOutcome(client.client_id, result, client.store)


class FederatedServer:
    """Coordinates one federated run of a given algorithm."""

    def __init__(
        self,
        algorithm: FederatedAlgorithm,
        clients: Sequence[ClientData],
        config: FederatedConfig,
        novel_clients: Sequence[ClientData] = (),
        sampler=None,
        backend: Union[ExecutionBackend, str, None] = None,
        verbose: bool = False,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.algorithm = algorithm
        self.clients = list(clients)
        self.novel_clients = list(novel_clients)
        self.config = config
        self.sampler = sampler if sampler is not None else RandomSampler(
            min(config.clients_per_round, len(self.clients)), seed=config.seed
        )
        # An explicit backend (instance or name) overrides the config knobs;
        # the server owns — and closes — only backends it created itself.
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(
            backend if backend is not None else config.backend,
            workers=config.workers,
        )
        self.verbose = verbose
        self.global_state: Optional[StateDict] = None
        self.round_records: List[RoundRecord] = []
        self._warned_non_finite = False
        # Shared-memory client-data plane (repro.data.shm): with the knob
        # on (or on auto), ask the backend to move client datasets into a
        # shared store so per-round pickles ship handles, not arrays.
        # Serial/thread backends no-op; the process backend degrades
        # gracefully when shared memory cannot be created here.
        self.shared_memory_active = False
        if config.shared_memory is not False:
            self.shared_memory_active = self.backend.register_clients(
                self.clients + self.novel_clients
            )
            if config.shared_memory is True and not self.shared_memory_active:
                warnings.warn(
                    "shared_memory=True requested but the shared-memory data "
                    "plane could not activate (backend without a data plane, "
                    "or shared memory unavailable); falling back to inline "
                    "client pickling",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # ------------------------------------------------------------------
    def _dispatch(self, task, clients: Sequence[ClientData]) -> List[_ClientOutcome]:
        """Map a client task through the backend and reattach stores."""
        outcomes = self.backend.map_clients(task, clients)
        for client, outcome in zip(clients, outcomes):
            client.store = outcome.store
        return outcomes

    def close(self) -> None:
        """Release execution-backend resources (worker pools)."""
        self.backend.close()

    # ------------------------------------------------------------------
    def train(self) -> StateDict:
        """Run the federated training stage and return the final global state."""
        self.global_state = self.algorithm.build_global_state()
        for round_index in range(self.config.rounds):
            participants = self.sampler.sample(self.clients, round_index)
            task = functools.partial(
                _local_update_task, self.algorithm, self.global_state, round_index
            )
            updates: List[ClientUpdate] = [
                outcome.result for outcome in self._dispatch(task, participants)
            ]
            self.global_state = self.algorithm.aggregate(
                updates, self.global_state, round_index
            )
            # Non-finite client losses (divergence, dead activations) are
            # excluded from the mean but never silently: they are counted
            # into the round record and warned about once per run.
            losses: List[float] = []
            non_finite = 0
            for update in updates:
                value = update.metrics.get("loss")
                if value is None:
                    continue
                if np.isfinite(value):
                    losses.append(float(value))
                else:
                    non_finite += 1
            if non_finite and not self._warned_non_finite:
                self._warned_non_finite = True
                warnings.warn(
                    f"round {round_index}: {non_finite} client(s) reported a "
                    "non-finite training loss; they are excluded from "
                    "mean_loss and counted in RoundRecord.metrics"
                    "['non_finite_losses']",
                    RuntimeWarning,
                    stacklevel=2,
                )
            record = RoundRecord(
                round_index=round_index,
                participant_ids=[u.client_id for u in updates],
                mean_loss=float(np.mean(losses)) if losses else float("nan"),
                metrics={"non_finite_losses": float(non_finite)},
            )
            self.round_records.append(record)
            if self.verbose:
                print(
                    f"[{self.algorithm.name}] round {round_index + 1}/{self.config.rounds} "
                    f"loss={record.mean_loss:.4f}"
                )
        return self.global_state

    def personalize_all(self) -> RunResult:
        """Run the personalization stage on every client (train + novel)."""
        if self.global_state is None:
            raise RuntimeError("train() must run before personalize_all()")
        task = functools.partial(_personalize_task, self.algorithm, self.global_state)
        everyone = self.clients + self.novel_clients
        outcomes = self._dispatch(task, everyone)
        accuracies: Dict[int, float] = {}
        novel_accuracies: Dict[int, float] = {}
        for client, outcome in zip(everyone, outcomes):
            target = novel_accuracies if client.is_novel else accuracies
            target[client.client_id] = outcome.result.accuracy
        return RunResult(
            algorithm=self.algorithm.name,
            accuracies=accuracies,
            novel_accuracies=novel_accuracies,
            rounds=self.round_records,
        )

    def run(self) -> RunResult:
        """Full experiment: training stage then personalization stage."""
        try:
            self.train()
            return self.personalize_all()
        finally:
            if self._owns_backend:
                self.close()
