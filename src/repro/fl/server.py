"""The federated server: round loop, aggregation, and the evaluation stage.

Mirrors the experiment protocol of §V-A: train the global model for R
rounds with a sampled subset of clients per round, then have *all* clients
— training clients and novel clients alike — download the final global
model and run the personalization stage.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.serialize import StateDict
from .algorithm import ClientUpdate, FederatedAlgorithm
from .client import ClientData
from .config import FederatedConfig
from .history import RoundRecord, RunResult
from .sampler import RandomSampler

__all__ = ["FederatedServer"]


class FederatedServer:
    """Coordinates one federated run of a given algorithm."""

    def __init__(
        self,
        algorithm: FederatedAlgorithm,
        clients: Sequence[ClientData],
        config: FederatedConfig,
        novel_clients: Sequence[ClientData] = (),
        sampler=None,
        verbose: bool = False,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.algorithm = algorithm
        self.clients = list(clients)
        self.novel_clients = list(novel_clients)
        self.config = config
        self.sampler = sampler if sampler is not None else RandomSampler(
            min(config.clients_per_round, len(self.clients)), seed=config.seed
        )
        self.verbose = verbose
        self.global_state: Optional[StateDict] = None
        self.round_records: List[RoundRecord] = []

    # ------------------------------------------------------------------
    def train(self) -> StateDict:
        """Run the federated training stage and return the final global state."""
        self.global_state = self.algorithm.build_global_state()
        for round_index in range(self.config.rounds):
            participants = self.sampler.sample(self.clients, round_index)
            updates: List[ClientUpdate] = []
            for client in participants:
                update = self.algorithm.local_update(client, self.global_state, round_index)
                updates.append(update)
            self.global_state = self.algorithm.aggregate(
                updates, self.global_state, round_index
            )
            losses = [
                u.metrics["loss"] for u in updates
                if np.isfinite(u.metrics.get("loss", float("nan")))
            ]
            record = RoundRecord(
                round_index=round_index,
                participant_ids=[u.client_id for u in updates],
                mean_loss=float(np.mean(losses)) if losses else float("nan"),
            )
            self.round_records.append(record)
            if self.verbose:
                print(
                    f"[{self.algorithm.name}] round {round_index + 1}/{self.config.rounds} "
                    f"loss={record.mean_loss:.4f}"
                )
        return self.global_state

    def personalize_all(self) -> RunResult:
        """Run the personalization stage on every client (train + novel)."""
        if self.global_state is None:
            raise RuntimeError("train() must run before personalize_all()")
        accuracies = {}
        for client in self.clients:
            result = self.algorithm.personalize(client, self.global_state)
            accuracies[client.client_id] = result.accuracy
        novel_accuracies = {}
        for client in self.novel_clients:
            result = self.algorithm.personalize(client, self.global_state)
            novel_accuracies[client.client_id] = result.accuracy
        return RunResult(
            algorithm=self.algorithm.name,
            accuracies=accuracies,
            novel_accuracies=novel_accuracies,
            rounds=self.round_records,
        )

    def run(self) -> RunResult:
        """Full experiment: training stage then personalization stage."""
        self.train()
        return self.personalize_all()
