"""Run bookkeeping: per-round records and final per-client results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["RoundRecord", "RunResult"]


def _scalar(value) -> float:
    """Coerce numpy scalars (and ints) to plain Python floats for JSON."""
    if isinstance(value, np.generic):
        value = value.item()
    return float(value)


@dataclass
class RoundRecord:
    """Aggregated metrics for one communication round."""

    round_index: int
    participant_ids: List[int]
    mean_loss: float
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict:
        """A JSON-ready dict; numpy scalars become Python ints/floats."""
        return {
            "round_index": int(self.round_index),
            "participant_ids": [int(pid) for pid in self.participant_ids],
            "mean_loss": _scalar(self.mean_loss),
            "metrics": {str(k): _scalar(v) for k, v in self.metrics.items()},
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RoundRecord":
        return cls(
            round_index=int(payload["round_index"]),
            participant_ids=[int(pid) for pid in payload["participant_ids"]],
            mean_loss=float(payload["mean_loss"]),
            metrics={str(k): float(v)
                     for k, v in payload.get("metrics", {}).items()},
        )


@dataclass
class RunResult:
    """Everything a finished federated run reports.

    ``accuracies`` maps client id to personalized test accuracy for training
    clients; ``novel_accuracies`` does the same for clients that never
    participated in training (paper §V-D).
    """

    algorithm: str
    accuracies: Dict[int, float]
    novel_accuracies: Dict[int, float] = field(default_factory=dict)
    rounds: List[RoundRecord] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict:
        """A JSON-ready dict that :meth:`from_json` inverts exactly.

        Client ids become string keys (JSON objects require them) and all
        numpy scalars become Python floats; floats survive a
        ``json.dumps``/``loads`` round trip bit-for-bit because Python
        serializes them via ``repr``.
        """
        return {
            "algorithm": self.algorithm,
            "accuracies": {str(k): _scalar(v) for k, v in self.accuracies.items()},
            "novel_accuracies": {str(k): _scalar(v)
                                 for k, v in self.novel_accuracies.items()},
            "rounds": [record.to_json() for record in self.rounds],
            "extras": {str(k): _scalar(v) for k, v in self.extras.items()},
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "RunResult":
        return cls(
            algorithm=payload["algorithm"],
            accuracies={int(k): float(v)
                        for k, v in payload.get("accuracies", {}).items()},
            novel_accuracies={int(k): float(v)
                              for k, v in payload.get("novel_accuracies", {}).items()},
            rounds=[RoundRecord.from_json(r) for r in payload.get("rounds", [])],
            extras={str(k): float(v) for k, v in payload.get("extras", {}).items()},
        )

    def accuracy_vector(self, novel: bool = False) -> np.ndarray:
        source = self.novel_accuracies if novel else self.accuracies
        return np.array([source[k] for k in sorted(source)], dtype=np.float64)

    @property
    def mean_accuracy(self) -> float:
        vector = self.accuracy_vector()
        return float(vector.mean()) if vector.size else 0.0

    @property
    def accuracy_variance(self) -> float:
        """Population variance of client accuracies — the paper's fairness
        measure (lower is fairer)."""
        vector = self.accuracy_vector()
        return float(vector.var()) if vector.size else 0.0

    @property
    def accuracy_std(self) -> float:
        return float(np.sqrt(self.accuracy_variance))

    def novel_mean_accuracy(self) -> float:
        vector = self.accuracy_vector(novel=True)
        return float(vector.mean()) if vector.size else 0.0

    def novel_accuracy_variance(self) -> float:
        vector = self.accuracy_vector(novel=True)
        return float(vector.var()) if vector.size else 0.0

    def summary(self) -> Dict[str, float]:
        row = {
            "mean_accuracy": self.mean_accuracy,
            "accuracy_variance": self.accuracy_variance,
            "accuracy_std": self.accuracy_std,
        }
        if self.novel_accuracies:
            row["novel_mean_accuracy"] = self.novel_mean_accuracy()
            row["novel_accuracy_variance"] = self.novel_accuracy_variance()
        return row
