"""Run bookkeeping: per-round records and final per-client results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["RoundRecord", "RunResult"]


@dataclass
class RoundRecord:
    """Aggregated metrics for one communication round."""

    round_index: int
    participant_ids: List[int]
    mean_loss: float
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class RunResult:
    """Everything a finished federated run reports.

    ``accuracies`` maps client id to personalized test accuracy for training
    clients; ``novel_accuracies`` does the same for clients that never
    participated in training (paper §V-D).
    """

    algorithm: str
    accuracies: Dict[int, float]
    novel_accuracies: Dict[int, float] = field(default_factory=dict)
    rounds: List[RoundRecord] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)

    def accuracy_vector(self, novel: bool = False) -> np.ndarray:
        source = self.novel_accuracies if novel else self.accuracies
        return np.array([source[k] for k in sorted(source)], dtype=np.float64)

    @property
    def mean_accuracy(self) -> float:
        vector = self.accuracy_vector()
        return float(vector.mean()) if vector.size else 0.0

    @property
    def accuracy_variance(self) -> float:
        """Population variance of client accuracies — the paper's fairness
        measure (lower is fairer)."""
        vector = self.accuracy_vector()
        return float(vector.var()) if vector.size else 0.0

    @property
    def accuracy_std(self) -> float:
        return float(np.sqrt(self.accuracy_variance))

    def novel_mean_accuracy(self) -> float:
        vector = self.accuracy_vector(novel=True)
        return float(vector.mean()) if vector.size else 0.0

    def novel_accuracy_variance(self) -> float:
        vector = self.accuracy_vector(novel=True)
        return float(vector.var()) if vector.size else 0.0

    def summary(self) -> Dict[str, float]:
        row = {
            "mean_accuracy": self.mean_accuracy,
            "accuracy_variance": self.accuracy_variance,
            "accuracy_std": self.accuracy_std,
        }
        if self.novel_accuracies:
            row["novel_mean_accuracy"] = self.novel_mean_accuracy()
            row["novel_accuracy_variance"] = self.novel_accuracy_variance()
        return row
