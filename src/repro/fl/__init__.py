"""``repro.fl`` — the federated-learning simulation framework.

Substitutes for the Plato research framework used by the paper: an
in-process server/clients simulator with pluggable algorithms, client
sampling, aggregation, metric history, and the shared linear-probe
personalization stage.
"""

from .algorithm import ClientUpdate, FederatedAlgorithm, UpdateAccumulator
from .client import (
    ClientData,
    build_federation,
    build_novel_clients,
    derive_rng,
    payload_nbytes,
)
from .config import (
    AGGREGATION_POLICIES,
    PAPER_CONFIG,
    AvailabilitySpec,
    FederatedConfig,
)
from .execution import (
    BACKENDS,
    ExecutionBackend,
    ExecutionError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    derive_client_rng,
    resolve_backend,
)
from .history import RoundRecord, RunResult
from .models import ENCODER_PREFIX, HEAD_PREFIX, ClassifierModel
from .personalization import (
    PersonalizationResult,
    evaluate_linear_head,
    train_linear_probe,
)
from .population import (
    AvailabilityModel,
    BufferedAccumulator,
    ClientDescriptor,
    VirtualPopulation,
)
from .sampler import RandomSampler, RoundRobinSampler
from .server import FederatedServer
from .session import (
    EarlyStopping,
    EvalCadence,
    HistoryStreamer,
    RoundCheckpointer,
    ServerState,
    SessionCallback,
    TrainingSession,
    read_checkpoint,
    write_checkpoint,
)

__all__ = [
    "FederatedConfig",
    "PAPER_CONFIG",
    "AGGREGATION_POLICIES",
    "AvailabilitySpec",
    "AvailabilityModel",
    "VirtualPopulation",
    "ClientDescriptor",
    "BufferedAccumulator",
    "ClientData",
    "build_federation",
    "build_novel_clients",
    "derive_rng",
    "payload_nbytes",
    "ClientUpdate",
    "FederatedAlgorithm",
    "UpdateAccumulator",
    "FederatedServer",
    "TrainingSession",
    "ServerState",
    "SessionCallback",
    "HistoryStreamer",
    "EvalCadence",
    "EarlyStopping",
    "RoundCheckpointer",
    "read_checkpoint",
    "write_checkpoint",
    "ExecutionBackend",
    "ExecutionError",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "available_backends",
    "resolve_backend",
    "derive_client_rng",
    "RandomSampler",
    "RoundRobinSampler",
    "RoundRecord",
    "RunResult",
    "ClassifierModel",
    "ENCODER_PREFIX",
    "HEAD_PREFIX",
    "PersonalizationResult",
    "train_linear_probe",
    "evaluate_linear_head",
]
