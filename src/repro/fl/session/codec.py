"""Exact JSON codec for checkpoint state.

Session checkpoints must restore *bitwise* — a run resumed at round k has
to reproduce the uninterrupted run exactly — so this codec, unlike the
lossy ``repro.runs.serialize.to_jsonable``, preserves everything that can
change downstream arithmetic:

* numpy arrays keep their dtype (including byte order) and shape via a
  ``__nd__`` tag; element values round-trip exactly because Python's
  ``json`` serializes floats through ``repr`` (shortest form that parses
  back to the same double) and float32/float16 values are exactly
  representable as doubles;
* numpy scalars keep their dtype via a ``__np__`` tag;
* tuples stay tuples (``__tu__``) — client stores hold ``(state_dict,
  extra_state)`` pairs that algorithms unpack positionally;
* dicts with non-string keys (or keys colliding with a tag) are encoded
  as ordered pairs (``__map__``); all other dicts pass through with their
  insertion order intact (JSON objects preserve order).

Anything else — arbitrary objects, object-dtype arrays — raises
``TypeError`` eagerly, which is the same contract the process execution
backend enforces via pickling: per-client state must be plain data.

Two encodings share the walker:

* :func:`encode_value` / :func:`decode_value` — the legacy schema-1
  format: arrays inline as ``__nd__`` JSON float lists.  Kept exactly
  byte-stable as the compatibility read path (and for tiny states where
  a sidecar is not worth a second file).
* :func:`encode_with_columns` / :func:`decode_with_columns` — the
  schema-2 split: every ndarray leaf is extracted into a
  :class:`ColumnSink` and replaced by a ``__col__`` reference, leaving a
  small JSON skeleton whose arrays live in a binary ``.npcol`` container
  (:mod:`repro.arrays`).  Both encodings decode to *identical* values —
  the differential checkpoint tests pin that bitwise.

:class:`PackedState` applies the same split to cross-process IPC: the
process backend ships per-client algorithm state as one (skeleton,
packed-buffer) pair instead of a pickled tree of ndarrays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ...arrays import pack_columns, unpack_columns

__all__ = [
    "encode_value",
    "decode_value",
    "ColumnSink",
    "encode_with_columns",
    "decode_with_columns",
    "PackedState",
]

_ND = "__nd__"
_NP = "__np__"
_TU = "__tu__"
_MAP = "__map__"
_COL = "__col__"
_TAGS = frozenset({_ND, _NP, _TU, _MAP, _COL})


class ColumnSink:
    """Accumulates ndarray leaves during a split encode.

    Column names are sequential in encounter order (``a00000``, …), so
    encoding is deterministic: equal states yield equal skeletons and
    equal column sets.
    """

    def __init__(self) -> None:
        self.columns: Dict[str, np.ndarray] = {}

    def add(self, array: np.ndarray) -> str:
        name = f"a{len(self.columns):05d}"
        self.columns[name] = array
        return name


def _encode(value: Any, sink: Optional[ColumnSink]) -> Any:
    # bool is an int subclass: test it (via the exact-type tuple) first.
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise TypeError("cannot checkpoint object-dtype arrays")
        if sink is not None:
            return {_COL: sink.add(value)}
        # repro: allow[ARR001] -- the legacy schema-1 inline encoding, kept byte-stable as the compatibility read/write path
        data = np.ascontiguousarray(value).ravel().tolist()
        return {_ND: [value.dtype.str, list(value.shape), data]}
    if isinstance(value, np.generic):
        return {_NP: [value.dtype.str, value.item()]}
    if isinstance(value, tuple):
        return {_TU: [_encode(item, sink) for item in value]}
    if isinstance(value, list):
        return [_encode(item, sink) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and not (_TAGS & value.keys()):
            return {key: _encode(item, sink) for key, item in value.items()}
        return {_MAP: [[_encode(key, sink), _encode(item, sink)]
                       for key, item in value.items()]}
    # Plain-int/float subclasses (e.g. enum.IntEnum) would decode as their
    # base type; refuse rather than silently change type on resume.
    if isinstance(value, (bool, int, float, str)):
        raise TypeError(
            f"cannot checkpoint {type(value).__name__} (subclass of a scalar "
            "type); convert to the plain type first")
    raise TypeError(f"cannot checkpoint value of type {type(value).__name__}")


def _decode(value: Any, columns: Optional[Dict[str, np.ndarray]]) -> Any:
    if isinstance(value, list):
        return [_decode(item, columns) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            if _ND in value:
                dtype, shape, data = value[_ND]
                return np.array(data, dtype=np.dtype(dtype)).reshape(
                    [int(dim) for dim in shape])
            if _COL in value:
                name = value[_COL]
                if columns is None or name not in columns:
                    raise KeyError(
                        f"encoded value references array column {name!r} but "
                        "no such column was provided (missing or mismatched "
                        ".npcol sidecar)")
                return columns[name]
            if _NP in value:
                dtype, item = value[_NP]
                return np.dtype(dtype).type(item)
            if _TU in value:
                return tuple(_decode(item, columns) for item in value[_TU])
            if _MAP in value:
                return {_decode(key, columns): _decode(item, columns)
                        for key, item in value[_MAP]}
        return {key: _decode(item, columns) for key, item in value.items()}
    return value


def encode_value(value: Any) -> Any:
    """Recursively encode ``value`` into JSON-safe data, losslessly."""
    return _encode(value, None)


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` exactly."""
    return _decode(value, None)


def encode_with_columns(value: Any, sink: ColumnSink) -> Any:
    """Encode like :func:`encode_value`, but move every ndarray leaf into
    ``sink`` and emit a ``__col__`` reference in its place."""
    return _encode(value, sink)


def decode_with_columns(value: Any, columns: Dict[str, np.ndarray]) -> Any:
    """Invert :func:`encode_with_columns` given the sink's columns."""
    return _decode(value, columns)


class PackedState:
    """A nested state value, columnar-packed for cross-process transport.

    Pickles as a tiny JSON-shaped skeleton plus one contiguous ``.npcol``
    buffer (:func:`repro.arrays.pack_columns`) instead of a deep tree of
    individually pickled ndarrays — the wire format the process execution
    backend uses for per-client algorithm stores.  ``pack``/``unpack``
    round-trip exactly (dtypes, shapes, tuples, NaN payloads), and
    unpacked arrays are fresh and writable, so a worker or coordinator
    can mutate the restored store freely.
    """

    __slots__ = ("skeleton", "payload")

    def __init__(self, skeleton: Any, payload: bytes):
        self.skeleton = skeleton
        self.payload = payload

    @classmethod
    def pack(cls, value: Any) -> "PackedState":
        sink = ColumnSink()
        skeleton = encode_with_columns(value, sink)
        payload = pack_columns(sink.columns) if sink.columns else b""
        return cls(skeleton, payload)

    def unpack(self) -> Any:
        columns = (unpack_columns(self.payload, writable=True)
                   if self.payload else {})
        return decode_with_columns(self.skeleton, columns)

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def __reduce__(self):
        return (PackedState, (self.skeleton, self.payload))

    def __repr__(self) -> str:
        return f"PackedState(payload={len(self.payload)}B)"


def pack_store(store: Any) -> Any:
    """Pack a client store for dispatch; empty stores pass through."""
    if not store or isinstance(store, PackedState):
        return store
    return PackedState.pack(store)


def unpack_store(store: Any) -> Any:
    """Invert :func:`pack_store` (idempotent on plain stores)."""
    return store.unpack() if isinstance(store, PackedState) else store
