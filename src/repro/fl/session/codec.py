"""Exact JSON codec for checkpoint state.

Session checkpoints must restore *bitwise* — a run resumed at round k has
to reproduce the uninterrupted run exactly — so this codec, unlike the
lossy ``repro.runs.serialize.to_jsonable``, preserves everything that can
change downstream arithmetic:

* numpy arrays keep their dtype (including byte order) and shape via a
  ``__nd__`` tag; element values round-trip exactly because Python's
  ``json`` serializes floats through ``repr`` (shortest form that parses
  back to the same double) and float32/float16 values are exactly
  representable as doubles;
* numpy scalars keep their dtype via a ``__np__`` tag;
* tuples stay tuples (``__tu__``) — client stores hold ``(state_dict,
  extra_state)`` pairs that algorithms unpack positionally;
* dicts with non-string keys (or keys colliding with a tag) are encoded
  as ordered pairs (``__map__``); all other dicts pass through with their
  insertion order intact (JSON objects preserve order).

Anything else — arbitrary objects, object-dtype arrays — raises
``TypeError`` eagerly, which is the same contract the process execution
backend enforces via pickling: per-client state must be plain data.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["encode_value", "decode_value"]

_ND = "__nd__"
_NP = "__np__"
_TU = "__tu__"
_MAP = "__map__"
_TAGS = frozenset({_ND, _NP, _TU, _MAP})


def encode_value(value: Any) -> Any:
    """Recursively encode ``value`` into JSON-safe data, losslessly."""
    # bool is an int subclass: test it (via the exact-type tuple) first.
    if value is None or type(value) in (bool, int, float, str):
        return value
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise TypeError("cannot checkpoint object-dtype arrays")
        return {_ND: [value.dtype.str, list(value.shape),
                      np.ascontiguousarray(value).ravel().tolist()]}
    if isinstance(value, np.generic):
        return {_NP: [value.dtype.str, value.item()]}
    if isinstance(value, tuple):
        return {_TU: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and not (_TAGS & value.keys()):
            return {key: encode_value(item) for key, item in value.items()}
        return {_MAP: [[encode_value(key), encode_value(item)]
                       for key, item in value.items()]}
    # Plain-int/float subclasses (e.g. enum.IntEnum) would decode as their
    # base type; refuse rather than silently change type on resume.
    if isinstance(value, (bool, int, float, str)):
        raise TypeError(
            f"cannot checkpoint {type(value).__name__} (subclass of a scalar "
            "type); convert to the plain type first")
    raise TypeError(f"cannot checkpoint value of type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` exactly."""
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        if len(value) == 1:
            if _ND in value:
                dtype, shape, data = value[_ND]
                return np.array(data, dtype=np.dtype(dtype)).reshape(
                    [int(dim) for dim in shape])
            if _NP in value:
                dtype, item = value[_NP]
                return np.dtype(dtype).type(item)
            if _TU in value:
                return tuple(decode_value(item) for item in value[_TU])
            if _MAP in value:
                return {decode_value(key): decode_value(item)
                        for key, item in value[_MAP]}
        return {key: decode_value(item) for key, item in value.items()}
    return value
