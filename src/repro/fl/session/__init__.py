"""``repro.fl.session`` — the composable, checkpointable round-loop API.

:class:`TrainingSession` owns an explicit, serializable
:class:`ServerState`, advances it via ``step()``/``run_until()``, emits
typed lifecycle events to registered callbacks, and checkpoints/restores
at round granularity with bitwise-exact resume.  ``FederatedServer``
remains as a thin compatibility shim over this package.
"""

from .callbacks import EarlyStopping, EvalCadence, HistoryStreamer, RoundCheckpointer
from .codec import PackedState, decode_value, encode_value
from .events import (
    AggregateDone,
    ClientUpdateDone,
    EVENT_HOOKS,
    PersonalizeDone,
    RoundBegin,
    RoundEnd,
    SessionCallback,
    SessionEvent,
)
from .session import TrainingSession, default_session_context
from .state import (
    CHECKPOINT_SCHEMA,
    COLUMNAR_SCHEMA,
    ServerState,
    checkpoint_total_bytes,
    read_checkpoint,
    remove_checkpoint,
    write_checkpoint,
)

__all__ = [
    "TrainingSession",
    "default_session_context",
    "ServerState",
    "CHECKPOINT_SCHEMA",
    "COLUMNAR_SCHEMA",
    "read_checkpoint",
    "write_checkpoint",
    "remove_checkpoint",
    "checkpoint_total_bytes",
    "encode_value",
    "decode_value",
    "PackedState",
    "SessionEvent",
    "RoundBegin",
    "ClientUpdateDone",
    "AggregateDone",
    "RoundEnd",
    "PersonalizeDone",
    "SessionCallback",
    "EVENT_HOOKS",
    "HistoryStreamer",
    "EvalCadence",
    "EarlyStopping",
    "RoundCheckpointer",
]
