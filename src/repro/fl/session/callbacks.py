"""Built-in session callbacks: history streaming, eval cadence, early
stopping, and round-level checkpointing.

All four are ordinary :class:`~repro.fl.session.events.SessionCallback`
subclasses — nothing here is privileged, and user callbacks compose with
them freely.  None of them changes training results: they observe, stop,
or persist, but never mutate round records or model state.
"""

from __future__ import annotations

import json
import math
from contextlib import nullcontext
from pathlib import Path
from typing import IO, Callable, Dict, List, Optional, Tuple, Union

from .events import PersonalizeDone, RoundEnd, SessionCallback
from .state import checkpoint_total_bytes, remove_checkpoint, write_checkpoint

__all__ = [
    "HistoryStreamer",
    "EvalCadence",
    "EarlyStopping",
    "RoundCheckpointer",
]


def _session_span(session, name: str, **attrs):
    """A span on the session's tracer, or a no-op when telemetry is off.

    Callbacks fire inside the round loop but may also run against shim
    hosts without a tracer attribute, hence the ``getattr``.
    """
    tracer = getattr(session, "tracer", None)
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


def _session_count(session, name: str, value: float = 1.0) -> None:
    tracer = getattr(session, "tracer", None)
    if tracer is not None:
        tracer.count(name, value)


class HistoryStreamer(SessionCallback):
    """Stream round records (and the final summary) as JSON lines.

    ``target`` is a path — opened in append mode per write, so a crash
    loses at most the line in flight — or any file-like object with a
    ``write`` method (handy for tests and in-memory capture).
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        self._path: Optional[Path] = None
        self._stream: Optional[IO[str]] = None
        if hasattr(target, "write"):
            self._stream = target
        else:
            self._path = Path(target)

    def _emit_line(self, payload: Dict) -> None:
        line = json.dumps(payload, sort_keys=True) + "\n"
        if self._stream is not None:
            self._stream.write(line)
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # repro: allow[ATM001] -- append-only event stream; consumers tolerate a truncated tail line
        with open(self._path, "a") as stream:
            stream.write(line)

    def on_round_end(self, session, event: RoundEnd) -> None:
        with _session_span(session, "history_write", round=event.round_index):
            self._emit_line({"event": "round",
                             "record": event.record.to_json()})

    def on_personalize_done(self, session, event: PersonalizeDone) -> None:
        with _session_span(session, "history_write"):
            self._emit_line({"event": "result",
                             "algorithm": event.result.algorithm,
                             "summary": event.result.summary()})


class EvalCadence(SessionCallback):
    """Run an evaluation function every ``every`` rounds.

    ``evaluate(session)`` returns a metrics dict; results accumulate in
    :attr:`history` as ``(round_index, metrics)`` pairs.  The cadence
    counts *completed* rounds, so ``every=5`` evaluates after rounds 4,
    9, 14, ….  Round records are never mutated — periodic eval must not
    change what an uninterrupted or resumed run persists.
    """

    def __init__(self, evaluate: Callable[..., Dict[str, float]], every: int = 1):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.evaluate = evaluate
        self.every = every
        self.history: List[Tuple[int, Dict[str, float]]] = []

    def on_round_end(self, session, event: RoundEnd) -> None:
        if (event.round_index + 1) % self.every == 0:
            with _session_span(session, "eval", round=event.round_index):
                self.history.append((event.round_index,
                                     self.evaluate(session)))


class EarlyStopping(SessionCallback):
    """Request a stop when a round metric stops improving.

    Watches ``record.mean_loss`` (the default) or any key of
    ``record.metrics``; non-finite values never count as improvement.
    After ``patience`` consecutive rounds without an improvement of at
    least ``min_delta``, calls ``session.request_stop()`` — the session
    finishes the current round cleanly and ``run_until`` returns early.

    Rounds with no participants at all (availability churn can empty a
    round — see :mod:`repro.fl.population`) neither improve nor consume
    patience: an idle server learns nothing about convergence, so a
    churn-heavy stretch must not trigger a spurious stop.
    """

    def __init__(self, metric: str = "mean_loss", patience: int = 3,
                 min_delta: float = 0.0, mode: str = "min"):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.metric = metric
        self.patience = patience
        self.min_delta = min_delta
        self.mode = mode
        self.best: Optional[float] = None
        self.stopped_round: Optional[int] = None
        self._stale_rounds = 0

    def _metric_value(self, record) -> Optional[float]:
        if self.metric == "mean_loss":
            value = record.mean_loss
        else:
            value = record.metrics.get(self.metric)
        if value is None or not math.isfinite(value):
            return None
        return float(value)

    def on_round_end(self, session, event: RoundEnd) -> None:
        if not event.record.participant_ids:
            return
        value = self._metric_value(event.record)
        improved = False
        if value is not None:
            if self.best is None:
                improved = True
            elif self.mode == "min":
                improved = value < self.best - self.min_delta
            else:
                improved = value > self.best + self.min_delta
        if improved:
            self.best = value
            self._stale_rounds = 0
            return
        self._stale_rounds += 1
        if self._stale_rounds >= self.patience and self.stopped_round is None:
            self.stopped_round = event.round_index
            session.request_stop()


class RoundCheckpointer(SessionCallback):
    """Persist the session's :class:`ServerState` after rounds complete.

    One file, atomically replaced (write-then-``os.replace``, the same
    discipline as the run store) every ``every`` completed rounds — a
    killed run resumes from its last finished checkpointed round instead
    of round 0.  The checkpoint fires on ``round_end``, i.e. *after* the
    session committed the round, so the stored ``round_index`` is the
    next round to execute.

    ``keep_last=None`` (default) keeps that single-file behaviour.
    ``keep_last=N`` switches to *retained history*: each write lands in a
    numbered sibling (``<stem>-r000007<suffix>`` after round 6 commits)
    and only the newest ``N`` numbered files survive — older ones are
    pruned after each write, never before, so a crash mid-write still
    leaves the previous ``N`` intact.  :attr:`path` always points at the
    most recent checkpoint: in retention mode it is atomically replaced
    alongside the numbered copy, so resume code that only knows the base
    path keeps working.

    Checkpoints are manifest + ``.npcol`` sidecar pairs (see
    :mod:`repro.fl.session.state`), so pruning goes through
    :func:`~repro.fl.session.state.remove_checkpoint` — a stale manifest
    and the sidecar it alone referenced disappear together, and orphaned
    sidecars never accumulate.  Two counters land on the session tracer
    per write: ``checkpoint.bytes`` (manifest + sidecar footprint of the
    base checkpoint) and ``checkpoint.encode_s`` (wall-clock of the
    encode + write, measured on the tracer's own clock so no timing ever
    touches the state being persisted).
    """

    def __init__(self, path: Union[str, Path], every: int = 1,
                 keep_last: Optional[int] = None):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep_last is not None and keep_last < 1:
            raise ValueError(f"keep_last must be None or >= 1, got {keep_last}")
        self.path = Path(path)
        self.every = every
        self.keep_last = keep_last
        self.writes = 0

    def _numbered_path(self, round_index: int) -> Path:
        suffix = self.path.suffix or ".json"
        return self.path.with_name(
            f"{self.path.stem}-r{round_index + 1:06d}{suffix}")

    def retained(self) -> List[Path]:
        """Numbered checkpoints currently on disk, oldest first."""
        suffix = self.path.suffix or ".json"
        pattern = f"{self.path.stem}-r[0-9][0-9][0-9][0-9][0-9][0-9]{suffix}"
        return sorted(self.path.parent.glob(pattern))

    def on_round_end(self, session, event: RoundEnd) -> None:
        if (event.round_index + 1) % self.every != 0:
            return
        with _session_span(session, "checkpoint", round=event.round_index):
            state = session.capture_state()
            tracer = getattr(session, "tracer", None)
            started = tracer.now() if tracer is not None else None
            if self.keep_last is not None:
                write_checkpoint(state, self._numbered_path(event.round_index))
                for stale in self.retained()[:-self.keep_last]:
                    remove_checkpoint(stale)
            written = write_checkpoint(state, self.path)
            if started is not None:
                _session_count(session, "checkpoint.encode_s",
                               tracer.now() - started)
            _session_count(session, "checkpoint.bytes",
                           checkpoint_total_bytes(written))
            _session_count(session, "checkpoint.writes")
        self.writes += 1
