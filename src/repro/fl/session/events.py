"""Typed lifecycle events and the callback interface of a session.

A :class:`~repro.fl.session.TrainingSession` emits one event object at
each seam of the round loop, in a fixed order per round::

    round_begin
      client_update_done   (one per participant, in completion order)
    aggregate_done
    round_end
    ...
    personalize_done       (once, after the personalization stage)

Callbacks subclass :class:`SessionCallback` and override the hooks they
care about; every default hook delegates to :meth:`SessionCallback.on_event`,
so a catch-all observer only needs to override that one method.  Hooks
run synchronously on the coordinating thread, in registration order —
a callback may read session state freely and may call
``session.request_stop()`` or ``session.save_checkpoint(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from ..algorithm import ClientUpdate
from ..history import RoundRecord, RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import TrainingSession

__all__ = [
    "SessionEvent",
    "RoundBegin",
    "ClientUpdateDone",
    "AggregateDone",
    "RoundEnd",
    "PersonalizeDone",
    "SessionCallback",
    "EVENT_HOOKS",
]


@dataclass(frozen=True)
class SessionEvent:
    """Base class of everything a session emits."""


@dataclass(frozen=True)
class RoundBegin(SessionEvent):
    """A round is starting; participants have been sampled."""

    round_index: int
    participant_ids: Tuple[int, ...]


@dataclass(frozen=True)
class ClientUpdateDone(SessionEvent):
    """One participant's local update completed (and was handed to the
    aggregator).  Fires in *completion* order under parallel backends;
    ``update`` is the client's full :class:`ClientUpdate`."""

    round_index: int
    client_id: int
    update: ClientUpdate


@dataclass(frozen=True)
class AggregateDone(SessionEvent):
    """All updates of the round are folded into the next global state."""

    round_index: int
    num_updates: int


@dataclass(frozen=True)
class RoundEnd(SessionEvent):
    """The round is fully committed: state advanced, record appended.

    Fires *after* the session state moved to ``round_index + 1``, so a
    checkpoint taken here resumes at the next round.
    """

    round_index: int
    record: RoundRecord


@dataclass(frozen=True)
class PersonalizeDone(SessionEvent):
    """The personalization stage finished with the run's final result."""

    result: RunResult


class SessionCallback:
    """Observer of session lifecycle events; override what you need."""

    def on_event(self, session: "TrainingSession", event: SessionEvent) -> None:
        """Catch-all hook; every default per-event hook lands here."""

    def on_round_begin(self, session: "TrainingSession",
                       event: RoundBegin) -> None:
        self.on_event(session, event)

    def on_client_update_done(self, session: "TrainingSession",
                              event: ClientUpdateDone) -> None:
        self.on_event(session, event)

    def on_aggregate_done(self, session: "TrainingSession",
                          event: AggregateDone) -> None:
        self.on_event(session, event)

    def on_round_end(self, session: "TrainingSession", event: RoundEnd) -> None:
        self.on_event(session, event)

    def on_personalize_done(self, session: "TrainingSession",
                            event: PersonalizeDone) -> None:
        self.on_event(session, event)


EVENT_HOOKS: Dict[type, str] = {
    RoundBegin: "on_round_begin",
    ClientUpdateDone: "on_client_update_done",
    AggregateDone: "on_aggregate_done",
    RoundEnd: "on_round_end",
    PersonalizeDone: "on_personalize_done",
}
"""Event type → callback hook name (the session's dispatch table)."""
