"""The composable, checkpointable round loop: :class:`TrainingSession`.

This replaces the old ``FederatedServer.train()`` monolith with a session
object that

* owns an explicit, serializable :class:`~repro.fl.session.state.ServerState`
  (global model, round cursor, history, algorithm server state, client
  stores) and advances it via :meth:`step` / :meth:`run_until`;
* emits typed lifecycle events (:mod:`repro.fl.session.events`) to
  registered callbacks at every seam of the loop;
* consumes client updates as an *iterator of completed results*
  (``ExecutionBackend.imap_clients``), handing each update to the round's
  :class:`~repro.fl.algorithm.UpdateAccumulator` the moment it finishes —
  store write-back and per-update aggregation work overlap with
  still-running clients instead of waiting for the round barrier;
* checkpoints and restores at round granularity: a run resumed from a
  checkpoint taken at round k is bitwise identical to the uninterrupted
  run, across serial/thread/process backends.

``FederatedServer`` (:mod:`repro.fl.server`) survives as a thin
compatibility shim over this class.
"""

from __future__ import annotations

import copy
import functools
import hashlib
import json
import warnings
from contextlib import nullcontext
from dataclasses import asdict, dataclass
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...nn.serialize import StateDict, clone_state
from ...telemetry import InstrumentedTask, TaskOutcome, Tracer, current_tracer
from ..algorithm import ClientUpdate, FederatedAlgorithm, UpdateAccumulator
from ..client import ClientData
from ..config import FederatedConfig
from ..execution import ExecutionBackend, resolve_backend
from ..history import RoundRecord, RunResult
from ..population import AvailabilityModel, BufferedAccumulator, VirtualPopulation
from ..sampler import RandomSampler
from .events import (
    AggregateDone,
    ClientUpdateDone,
    EVENT_HOOKS,
    PersonalizeDone,
    RoundBegin,
    RoundEnd,
    SessionCallback,
    SessionEvent,
)
from .codec import PackedState, pack_store, unpack_store
from .state import ServerState, read_checkpoint, write_checkpoint

__all__ = ["TrainingSession", "default_session_context"]


@dataclass
class _ClientOutcome:
    """What one client task ships back to the coordinator.

    ``store`` carries the client's persistent algorithm state: under the
    process backend the worker mutates a pickled copy of the client, so the
    store must travel back explicitly for the coordinator to reattach.
    When the dispatching session packs stores for IPC (process backend),
    ``store`` travels both ways as a columnar
    :class:`~repro.fl.session.codec.PackedState` buffer instead of a
    pickled tree of ndarrays; the write-back sites unpack it.
    """

    client_id: int
    result: object
    store: Dict


def _unpack_client_store(client: ClientData) -> bool:
    """Restore a packed incoming store before the algorithm touches it.

    Returns whether the store arrived packed — the task repacks its reply
    iff it did, so serial/thread dispatch (never packed) is bit-for-bit
    untouched and the serial *fallback* of the process backend stays safe
    (pack/unpack round-trips exactly, and the task leaves the client it
    was handed holding a plain store either way).
    """
    if isinstance(client.store, PackedState):
        client.store = client.store.unpack()
        return True
    return False


def _local_update_task(algorithm: FederatedAlgorithm, global_state: StateDict,
                       round_index: int, client: ClientData) -> _ClientOutcome:
    """One sampled client's round contribution (module-level: picklable)."""
    packed = _unpack_client_store(client)
    update = algorithm.local_update(client, global_state, round_index)
    store = pack_store(client.store) if packed else client.store
    return _ClientOutcome(client.client_id, update, store)


def _cohort_update_task(algorithm: FederatedAlgorithm, global_state: StateDict,
                        round_index: int, clients: Sequence[ClientData]
                        ) -> List[_ClientOutcome]:
    """One cohort's round contribution (module-level: picklable).

    Returns one outcome per client, in cohort order, so the coordinator can
    reattach stores and feed the aggregator at original input positions.
    """
    packed = [_unpack_client_store(client) for client in clients]
    updates = algorithm.cohort_update(clients, global_state, round_index)
    return [_ClientOutcome(client.client_id, update,
                           pack_store(client.store) if was_packed
                           else client.store)
            for client, update, was_packed in zip(clients, updates, packed)]


def _personalize_task(algorithm: FederatedAlgorithm, global_state: StateDict,
                      client: ClientData) -> _ClientOutcome:
    """One client's personalization stage (module-level: picklable)."""
    packed = _unpack_client_store(client)
    result = algorithm.personalize(client, global_state)
    store = pack_store(client.store) if packed else client.store
    return _ClientOutcome(client.client_id, result, store)


def _client_span_attrs(round_index: int, client: ClientData) -> Dict:
    """Span attrs for one client-update task (module-level: picklable)."""
    return {"round": round_index, "client_id": int(client.client_id)}


def _cohort_span_attrs(round_index: int,
                       clients: Sequence[ClientData]) -> Dict:
    """Span attrs for one cohort-update task (module-level: picklable)."""
    return {"round": round_index, "cohort_size": len(clients)}


def _personalize_span_attrs(client: ClientData) -> Dict:
    """Span attrs for one personalize task (module-level: picklable)."""
    return {"client_id": int(client.client_id)}


# FederatedConfig knobs that change wall-clock, never results (see
# :mod:`repro.fl.execution`) — excluded from the context fingerprint so a
# checkpoint taken under one backend restores under any other.
_EXECUTION_KNOBS = ("backend", "workers", "shared_memory", "client_batch")

# Population-plane knobs are omitted from the context payload while at
# their defaults (mirroring runs.serialize.DEFAULT_OMITTED_FIELDS, which
# the fl layer cannot import), so checkpoints taken before those knobs
# existed keep restoring.
_CONTEXT_OMITTED = {
    field.name: field.default for field in dataclass_fields(FederatedConfig)
    if field.name in ("availability", "aggregation", "aggregation_buffer",
                      "staleness_decay")
}


def default_session_context(algorithm: FederatedAlgorithm,
                            clients: Union[Sequence[ClientData],
                                           VirtualPopulation],
                            config) -> str:
    """Fingerprint of what a checkpoint is only valid against.

    Hashes the algorithm name, the result-determining config fields, and
    the federation's shape — client ids and local sample counts for a
    materialized client list, or the O(1)
    :meth:`~repro.fl.population.VirtualPopulation.context_payload` for a
    virtual population (enumerating a million clients into a checkpoint
    guard would defeat laziness).  It is a guard against *accidental*
    cross-run resume — a different seed, sample count, or client grid —
    not a cryptographic identity of the data.  The experiment harness
    substitutes a stronger fingerprint of the full
    :class:`~repro.eval.harness.ExperimentSpec`.
    """
    config_payload = {name: value for name, value in asdict(config).items()
                      if name not in _EXECUTION_KNOBS}
    for name, default in _CONTEXT_OMITTED.items():
        if name in config_payload and config_payload[name] == default:
            config_payload.pop(name)
    if isinstance(clients, VirtualPopulation):
        clients_payload = clients.context_payload()
    else:
        clients_payload = [[int(client.client_id),
                            int(client.num_train_samples)]
                           for client in clients]
    payload = {
        "algorithm": algorithm.name,
        "config": config_payload,
        "clients": clients_payload,
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return digest[:16]


class TrainingSession:
    """Coordinates one federated run of a given algorithm, resumably.

    ``clients`` is either a materialized ``Sequence[ClientData]`` (the
    classic shape) or a :class:`~repro.fl.population.VirtualPopulation`,
    in which case only sampled participants are ever realized and the
    session drives the population's round pinning
    (:meth:`~repro.fl.population.VirtualPopulation.realize_round` /
    ``end_round``).  With ``config.availability`` set to an active
    :class:`~repro.fl.config.AvailabilitySpec`, sampling goes through the
    id surface (``sampler.sample_ids``) over the deterministic per-round
    online pool — custom samplers used under churn or populations must
    implement ``sample_ids``; the classic ``sample(clients, round)`` path
    is byte-for-byte untouched otherwise.
    """

    def __init__(
        self,
        algorithm: FederatedAlgorithm,
        clients: Union[Sequence[ClientData], VirtualPopulation],
        config: FederatedConfig,
        novel_clients: Sequence[ClientData] = (),
        sampler=None,
        backend: Union[ExecutionBackend, str, None] = None,
        callbacks: Sequence[SessionCallback] = (),
        context: Optional[str] = None,
        verbose: bool = False,
        tracer: Optional[Tracer] = None,
    ):
        # Telemetry is observation-only: spans and counters go to the
        # tracer (explicit, or the ambient one active at construction);
        # with no tracer every instrumentation point is a no-op and the
        # round loop runs exactly the un-instrumented code path.
        self.tracer = tracer if tracer is not None else current_tracer()
        self.algorithm = algorithm
        if isinstance(clients, VirtualPopulation):
            self.population: Optional[VirtualPopulation] = clients
            self.clients: List[ClientData] = []
            self._num_clients = len(clients)
        else:
            self.population = None
            self.clients = list(clients)
            self._num_clients = len(self.clients)
        if self._num_clients < 1:
            raise ValueError("need at least one client")
        self._clients_by_id = {client.client_id: client
                               for client in self.clients}
        self.novel_clients = list(novel_clients)
        self.config = config
        self.sampler = sampler if sampler is not None else RandomSampler(
            min(config.clients_per_round, self._num_clients), seed=config.seed
        )
        # The availability model only exists when the spec changes
        # something: an inactive spec (or none) keeps the legacy sampling
        # path — and its participant sets — byte-for-byte intact.
        spec = config.availability
        self._availability: Optional[AvailabilityModel] = None
        if spec is not None and spec.is_active:
            self._availability = AvailabilityModel(
                spec, num_clients=self._num_clients, seed=config.seed)
        # An explicit backend (instance or name) overrides the config knobs;
        # the session owns — and closes — only backends it created itself.
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(
            backend if backend is not None else config.backend,
            workers=config.workers,
        )
        self.verbose = verbose
        self.callbacks: List[SessionCallback] = list(callbacks)
        self.context = (context if context is not None
                        else default_session_context(
                            algorithm,
                            self.population if self.population is not None
                            else self.clients,
                            config))
        self._state = ServerState(algorithm=algorithm.name)
        self._initialized = False
        self._stop_requested = False
        self._warned_non_finite = False
        # Columnar IPC for per-client algorithm state: backends that pickle
        # clients across a process boundary ship each non-empty store as one
        # PackedState buffer (repro.arrays) instead of a pickled tree of
        # ndarrays.  Serial/thread backends share memory with the
        # coordinator, so packing would be pure overhead there.
        self._pack_ipc = bool(getattr(self.backend, "uses_data_plane", False))
        # Shared-memory client-data plane (repro.data.shm): with the knob
        # on (or on auto), ask the backend to move client datasets into a
        # shared store so per-round pickles ship handles, not arrays.
        # Serial/thread backends no-op; the process backend degrades
        # gracefully when shared memory cannot be created here.  A virtual
        # population owns its own per-client segments (created at
        # realization, released at eviction), so the session only asks it
        # to turn the plane on when the backend would actually use it.
        self.shared_memory_active = False
        if config.shared_memory is not False:
            if self.population is not None:
                if getattr(self.backend, "uses_data_plane", False):
                    self.shared_memory_active = (
                        self.population.enable_shared_memory())
                    if self.novel_clients:
                        self.backend.register_clients(self.novel_clients)
            else:
                self.shared_memory_active = self.backend.register_clients(
                    self.clients + self.novel_clients
                )
            if config.shared_memory is True and not self.shared_memory_active:
                warnings.warn(
                    "shared_memory=True requested but the shared-memory data "
                    "plane could not activate (backend without a data plane, "
                    "or shared memory unavailable); falling back to inline "
                    "client pickling",
                    RuntimeWarning,
                    stacklevel=2,
                )

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def round_index(self) -> int:
        """The next round to execute (== number of completed rounds)."""
        return self._state.round_index

    @property
    def global_state(self) -> Optional[StateDict]:
        return self._state.global_state

    @property
    def round_records(self) -> List[RoundRecord]:
        return self._state.round_records

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def request_stop(self) -> None:
        """Ask the run loop to stop after the current round commits."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Callbacks and events
    # ------------------------------------------------------------------
    def add_callback(self, callback: SessionCallback) -> SessionCallback:
        self.callbacks.append(callback)
        return callback

    def remove_callback(self, callback: SessionCallback) -> None:
        self.callbacks.remove(callback)

    def _emit(self, event: SessionEvent) -> None:
        hook = EVENT_HOOKS.get(type(event), "on_event")
        for callback in self.callbacks:
            getattr(callback, hook)(self, event)

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _span(self, name: str, **attrs):
        """A tracer span, or a no-op context when telemetry is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def _count(self, name: str, value: float = 1.0) -> None:
        if self.tracer is not None:
            self.tracer.count(name, value)

    def _instrument(self, task, span_name: str, describe):
        """Wrap a backend task so workers record spans shipped back with
        their results (no-op passthrough when telemetry is off)."""
        if self.tracer is None:
            return task
        return InstrumentedTask(task, span_name, describe=describe)

    def _unbox(self, outcome):
        """Merge a worker fragment (if any) and return the task's result."""
        if isinstance(outcome, TaskOutcome):
            self.tracer.merge_fragment(outcome.telemetry)
            return outcome.result
        return outcome

    # ------------------------------------------------------------------
    # Columnar store IPC (process backend)
    # ------------------------------------------------------------------
    def _pack_participant_stores(self, clients: Sequence[ClientData]) -> None:
        """Pack non-empty stores into columnar buffers before dispatch."""
        if not self._pack_ipc:
            return
        for client in clients:
            client.store = pack_store(client.store)

    def _restore_participant_stores(self, clients: Sequence[ClientData]
                                    ) -> None:
        """Unpack any store still packed (error paths; write-back already
        unpacked the happy path), so no PackedState ever reaches
        :meth:`capture_state` or the next round's algorithm code."""
        if not self._pack_ipc:
            return
        for client in clients:
            client.store = unpack_store(client.store)

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Build the round-0 global state (idempotent)."""
        if not self._initialized:
            self._state.global_state = self.algorithm.build_global_state()
            self._initialized = True

    def step(self) -> RoundRecord:
        """Advance exactly one communication round and commit it."""
        self.initialize()
        round_index = self._state.round_index
        with self._span("round", round=round_index):
            return self._step_inner(round_index)

    def _sample_participants(self, round_index: int
                             ) -> Tuple[List[ClientData], List[int]]:
        """This round's realized participants plus mid-round dropout ids.

        The legacy path — materialized clients, no availability model —
        calls ``sampler.sample`` exactly as it always has, so existing
        participant sets are untouched.  Everything else goes through the
        id surface: churn filters the candidate pool (clamping the sample
        size to what is online), dropout removes sampled participants
        before any local work runs (their data is never realized), and a
        virtual population realizes only the survivors.
        """
        model = self._availability
        if self.population is None and model is None:
            return self.sampler.sample(self.clients, round_index), []
        if self.population is not None:
            candidates: Sequence[int] = self.population.client_ids
        else:
            candidates = [client.client_id for client in self.clients]
        if model is not None:
            positions = model.available_positions(round_index)
            candidates = [int(candidates[position]) for position in positions]
            count = min(getattr(self.sampler, "count", len(candidates)),
                        len(candidates))
            sampled = self.sampler.sample_ids(candidates, round_index,
                                              count=count)
        else:
            sampled = self.sampler.sample_ids(candidates, round_index)
        dropped: List[int] = []
        active = sampled
        if model is not None and model.spec.dropout > 0.0:
            active = []
            for client_id in sampled:
                if model.drops_out(client_id, round_index):
                    dropped.append(client_id)
                else:
                    active.append(client_id)
        if self.population is not None:
            participants = self.population.realize_round(active)
        else:
            participants = [self._clients_by_id[client_id]
                            for client_id in active]
        return participants, dropped

    def _make_round_aggregator(self, participants: Sequence[ClientData],
                               round_index: int) -> UpdateAccumulator:
        """The round's update consumer for the configured policy.

        ``"sync"`` defers to the algorithm's own seam
        (:meth:`~repro.fl.algorithm.FederatedAlgorithm.make_aggregator`)
        — the CI bitwise contract.  The async policies wrap the same
        algorithm in a :class:`~repro.fl.population.BufferedAccumulator`,
        with each participant's simulated duration = its availability
        speed multiplier × its local sample count (a deterministic proxy
        for "slower device, more work"; 1 × samples for a homogeneous
        fleet, so completion order degrades to dispatch order).
        """
        if self.config.aggregation == "sync":
            return self.algorithm.make_aggregator(
                self._state.global_state, round_index)
        durations: Dict[int, float] = {}
        for position, client in enumerate(participants):
            speed = (self._availability.speed_multiplier(client.client_id)
                     if self._availability is not None else 1.0)
            durations[position] = speed * max(client.num_train_samples, 1)
        buffer_size = (1 if self.config.aggregation == "staleness"
                       else self.config.aggregation_buffer)
        return BufferedAccumulator(
            self.algorithm, self._state.global_state, round_index,
            buffer_size=buffer_size,
            staleness_decay=self.config.staleness_decay,
            durations=durations,
        )

    def _step_inner(self, round_index: int) -> RoundRecord:
        with self._span("sample", round=round_index):
            participants, dropped = self._sample_participants(round_index)
        if self._availability is not None:
            self._count("round.dropouts", len(dropped))
        self._emit(RoundBegin(
            round_index=round_index,
            participant_ids=tuple(client.client_id for client in participants),
        ))
        aggregator = self._make_round_aggregator(participants, round_index)
        cohorts = self._plan_cohorts(participants)
        self._pack_participant_stores(participants)
        try:
            if cohorts is None:
                task = self._instrument(
                    functools.partial(
                        _local_update_task, self.algorithm,
                        self._state.global_state, round_index,
                    ),
                    "client_update",
                    functools.partial(_client_span_attrs, round_index),
                )
                # Stream completed updates: stores reattach and the
                # aggregator ingests each update the moment its client
                # finishes, while other clients are still running.
                with self._span("dispatch", round=round_index,
                                participants=len(participants)):
                    for index, boxed in self.backend.imap_clients(
                            task, participants):
                        outcome = self._unbox(boxed)
                        participants[index].store = unpack_store(outcome.store)
                        aggregator.add(index, outcome.result)
                        self._emit(ClientUpdateDone(
                            round_index=round_index,
                            client_id=outcome.client_id,
                            update=outcome.result,
                        ))
            else:
                # Cohort dispatch: homogeneous clients travel together so the
                # algorithm's vectorized engine (if any) can batch them.  The
                # aggregator is still fed at *original* sample positions, so
                # aggregation order — and therefore results — match the
                # per-client path bitwise.
                cohort_task = self._instrument(
                    functools.partial(
                        _cohort_update_task, self.algorithm,
                        self._state.global_state, round_index,
                    ),
                    "cohort_update",
                    functools.partial(_cohort_span_attrs, round_index),
                )
                groups = [[participants[position] for position in positions]
                          for positions in cohorts]
                with self._span("dispatch", round=round_index,
                                participants=len(participants),
                                cohorts=len(groups)):
                    for group_index, boxed in self.backend.imap_cohorts(
                            cohort_task, groups):
                        outcomes = self._unbox(boxed)
                        for position, outcome in zip(cohorts[group_index],
                                                     outcomes):
                            participants[position].store = unpack_store(
                                outcome.store)
                            aggregator.add(position, outcome.result)
                            self._emit(ClientUpdateDone(
                                round_index=round_index,
                                client_id=outcome.client_id,
                                update=outcome.result,
                            ))
        finally:
            self._restore_participant_stores(participants)
        with self._span("aggregate", round=round_index):
            new_global = aggregator.finalize()
            updates: List[ClientUpdate] = list(aggregator.updates_in_order())
        if isinstance(aggregator, BufferedAccumulator):
            self._count("aggregate.staleness", aggregator.total_staleness())
        self._emit(AggregateDone(round_index=round_index,
                                 num_updates=len(updates)))
        # Non-finite client losses (divergence, dead activations) are
        # excluded from the mean but never silently: they are counted
        # into the round record and warned about once per run.
        losses: List[float] = []
        non_finite = 0
        for update in updates:
            value = update.metrics.get("loss")
            if value is None:
                continue
            if np.isfinite(value):
                losses.append(float(value))
            else:
                non_finite += 1
        if non_finite:
            self._count("round.non_finite_losses", non_finite)
        if non_finite and not self._warned_non_finite:
            self._warned_non_finite = True
            warnings.warn(
                f"round {round_index}: {non_finite} client(s) reported a "
                "non-finite training loss; they are excluded from "
                "mean_loss and counted in RoundRecord.metrics"
                "['non_finite_losses']",
                RuntimeWarning,
                stacklevel=2,
            )
        metrics = {"non_finite_losses": float(non_finite)}
        if self._availability is not None:
            # Only churned runs carry the key: legacy round records (and
            # their stored bytes) must not change shape.
            metrics["dropouts"] = float(len(dropped))
        record = RoundRecord(
            round_index=round_index,
            participant_ids=[u.client_id for u in updates],
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            metrics=metrics,
        )
        self._state.round_records.append(record)
        self._state.global_state = new_global
        self._state.round_index = round_index + 1
        if self.verbose:
            print(
                f"[{self.algorithm.name}] round {round_index + 1}/"
                f"{self.config.rounds} loss={record.mean_loss:.4f}"
            )
        self._emit(RoundEnd(round_index=round_index, record=record))
        if self.population is not None:
            self.population.end_round()
        return record

    def _plan_cohorts(self, participants: Sequence[ClientData]
                      ) -> Optional[List[List[int]]]:
        """Group this round's participants for cohort dispatch.

        Returns a list of position groups (indices into ``participants``),
        or ``None`` when cohort dispatch would be pointless — batching is
        disabled (``client_batch=1``), fewer than two participants, or no
        two clients share a cohort key — in which case :meth:`step` runs
        the classic per-client path verbatim.

        Grouping is by :meth:`FederatedAlgorithm.cohort_key`; clients with
        a ``None`` key stay solo.  ``client_batch=None`` (auto) batches
        each homogeneous group whole; ``client_batch=k`` caps group size
        at ``k``.  Group order follows each group's first member, and
        positions within a group stay sorted, so dispatch order is
        deterministic.
        """
        client_batch = getattr(self.config, "client_batch", None)
        if client_batch == 1 or len(participants) < 2:
            return None
        groups: Dict[object, List[int]] = {}
        for position, client in enumerate(participants):
            key = self.algorithm.cohort_key(client)
            group_key = ("solo", position) if key is None else ("cohort", key)
            groups.setdefault(group_key, []).append(position)
        plan: List[List[int]] = []
        for positions in groups.values():
            cap = len(positions) if client_batch is None else int(client_batch)
            for start in range(0, len(positions), cap):
                plan.append(positions[start:start + cap])
        if all(len(group) == 1 for group in plan):
            return None
        return plan

    def run_until(self, target_round: int) -> Optional[StateDict]:
        """Advance rounds until ``round_index`` reaches ``target_round`` (or
        a callback requests a stop); returns the global state."""
        self.initialize()
        while self._state.round_index < target_round and not self._stop_requested:
            self.step()
        return self._state.global_state

    def run(self, rounds: Optional[int] = None) -> Optional[StateDict]:
        """Run the training stage to ``config.rounds`` (or ``rounds``)."""
        target = self.config.rounds if rounds is None else rounds
        return self.run_until(target)

    def personalize(self) -> RunResult:
        """Run the personalization stage on every client (train + novel).

        Over a virtual population this realizes clients in chunks of
        ``max_resident`` — the protocol still visits every client (the
        paper's personalization stage is population-wide), but peak
        resident memory keeps the same O(active) bound as training.
        """
        if self._state.global_state is None:
            raise RuntimeError("train() must run before personalization")
        task = self._instrument(
            functools.partial(
                _personalize_task, self.algorithm, self._state.global_state
            ),
            "client_personalize",
            _personalize_span_attrs,
        )
        accuracies: Dict[int, float] = {}
        novel_accuracies: Dict[int, float] = {}

        def _collect(clients: Sequence[ClientData]) -> None:
            self._pack_participant_stores(clients)
            try:
                outcomes = [self._unbox(boxed)
                            for boxed in self.backend.map_clients(task,
                                                                  clients)]
                for client, outcome in zip(clients, outcomes):
                    client.store = unpack_store(outcome.store)
                    target = novel_accuracies if client.is_novel else accuracies
                    target[client.client_id] = outcome.result.accuracy
            finally:
                self._restore_participant_stores(clients)

        if self.population is not None:
            chunk_size = self.population.max_resident
            all_ids = list(self.population.client_ids)
            with self._span("personalize",
                            clients=len(all_ids) + len(self.novel_clients)):
                for start in range(0, len(all_ids), chunk_size):
                    chunk_ids = all_ids[start:start + chunk_size]
                    _collect(self.population.realize_round(chunk_ids))
                    self.population.end_round()
                if self.novel_clients:
                    _collect(self.novel_clients)
        else:
            everyone = self.clients + self.novel_clients
            with self._span("personalize", clients=len(everyone)):
                _collect(everyone)
        result = RunResult(
            algorithm=self.algorithm.name,
            accuracies=accuracies,
            novel_accuracies=novel_accuracies,
            rounds=self._state.round_records,
        )
        self._emit(PersonalizeDone(result=result))
        return result

    def execute(self) -> RunResult:
        """Full experiment: (remaining) training rounds, then personalization."""
        try:
            with self._span("session", algorithm=self.algorithm.name):
                self.run()
                return self.personalize()
        finally:
            if self._owns_backend:
                self.close()

    def close(self) -> None:
        """Release execution-backend resources (worker pools)."""
        self.backend.close()

    def __enter__(self) -> "TrainingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._owns_backend:
            self.close()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def capture_state(self) -> ServerState:
        """Materialize a full, detached :class:`ServerState` snapshot.

        Everything is deep-copied: later rounds never mutate a captured
        snapshot, and a snapshot restored into a fresh session never
        aliases this one.
        """
        if self.population is not None:
            client_stores = {client_id: copy.deepcopy(store)
                             for client_id, store
                             in self.population.stores().items()}
        else:
            client_stores = {client.client_id: copy.deepcopy(client.store)
                             for client in self.clients if client.store}
        return ServerState(
            algorithm=self.algorithm.name,
            context=self.context,
            round_index=self._state.round_index,
            global_state=(None if self._state.global_state is None
                          else clone_state(self._state.global_state)),
            algorithm_state=self.algorithm.server_state(),
            client_stores=client_stores,
            round_records=copy.deepcopy(self._state.round_records),
            sampler_state=(copy.deepcopy(self.sampler.state_dict())
                           if hasattr(self.sampler, "state_dict") else {}),
            availability_state=(self._availability.state_dict()
                                if self._availability is not None else {}),
            warned_non_finite=self._warned_non_finite,
        )

    def restore_state(self, state: ServerState) -> None:
        """Resume this session from a :class:`ServerState` snapshot.

        The algorithm is re-initialized deterministically
        (:meth:`~repro.fl.algorithm.FederatedAlgorithm.build_global_state`)
        before its server-side state loads, so restoring into a *fresh*
        session — new algorithm instance, freshly built clients — is
        exactly equivalent to never having stopped.
        """
        if state.algorithm != self.algorithm.name:
            raise ValueError(
                f"checkpoint was taken by algorithm '{state.algorithm}' but "
                f"this session runs '{self.algorithm.name}'")
        if state.context and state.context != self.context:
            raise ValueError(
                f"checkpoint context {state.context!r} does not match this "
                f"session's context {self.context!r}: it was taken under a "
                "different configuration/federation (resume only continues "
                "the same run; delete the stale checkpoint to start over)")
        if self.population is not None:
            known = set(range(self._num_clients))
        else:
            known = {client.client_id for client in self.clients}
        unknown = sorted(set(state.client_stores) - known)
        if unknown:
            raise ValueError(
                f"checkpoint carries stores for unknown client ids {unknown}; "
                "restore into a session built over the same federation")
        # Re-init templates/server slots to their round-0 invariants, then
        # overwrite with the snapshot.
        self.algorithm.build_global_state()
        self.algorithm.load_server_state(copy.deepcopy(state.algorithm_state))
        if self.population is not None:
            self.population.set_stores(
                {client_id: copy.deepcopy(store)
                 for client_id, store in state.client_stores.items()})
        else:
            for client in self.clients:
                client.store = copy.deepcopy(
                    state.client_stores.get(client.client_id, {}))
        if state.sampler_state and hasattr(self.sampler, "load_state_dict"):
            self.sampler.load_state_dict(copy.deepcopy(state.sampler_state))
        if self._availability is not None:
            self._availability.load_state_dict(
                copy.deepcopy(state.availability_state))
        self._state = ServerState(
            algorithm=state.algorithm,
            context=self.context,
            round_index=state.round_index,
            global_state=(None if state.global_state is None
                          else clone_state(state.global_state)),
            round_records=copy.deepcopy(state.round_records),
        )
        self._warned_non_finite = state.warned_non_finite
        self._initialized = state.global_state is not None

    def save_checkpoint(self, path: Union[str, Path]) -> Path:
        """Atomically write the current snapshot to ``path`` (JSON)."""
        return write_checkpoint(self.capture_state(), path)

    def load_checkpoint(self, path: Union[str, Path]) -> ServerState:
        """Restore this session from a checkpoint file; returns the state."""
        state = read_checkpoint(path)
        self.restore_state(state)
        return state
