"""The serializable server state a :class:`TrainingSession` advances.

``ServerState`` is an explicit snapshot of everything the round loop
mutates: the global model, the round cursor, per-round history, the
algorithm's server-side state (SCAFFOLD control variates, …), every
client's persistent store (SSL/Calibre local state dicts, APFL/Ditto
personal models, …), and any sampler RNG state.  It round-trips through
JSON *exactly* (see :mod:`repro.fl.session.codec`), which is what makes
round-level checkpoints safe: a run restored at round k and continued is
bitwise identical to the uninterrupted run.

Checkpoint files are written with the same write-then-``os.replace``
discipline as the run store, so a killed run never leaves a torn
checkpoint behind.

Two on-disk formats exist (docs/checkpoint-format.md has the full
layout).  Schema 1 is the legacy single-file indented JSON with arrays
inline; it remains fully readable (and writable via
``write_checkpoint(..., arrays="json")``) forever.  Schema 2 — the
default written format — splits every checkpoint into a small JSON
*manifest* (same field structure, arrays replaced by ``__col__``
references) plus a content-addressed binary ``.npcol`` *sidecar*
(:mod:`repro.arrays`) named ``<sha256[:12]>.npcol`` holding all array
leaves.  The write order (sidecar first, then the atomic manifest
replace, then a sweep of unreferenced sidecars) means a SIGKILL at any
instant leaves the *previous* checkpoint — manifest and sidecar —
completely readable; content addressing means identical states share one
sidecar and checkpoint bytes stay deterministic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ...arrays import CorruptArrayFile, pack_columns, unpack_columns
from ...ioutil import atomic_write_bytes, atomic_write_text
from ...nn.serialize import StateDict
from ..history import RoundRecord
from .codec import ColumnSink, decode_value, decode_with_columns, encode_value, \
    encode_with_columns

__all__ = [
    "CHECKPOINT_SCHEMA",
    "COLUMNAR_SCHEMA",
    "ServerState",
    "write_checkpoint",
    "read_checkpoint",
    "remove_checkpoint",
    "checkpoint_total_bytes",
    "checkpoint_sidecar",
    "sweep_checkpoint_sidecars",
]

CHECKPOINT_SCHEMA = 1
"""The legacy single-file JSON format (arrays inline; read + legacy write)."""

COLUMNAR_SCHEMA = 2
"""The manifest + ``.npcol``-sidecar format (the default written format)."""

_SIDECAR_SUFFIX = ".npcol"
_SIDECAR_PATTERN = "????????????" + _SIDECAR_SUFFIX  # sha256[:12] hex names


def _sidecar_digest(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:12]


@dataclass
class ServerState:
    """One complete snapshot of a federated run in flight.

    ``round_index`` is the *next* round to execute: a state captured after
    round k-1 finished carries ``round_index == k`` and ``k`` round
    records.  ``client_stores`` maps client id to that client's persistent
    algorithm store; clients with empty stores are omitted.
    ``sampler_state`` is empty for the built-in samplers (their draws are
    pure functions of ``(seed, round_index)``) and carries whatever a
    stateful sampler's ``state_dict()`` returns otherwise.
    ``availability_state`` persists the availability model's RNG cursor
    (:meth:`~repro.fl.population.AvailabilityModel.state_dict`) so a run
    resumed under churn replays the membership chain to the exact round —
    empty when the run has no availability model.

    ``context`` is a fingerprint of the run the checkpoint belongs to
    (config minus execution knobs, federation shape — or the experiment
    spec when the harness supplies one): a session refuses to restore a
    state whose context differs from its own, so ``--resume`` against a
    checkpoint taken under different settings fails loudly instead of
    silently reporting the old run's model on the new workload.
    """

    algorithm: str
    context: str = ""
    round_index: int = 0
    global_state: Optional[StateDict] = None
    algorithm_state: Dict = field(default_factory=dict)
    client_stores: Dict[int, Dict] = field(default_factory=dict)
    round_records: List[RoundRecord] = field(default_factory=list)
    sampler_state: Dict = field(default_factory=dict)
    availability_state: Dict = field(default_factory=dict)
    warned_non_finite: bool = False

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        """A JSON-ready dict that :meth:`from_json` inverts exactly."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "algorithm": self.algorithm,
            "context": self.context,
            "round_index": int(self.round_index),
            "global_state": (None if self.global_state is None
                             else encode_value(dict(self.global_state))),
            "algorithm_state": encode_value(self.algorithm_state),
            "client_stores": {str(client_id): encode_value(store)
                              for client_id, store in self.client_stores.items()},
            "round_records": [record.to_json() for record in self.round_records],
            "sampler_state": encode_value(self.sampler_state),
            "availability_state": encode_value(self.availability_state),
            "warned_non_finite": bool(self.warned_non_finite),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "ServerState":
        schema = payload.get("schema", CHECKPOINT_SCHEMA)
        if schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {schema!r} "
                f"(this build reads schema {CHECKPOINT_SCHEMA})")
        global_state = payload.get("global_state")
        return cls(
            algorithm=payload["algorithm"],
            context=str(payload.get("context", "")),
            round_index=int(payload["round_index"]),
            global_state=(None if global_state is None
                          else decode_value(global_state)),
            algorithm_state=decode_value(payload.get("algorithm_state", {})),
            client_stores={int(client_id): decode_value(store)
                           for client_id, store in
                           payload.get("client_stores", {}).items()},
            round_records=[RoundRecord.from_json(record)
                           for record in payload.get("round_records", [])],
            sampler_state=decode_value(payload.get("sampler_state", {})),
            availability_state=decode_value(payload.get("availability_state", {})),
            warned_non_finite=bool(payload.get("warned_non_finite", False)),
        )

    # ------------------------------------------------------------------
    def to_manifest(self) -> Tuple[Dict, Dict]:
        """The schema-2 split: ``(manifest, columns)``.

        The manifest mirrors :meth:`to_json` field for field (so
        ``round_index`` stays a plain top-level int that pollers can read
        with ``json.loads``), but every ndarray leaf is extracted into
        ``columns`` and replaced by a ``__col__`` reference.  The
        ``arrays`` slot is filled in by :func:`write_checkpoint` once the
        sidecar's content digest is known.
        """
        sink = ColumnSink()
        manifest = {
            "schema": COLUMNAR_SCHEMA,
            "arrays": None,
            "algorithm": self.algorithm,
            "context": self.context,
            "round_index": int(self.round_index),
            "global_state": (None if self.global_state is None
                             else encode_with_columns(dict(self.global_state),
                                                      sink)),
            "algorithm_state": encode_with_columns(self.algorithm_state, sink),
            "client_stores": {str(client_id): encode_with_columns(store, sink)
                              for client_id, store
                              in self.client_stores.items()},
            "round_records": [record.to_json()
                              for record in self.round_records],
            "sampler_state": encode_with_columns(self.sampler_state, sink),
            "availability_state": encode_with_columns(self.availability_state,
                                                      sink),
            "warned_non_finite": bool(self.warned_non_finite),
        }
        return manifest, sink.columns

    @classmethod
    def from_manifest(cls, payload: Dict, columns: Dict) -> "ServerState":
        schema = payload.get("schema")
        if schema != COLUMNAR_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint manifest schema {schema!r} "
                f"(this build reads schema {COLUMNAR_SCHEMA})")
        global_state = payload.get("global_state")
        return cls(
            algorithm=payload["algorithm"],
            context=str(payload.get("context", "")),
            round_index=int(payload["round_index"]),
            global_state=(None if global_state is None
                          else decode_with_columns(global_state, columns)),
            algorithm_state=decode_with_columns(
                payload.get("algorithm_state", {}), columns),
            client_stores={int(client_id): decode_with_columns(store, columns)
                           for client_id, store in
                           payload.get("client_stores", {}).items()},
            round_records=[RoundRecord.from_json(record)
                           for record in payload.get("round_records", [])],
            sampler_state=decode_with_columns(
                payload.get("sampler_state", {}), columns),
            availability_state=decode_with_columns(
                payload.get("availability_state", {}), columns),
            warned_non_finite=bool(payload.get("warned_non_finite", False)),
        )


def write_checkpoint(state: ServerState, path: Union[str, Path],
                     arrays: str = "columnar") -> Path:
    """Atomically persist ``state`` at ``path``; returns the manifest path.

    ``arrays="columnar"`` (default) writes the schema-2 pair: the array
    leaves go into a content-addressed ``<sha256[:12]>.npcol`` sidecar
    beside ``path`` (written first, atomically, and skipped entirely when
    a sidecar with that digest already exists), then the JSON manifest
    referencing it replaces ``path`` atomically, then sidecars no
    surviving manifest in the directory references are swept.  A crash
    between any two steps leaves the previous checkpoint fully readable.
    ``arrays="json"`` writes the legacy schema-1 single file byte-for-byte
    as before.

    Keys are deliberately *not* sorted in either format: insertion order
    inside state dicts is semantic (state-dict arithmetic iterates keys
    in model order, and ``_check_same_keys`` compares ordered key lists),
    and the encoder emits it deterministically — so checkpoint bytes are
    stable without sorting, and sorting would corrupt the order on
    restore.
    """
    path = Path(path)
    if arrays == "json":
        text = json.dumps(state.to_json(), indent=2) + "\n"
        written = atomic_write_text(path, text)
        sweep_checkpoint_sidecars(path.parent)
        return written
    if arrays != "columnar":
        raise ValueError(f"arrays must be 'columnar' or 'json', got {arrays!r}")
    manifest, columns = state.to_manifest()
    if columns:
        payload = pack_columns(columns)
        digest = _sidecar_digest(payload)
        sidecar = path.parent / f"{digest}{_SIDECAR_SUFFIX}"
        manifest["arrays"] = {"file": sidecar.name, "sha256": digest,
                              "nbytes": len(payload), "columns": len(columns)}
        if not sidecar.is_file():
            atomic_write_bytes(sidecar, payload)
    written = atomic_write_text(path, json.dumps(manifest, indent=2) + "\n")
    sweep_checkpoint_sidecars(path.parent)
    return written


def read_checkpoint(path: Union[str, Path]) -> ServerState:
    """Load a checkpoint written in either format.

    Schema-1 files decode through the legacy inline codec; schema-2
    manifests load their ``.npcol`` sidecar, verifying both the
    container's own checksum and the manifest's recorded content digest —
    a missing, torn, or mismatched sidecar raises
    :class:`~repro.arrays.CorruptArrayFile` instead of yielding wrong
    arrays.
    """
    path = Path(path)
    with open(path) as stream:
        payload = json.load(stream)
    if payload.get("schema", CHECKPOINT_SCHEMA) != COLUMNAR_SCHEMA:
        return ServerState.from_json(payload)
    info = payload.get("arrays")
    columns: Dict = {}
    if info:
        sidecar = path.parent / str(info["file"])
        if not sidecar.is_file():
            raise CorruptArrayFile(
                f"checkpoint {path} references array sidecar {info['file']} "
                "which does not exist (deleted, or the two files were "
                "separated)")
        raw = sidecar.read_bytes()
        if _sidecar_digest(raw) != info.get("sha256"):
            raise CorruptArrayFile(
                f"array sidecar {sidecar} does not match the digest recorded "
                f"in {path.name} (stale or swapped sidecar)")
        columns = unpack_columns(raw, writable=True)
    return ServerState.from_manifest(payload, columns)


def checkpoint_sidecar(path: Union[str, Path]) -> Optional[Path]:
    """The ``.npcol`` sidecar a manifest references, or ``None`` (legacy
    schema-1 files, array-free states, unreadable manifests)."""
    path = Path(path)
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (OSError, ValueError):
        return None
    info = payload.get("arrays") if isinstance(payload, dict) else None
    if not isinstance(info, dict) or "file" not in info:
        return None
    return path.parent / str(info["file"])


def checkpoint_total_bytes(path: Union[str, Path]) -> int:
    """On-disk footprint of one checkpoint: manifest + referenced sidecar."""
    path = Path(path)
    total = path.stat().st_size
    sidecar = checkpoint_sidecar(path)
    if sidecar is not None and sidecar.is_file():
        total += sidecar.stat().st_size
    return total


def sweep_checkpoint_sidecars(directory: Union[str, Path]) -> List[Path]:
    """Delete ``.npcol`` sidecars no manifest in ``directory`` references.

    Sidecars are content-addressed and may be shared by several manifests
    (the base checkpoint and its retained numbered copies, or several
    methods checkpointing into one directory), so cleanup is
    reference-driven: scan every ``*.json`` manifest for its ``arrays``
    pointer and remove the rest.  Returns the removed paths.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    referenced = set()
    for manifest in directory.glob("*.json"):
        sidecar = checkpoint_sidecar(manifest)
        if sidecar is not None:
            referenced.add(sidecar.name)
    removed = []
    for orphan in directory.glob(_SIDECAR_PATTERN):
        if orphan.name not in referenced:
            try:
                orphan.unlink()
            except OSError:
                continue  # a concurrent sweep got there first
            removed.append(orphan)
    return removed


def remove_checkpoint(path: Union[str, Path]) -> None:
    """Delete one checkpoint — manifest plus any sidecar it alone used.

    The retention pruner's primitive: unlinking just the manifest would
    strand its sidecar forever (content-addressed names never repeat for
    different states), so removal always ends with a reference sweep of
    the directory.  Sidecars still referenced by surviving manifests are
    kept.
    """
    path = Path(path)
    try:
        path.unlink()
    except FileNotFoundError:
        pass
    sweep_checkpoint_sidecars(path.parent)
