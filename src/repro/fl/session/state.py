"""The serializable server state a :class:`TrainingSession` advances.

``ServerState`` is an explicit snapshot of everything the round loop
mutates: the global model, the round cursor, per-round history, the
algorithm's server-side state (SCAFFOLD control variates, …), every
client's persistent store (SSL/Calibre local state dicts, APFL/Ditto
personal models, …), and any sampler RNG state.  It round-trips through
JSON *exactly* (see :mod:`repro.fl.session.codec`), which is what makes
round-level checkpoints safe: a run restored at round k and continued is
bitwise identical to the uninterrupted run.

Checkpoint files are written with the same write-then-``os.replace``
discipline as the run store, so a killed run never leaves a torn
checkpoint behind.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from ...ioutil import atomic_write_text
from ...nn.serialize import StateDict
from ..history import RoundRecord
from .codec import decode_value, encode_value

__all__ = [
    "CHECKPOINT_SCHEMA",
    "ServerState",
    "write_checkpoint",
    "read_checkpoint",
]

CHECKPOINT_SCHEMA = 1
"""Version stamp written into every checkpoint file."""


@dataclass
class ServerState:
    """One complete snapshot of a federated run in flight.

    ``round_index`` is the *next* round to execute: a state captured after
    round k-1 finished carries ``round_index == k`` and ``k`` round
    records.  ``client_stores`` maps client id to that client's persistent
    algorithm store; clients with empty stores are omitted.
    ``sampler_state`` is empty for the built-in samplers (their draws are
    pure functions of ``(seed, round_index)``) and carries whatever a
    stateful sampler's ``state_dict()`` returns otherwise.
    ``availability_state`` persists the availability model's RNG cursor
    (:meth:`~repro.fl.population.AvailabilityModel.state_dict`) so a run
    resumed under churn replays the membership chain to the exact round —
    empty when the run has no availability model.

    ``context`` is a fingerprint of the run the checkpoint belongs to
    (config minus execution knobs, federation shape — or the experiment
    spec when the harness supplies one): a session refuses to restore a
    state whose context differs from its own, so ``--resume`` against a
    checkpoint taken under different settings fails loudly instead of
    silently reporting the old run's model on the new workload.
    """

    algorithm: str
    context: str = ""
    round_index: int = 0
    global_state: Optional[StateDict] = None
    algorithm_state: Dict = field(default_factory=dict)
    client_stores: Dict[int, Dict] = field(default_factory=dict)
    round_records: List[RoundRecord] = field(default_factory=list)
    sampler_state: Dict = field(default_factory=dict)
    availability_state: Dict = field(default_factory=dict)
    warned_non_finite: bool = False

    # ------------------------------------------------------------------
    def to_json(self) -> Dict:
        """A JSON-ready dict that :meth:`from_json` inverts exactly."""
        return {
            "schema": CHECKPOINT_SCHEMA,
            "algorithm": self.algorithm,
            "context": self.context,
            "round_index": int(self.round_index),
            "global_state": (None if self.global_state is None
                             else encode_value(dict(self.global_state))),
            "algorithm_state": encode_value(self.algorithm_state),
            "client_stores": {str(client_id): encode_value(store)
                              for client_id, store in self.client_stores.items()},
            "round_records": [record.to_json() for record in self.round_records],
            "sampler_state": encode_value(self.sampler_state),
            "availability_state": encode_value(self.availability_state),
            "warned_non_finite": bool(self.warned_non_finite),
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "ServerState":
        schema = payload.get("schema", CHECKPOINT_SCHEMA)
        if schema != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"unsupported checkpoint schema {schema!r} "
                f"(this build reads schema {CHECKPOINT_SCHEMA})")
        global_state = payload.get("global_state")
        return cls(
            algorithm=payload["algorithm"],
            context=str(payload.get("context", "")),
            round_index=int(payload["round_index"]),
            global_state=(None if global_state is None
                          else decode_value(global_state)),
            algorithm_state=decode_value(payload.get("algorithm_state", {})),
            client_stores={int(client_id): decode_value(store)
                           for client_id, store in
                           payload.get("client_stores", {}).items()},
            round_records=[RoundRecord.from_json(record)
                           for record in payload.get("round_records", [])],
            sampler_state=decode_value(payload.get("sampler_state", {})),
            availability_state=decode_value(payload.get("availability_state", {})),
            warned_non_finite=bool(payload.get("warned_non_finite", False)),
        )


def write_checkpoint(state: ServerState, path: Union[str, Path]) -> Path:
    """Atomically persist ``state`` as an indented JSON file.

    Keys are deliberately *not* sorted: insertion order inside state
    dicts is semantic (state-dict arithmetic iterates keys in model
    order, and ``_check_same_keys`` compares ordered key lists), and the
    encoder emits it deterministically — so checkpoint bytes are stable
    without sorting, and sorting would corrupt the order on restore.
    """
    text = json.dumps(state.to_json(), indent=2) + "\n"
    return atomic_write_text(path, text)


def read_checkpoint(path: Union[str, Path]) -> ServerState:
    with open(path) as stream:
        return ServerState.from_json(json.load(stream))
