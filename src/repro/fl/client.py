"""Client-side containers: local datasets and persistent per-client state.

The federation is built once from a dataset + partition; each client holds a
stratified local train/test split (the paper evaluates personalized models
on a local test set with the same class distribution as the local training
set), an optional shard of unlabeled data (STL-10), and a ``store`` dict
that stateful algorithms (SCAFFOLD, APFL, Ditto, FedPer, ...) use to keep
per-client variables across rounds.

Clients are also the payloads the execution backends ship to workers
(:mod:`repro.fl.execution`): a :class:`ClientData` — including everything
algorithms put in ``store`` (state dicts, numpy arrays, plain containers)
— must stay picklable, or the process backend degrades to serial.  Use
:func:`payload_nbytes` to measure what one client costs on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.partition import stratified_split
from ..data.synthetic import DataSplit, SyntheticImageDataset

__all__ = [
    "ClientData",
    "build_federation",
    "build_novel_clients",
    "derive_rng",
    "payload_nbytes",
]


@dataclass
class ClientData:
    """One client's local data and persistent algorithm state."""

    client_id: int
    train: DataSplit
    test: DataSplit
    unlabeled: Optional[DataSplit] = None
    is_novel: bool = False
    store: Dict = field(default_factory=dict)

    @property
    def num_train_samples(self) -> int:
        return len(self.train)

    def ssl_pool(self) -> DataSplit:
        """Images available for self-supervised training: the labeled local
        training images plus any unlabeled shard (labels are unused).

        Handle-aware: when the shared-memory data plane is active the
        splits are :class:`~repro.data.shm.DataSplitHandle`\\ s, whose
        ``images``/``labels`` resolve to read-only views over the shared
        segment — the pool is assembled from those views without copying
        the underlying dataset back into the client."""
        if self.unlabeled is None or len(self.unlabeled) == 0:
            return self.train
        images = np.concatenate([self.train.images, self.unlabeled.images])
        labels = np.concatenate(
            [self.train.labels, np.full(len(self.unlabeled), -1, dtype=np.int64)]
        )
        return DataSplit(images, labels)


def derive_rng(seed: int, *streams: int) -> np.random.Generator:
    """Deterministic generator derivation — the single RNG entry point.

    Pure in its arguments — never dependent on call order — which is the
    property the parallel execution backends need to reproduce serial runs
    bitwise (see :mod:`repro.fl.execution`).  The DET001 invariant rule
    (``repro check``) enforces that all randomness in the algorithm stack
    flows through here; :mod:`repro.core` re-exports it as the documented
    public spelling.

    With ``streams``, the generator is seeded from the domain-separated
    list ``[seed, s0+1, s1+1, ...]`` so distinct coordinates never collide.
    With *no* streams it is the root stream ``default_rng(seed)`` — the
    historical spelling federation building has always used, kept
    bit-identical so every stored fingerprint and golden record survives.
    """
    if not streams:
        return np.random.default_rng(seed)
    return np.random.default_rng([seed] + [int(s) + 1 for s in streams])


def payload_nbytes(client: "ClientData", inline: bool = False) -> int:
    """Pickled size of one client payload as shipped to a process worker.

    With the shared-memory data plane active the client's splits pickle as
    lightweight handles, so this measures the actual wire cost — O(model +
    store), not O(dataset).  ``inline=True`` instead measures what the
    payload would cost with every array pickled inline (the pre-plane wire
    size); benchmarks report both to show the plane's payload reduction.

    Raises the underlying pickling error for unpicklable ``store`` entries,
    which is the same condition that makes the process backend fall back to
    serial — so tests and benchmarks can assert the contract directly.
    """
    import copy
    import pickle

    if inline:
        replica = copy.copy(client)
        for attr in ("train", "test", "unlabeled"):
            split = getattr(replica, attr, None)
            if split is not None and hasattr(split, "materialize"):
                setattr(replica, attr, split.materialize())
        client = replica
    return len(pickle.dumps(client, protocol=pickle.HIGHEST_PROTOCOL))


def build_federation(
    dataset: SyntheticImageDataset,
    partitions: Sequence[np.ndarray],
    test_fraction: float = 0.25,
    seed: int = 0,
    share_unlabeled: bool = True,
) -> List[ClientData]:
    """Materialize clients from a dataset and a train-index partition.

    Each client's indices are stratified-split into local train/test; the
    dataset's unlabeled pool (STL-10) is sharded uniformly across clients
    when ``share_unlabeled`` is set.
    """
    rng = derive_rng(seed)
    labels = dataset.train.labels
    clients: List[ClientData] = []
    unlabeled_shards: List[Optional[DataSplit]] = [None] * len(partitions)
    if share_unlabeled and len(dataset.unlabeled) > 0:
        order = rng.permutation(len(dataset.unlabeled))
        chunks = np.array_split(order, len(partitions))
        unlabeled_shards = [dataset.unlabeled.subset(chunk) for chunk in chunks]
    for client_id, indices in enumerate(partitions):
        train_idx, test_idx = stratified_split(indices, labels, test_fraction, rng)
        if train_idx.size == 0 or test_idx.size == 0:
            raise ValueError(
                f"client {client_id} received a degenerate split "
                f"(train={train_idx.size}, test={test_idx.size})"
            )
        clients.append(
            ClientData(
                client_id=client_id,
                train=dataset.train.subset(train_idx),
                test=dataset.train.subset(test_idx),
                unlabeled=unlabeled_shards[client_id],
            )
        )
    return clients


def build_novel_clients(
    dataset: SyntheticImageDataset,
    num_clients: int,
    partition_fn,
    test_fraction: float = 0.25,
    seed: int = 1_000_003,
    first_id: int = 10_000,
) -> List[ClientData]:
    """Create clients that never participate in training (paper §V-D).

    Novel clients draw *fresh* samples from the generative process (the
    equivalent of held-out users), partitioned with the same non-i.i.d.
    scheme as the training clients.  ``partition_fn(labels, num_clients,
    rng)`` must return per-client index lists.
    """
    if num_clients == 0:
        return []
    rng = derive_rng(seed)
    per_class = max(
        8, (len(dataset.train) // max(dataset.num_classes, 1)) // max(num_clients // 4, 1)
    )
    labels = np.repeat(np.arange(dataset.num_classes), per_class)
    rng.shuffle(labels)
    fresh = dataset.sample(labels, seed=seed + 1)
    partitions = partition_fn(fresh.labels, num_clients, rng)
    clients: List[ClientData] = []
    for offset, indices in enumerate(partitions):
        train_idx, test_idx = stratified_split(indices, fresh.labels, test_fraction, rng)
        if train_idx.size == 0 or test_idx.size == 0:
            raise ValueError(f"novel client {offset} received a degenerate split")
        clients.append(
            ClientData(
                client_id=first_id + offset,
                train=fresh.subset(train_idx),
                test=fresh.subset(test_idx),
                is_novel=True,
            )
        )
    return clients
