"""Inline suppressions: ``# repro: allow[RULE-ID] -- reason``.

A suppression silences matching diagnostics on its own line, or — when
the comment stands alone on a line — on the next line.  Suppressions are
contracts too, so they are validated like everything else:

* ``SUP001`` — a suppression without a ``-- reason`` tail.  Every
  deviation from a contract must say *why*, in the code, forever.
* ``SUP002`` — an unused suppression.  Dead allows rot into land mines:
  they silently re-admit the violation they once excused.
* ``SUP003`` — a suppression naming a rule id the registry doesn't know
  (typo'd ids would otherwise silently suppress nothing).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from .diagnostics import Diagnostic
from .project import SourceFile

__all__ = ["Suppression", "file_suppressions", "SUPPRESSION_RULES"]

SUPPRESSION_RULES = {
    "SUP001": "suppression is missing its '-- reason' tail",
    "SUP002": "suppression matched no diagnostic (unused allow)",
    "SUP003": "suppression names an unknown rule id",
}

_ALLOW_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[A-Za-z0-9_-]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?")


@dataclass
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    rule: str
    comment_line: int
    """Line the comment sits on (anchor for SUP diagnostics)."""
    target_line: int
    """Line whose diagnostics it silences (next line for standalone
    comments, the comment's own line otherwise)."""
    reason: str = ""
    used: bool = field(default=False, compare=False)

    def matches(self, diagnostic: Diagnostic) -> bool:
        return (diagnostic.rule == self.rule
                and diagnostic.line == self.target_line)


def _comments(text: str) -> Iterator[Tuple[int, int, str]]:
    """(line, column, text) of every real comment token.

    Tokenizing (rather than regex over lines) is what keeps a literal
    ``# repro: allow[...]`` inside a docstring or error message from
    being mistaken for a suppression.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except tokenize.TokenizeError:  # pragma: no cover - load_project parses first
        return


def file_suppressions(source: SourceFile) -> List[Suppression]:
    """Parse every suppression comment in ``source``, in line order."""
    found: List[Suppression] = []
    for number, column, comment in _comments(source.text):
        match = _ALLOW_PATTERN.search(comment)
        if match is None:
            continue
        standalone = source.lines[number - 1][:column].strip() == ""
        found.append(Suppression(
            rule=match.group("rule"),
            comment_line=number,
            target_line=number + 1 if standalone else number,
            reason=(match.group("reason") or "").strip(),
        ))
    return found


def apply_suppressions(source: SourceFile, diagnostics: List[Diagnostic],
                       known_rules: Dict[str, object]) -> List[Diagnostic]:
    """Filter ``diagnostics`` through the file's suppressions.

    Returns the surviving diagnostics plus any SUP001/SUP002/SUP003
    findings the suppressions themselves earn.  A malformed or unknown-id
    suppression never silences anything.
    """
    suppressions = file_suppressions(source)
    kept: List[Diagnostic] = []
    for suppression in suppressions:
        if suppression.rule not in known_rules:
            kept.append(Diagnostic(
                path=source.rel, line=suppression.comment_line, rule="SUP003",
                message=f"unknown rule id {suppression.rule!r} in suppression",
                hint="run 'repro check --list-rules' for valid ids"))
            suppression.used = True  # don't double-report as unused
            continue
        if not suppression.reason:
            kept.append(Diagnostic(
                path=source.rel, line=suppression.comment_line, rule="SUP001",
                message=f"suppression of {suppression.rule} has no reason",
                hint="write '# repro: allow[RULE] -- why this deviation is safe'"))
            suppression.used = True
            continue
    valid = [s for s in suppressions if s.rule in known_rules and s.reason]
    for diagnostic in diagnostics:
        silenced = False
        for suppression in valid:
            if suppression.matches(diagnostic):
                suppression.used = True
                silenced = True
        if not silenced:
            kept.append(diagnostic)
    for suppression in valid:
        if not suppression.used:
            kept.append(Diagnostic(
                path=source.rel, line=suppression.comment_line, rule="SUP002",
                message=(f"suppression of {suppression.rule} matched no "
                         f"diagnostic"),
                hint="the violation is gone - delete the allow comment"))
    return kept
