"""The unit the checker operates on: a parsed snapshot of the repo.

A :class:`Project` is a list of :class:`SourceFile` — path, dotted module
name, source text, and parsed AST — rooted at the repository root.  Rules
receive the whole project so cross-file contracts (layering, fingerprint
classification) can be checked without importing any repro module.

Module names mirror how the code is actually imported: files under
``src/`` drop the ``src`` prefix (``src/repro/fl/client.py`` →
``repro.fl.client``), everything else keeps its tree position
(``benchmarks/conftest.py`` → ``benchmarks.conftest``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["SourceFile", "Project", "load_project", "module_name_for",
           "parse_snippet"]


def module_name_for(rel_path: Path) -> str:
    """Dotted module name for a root-relative ``.py`` path."""
    parts = list(rel_path.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class SourceFile:
    """One parsed source file."""

    path: Path
    """Absolute filesystem path."""
    rel: str
    """Root-relative POSIX path — the spelling used in diagnostics."""
    module: str
    """Dotted module name (``repro.fl.client``, ``benchmarks.conftest``)."""
    text: str
    tree: ast.Module
    is_package: bool
    """True for ``__init__.py`` (relative-import resolution differs)."""

    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def in_scope(self, prefixes: Optional[Sequence[str]]) -> bool:
        """Whether this file falls under any of the module ``prefixes``.

        ``None`` means unscoped (every file); a prefix matches the module
        itself or any submodule of it.
        """
        if prefixes is None:
            return True
        return any(self.module == prefix or self.module.startswith(prefix + ".")
                   for prefix in prefixes)


@dataclass
class Project:
    """A checkable snapshot: the root plus every collected source file."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)

    def by_module(self, module: str) -> Optional[SourceFile]:
        """The file defining ``module``, or None if not collected."""
        for source in self.files:
            if source.module == module:
                return source
        return None


def _iter_py_files(root: Path, paths: Iterable[Union[str, Path]]) -> List[Path]:
    collected: List[Path] = []
    for entry in paths:
        target = root / entry
        if target.is_dir():
            collected.extend(sorted(target.rglob("*.py")))
        elif target.is_file():
            collected.append(target)
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")
    return collected


def load_project(root: Union[str, Path],
                 paths: Optional[Sequence[Union[str, Path]]] = None) -> Project:
    """Collect and parse every ``.py`` file under ``paths`` (relative to
    ``root``).  A file that fails to parse raises ``SyntaxError`` with its
    path — a broken file must fail the check loudly, not be skipped.
    """
    from .runner import DEFAULT_PATHS  # cycle-free: runner imports lazily

    root = Path(root).resolve()
    if paths is None:
        paths = [entry for entry in DEFAULT_PATHS if (root / entry).exists()]
    project = Project(root=root)
    for path in _iter_py_files(root, paths):
        rel_path = path.relative_to(root)
        text = path.read_text()
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            raise SyntaxError(f"{rel_path}: {error}") from error
        project.files.append(SourceFile(
            path=path,
            rel=rel_path.as_posix(),
            module=module_name_for(rel_path),
            text=text,
            tree=tree,
            is_package=path.name == "__init__.py",
        ))
    return project


def parse_snippet(rel: str, text: str) -> SourceFile:
    """Build a standalone :class:`SourceFile` from source text (tests)."""
    rel_path = Path(rel)
    return SourceFile(
        path=rel_path,
        rel=rel_path.as_posix(),
        module=module_name_for(rel_path),
        text=text,
        tree=ast.parse(text),
        is_package=rel_path.name == "__init__.py",
    )

