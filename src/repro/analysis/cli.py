"""The ``repro check`` command (also ``python -m repro.analysis``).

The main CLI (:mod:`repro.cli`) wires this in as the ``check``
subcommand, but the whole command — like the package — is stdlib-only,
so ``python -m repro.analysis`` runs the identical check in a bare lint
environment where numpy is not installed.

Exit codes: ``0`` clean, ``1`` diagnostics found, ``2`` usage error
(bad path, no repo root).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .diagnostics import format_github, format_json, format_text
from .registry import rule_catalog
from .runner import DEFAULT_PATHS, find_repo_root, run_check

__all__ = ["add_check_arguments", "run_check_command", "main"]

_FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``check`` flags on ``parser`` (shared with repro.cli)."""
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="directories or files to check, relative to the "
                             f"repo root (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="repo root (default: walk up from cwd to the "
                             "directory holding pyproject.toml and src/)")
    parser.add_argument("--format", default="text", dest="output_format",
                        choices=sorted(_FORMATTERS),
                        help="diagnostic rendering: human 'text', stable "
                             "'json' for tooling, 'github' workflow "
                             "annotations (default: text)")
    parser.add_argument("--select", nargs="+", default=None, metavar="RULE",
                        help="run only these rule ids (suppression checks "
                             "always run)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")


def run_check_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, summary, scope in rule_catalog():
            scope_text = f" [{', '.join(scope)}]" if scope else ""
            print(f"{rule_id}  {summary}{scope_text}")
        return 0
    if args.root is not None:
        root = Path(args.root)
        if not root.is_dir():
            print(f"--root {args.root} is not a directory", file=sys.stderr)
            return 2
    else:
        try:
            root = find_repo_root(Path.cwd())
        except FileNotFoundError as error:
            print(error, file=sys.stderr)
            return 2
    if args.select:
        from .registry import RULES
        unknown = [rule_id for rule_id in args.select if rule_id not in RULES]
        if unknown:
            print(f"unknown rule id(s): {unknown} "
                  "(see --list-rules)", file=sys.stderr)
            return 2
    paths = tuple(args.paths) if args.paths else None
    if paths:
        missing = [p for p in paths if not (root / p).exists()]
        if missing:
            print(f"no such path(s) under {root}: {missing}", file=sys.stderr)
            return 2
    try:
        diagnostics = run_check(root, paths=paths, select=args.select)
    except SyntaxError as error:
        print(f"cannot parse {error.filename}:{error.lineno}: {error.msg}",
              file=sys.stderr)
        return 2
    output = _FORMATTERS[args.output_format](diagnostics)
    if output:
        print(output)
    if args.output_format == "text":
        noun = "diagnostic" if len(diagnostics) == 1 else "diagnostics"
        print(f"{len(diagnostics)} {noun}"
              + ("" if diagnostics else " - all invariants hold"))
    return 1 if diagnostics else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant checker for the repro codebase "
                    "(stdlib-only spelling of 'repro check').")
    add_check_arguments(parser)
    return run_check_command(parser.parse_args(argv))
