"""Check execution: collect files, run rules, apply suppressions.

:func:`run_check` is the single entry point behind ``repro check`` and
the test suite's meta-check.  It is deterministic end to end: files are
collected in sorted order, rules run in registration order, and the
returned diagnostics are sorted by (path, line, rule).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from .diagnostics import Diagnostic
from .project import Project, load_project
from .registry import RULES, known_rule_ids
from .suppressions import apply_suppressions

__all__ = ["DEFAULT_PATHS", "run_check", "run_rules", "find_repo_root"]

DEFAULT_PATHS = ("src", "benchmarks", "examples")
"""The trees ``repro check`` walks when no explicit paths are given.

``tests`` is deliberately absent: tests exercise violations on purpose
(fixture corpora, unpicklable-payload regressions), so enforcing the
contracts there would force suppressions onto intentional negatives.
"""


def find_repo_root(start: Union[str, Path, None] = None) -> Path:
    """Walk upward from ``start`` (default: cwd) to the checkout root.

    The root is the first directory holding a ``pyproject.toml`` next to
    a ``src`` tree — the shape this repository always has.
    """
    current = Path(start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file() and (candidate / "src").is_dir():
            return candidate
    raise FileNotFoundError(
        f"no repository root (pyproject.toml + src/) at or above {current}")


def run_rules(project: Project,
              select: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    """Run every (selected) rule over ``project``; no suppression filtering.

    ``select`` limits execution to the given rule ids — the fixture tests
    use it to exercise one rule at a time.
    """
    rules = [RULES[rule_id] for rule_id in select] if select else list(RULES.values())
    raw: List[Diagnostic] = []
    for rule in rules:
        raw.extend(rule.check_project(project))
        for source in project.files:
            if source.in_scope(rule.scope):
                raw.extend(rule.check_file(source, project))
    return raw


def run_check(root: Union[str, Path, None] = None,
              paths: Optional[Sequence[Union[str, Path]]] = None,
              select: Optional[Sequence[str]] = None) -> List[Diagnostic]:
    """Full check: load, run rules, apply (and validate) suppressions.

    Returns the sorted list of surviving diagnostics — empty means the
    tree honors every contract, with zero unused or malformed allows.
    """
    project = load_project(root if root is not None else find_repo_root(), paths)
    raw = run_rules(project, select=select)
    known = known_rule_ids()
    final: List[Diagnostic] = []
    by_path = {source.rel: source for source in project.files}
    for source in project.files:
        mine = [diag for diag in raw if diag.path == source.rel]
        final.extend(apply_suppressions(source, mine, known))
    # Project-rule diagnostics can anchor to files outside the collected
    # set (never in practice); keep anything unmatched rather than drop it.
    final.extend(diag for diag in raw if diag.path not in by_path)
    return sorted(final)
