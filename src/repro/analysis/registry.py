"""The pluggable rule registry.

A rule is a subclass of :class:`Rule` registered with :func:`register`.
Per-file rules implement :meth:`Rule.check_file`; cross-file rules
(fingerprint classification) implement :meth:`Rule.check_project`.  Each
rule carries a module ``scope`` — the prefixes it applies to — so a
contract can be enforced exactly where the codebase depends on it and
nowhere else, which is what lets the checker run clean repo-wide from
day one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Type

from .diagnostics import Diagnostic
from .project import Project, SourceFile
from .suppressions import SUPPRESSION_RULES

__all__ = ["Rule", "register", "RULES", "rule_catalog", "known_rule_ids"]


class Rule:
    """Base class for one enforced invariant.

    Subclasses set the class attributes and override exactly one of
    :meth:`check_file` (runs once per in-scope file) or
    :meth:`check_project` (runs once per check, for contracts that span
    files).
    """

    id: str = ""
    """Stable rule id (``DET001``), the spelling suppressions use."""
    summary: str = ""
    """One-line statement of the contract the rule enforces."""
    scope: Optional[Tuple[str, ...]] = None
    """Module prefixes the rule applies to; None = every collected file."""

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        return ()

    def diagnostic(self, source_rel: str, line: int, message: str,
                   hint: str = "") -> Diagnostic:
        return Diagnostic(path=source_rel, line=line, rule=self.id,
                          message=message, hint=hint)


RULES: Dict[str, Rule] = {}
"""Registered rule instances, keyed by rule id."""


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (instantiated once) to the registry."""
    rule = rule_cls()
    if not rule.id or not rule.summary:
        raise ValueError(f"rule {rule_cls.__name__} must define id and summary")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return rule_cls


def known_rule_ids() -> Dict[str, str]:
    """Every id a suppression may name → its one-line summary.

    Includes the checker's own SUP rules so ``--list-rules`` documents
    them, even though they cannot be suppressed themselves.
    """
    catalog = {rule_id: rule.summary for rule_id, rule in RULES.items()}
    catalog.update(SUPPRESSION_RULES)
    return catalog


def rule_catalog() -> List[Tuple[str, str, Optional[Tuple[str, ...]]]]:
    """(id, summary, scope) rows for ``repro check --list-rules``."""
    rows = [(rule.id, rule.summary, rule.scope)
            for rule in RULES.values()]
    rows += [(rule_id, summary, None)
             for rule_id, summary in SUPPRESSION_RULES.items()]
    return sorted(rows)
