"""Best-effort static import resolution shared by the rules.

Rules need to know what a name *refers to* — ``np.random.default_rng``
should be flagged whether it was spelled via ``import numpy as np``,
``from numpy import random``, or ``from numpy.random import
default_rng``.  :func:`import_origins` maps each locally bound name to
the absolute dotted path it was imported from; :func:`resolve_call`
turns a ``Name``/``Attribute`` chain into that absolute path.

This is intentionally syntactic: reassignments and dynamic imports are
invisible, which is the right trade for a checker — a contrived rebinding
that evades a rule is exactly the kind of code a human reviewer flags.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .project import SourceFile

__all__ = ["import_origins", "resolve_call", "import_targets"]


def _relative_base(source: SourceFile, level: int) -> str:
    """The absolute package a ``from ...`` relative import resolves against."""
    parts = source.module.split(".")
    if not source.is_package:
        parts = parts[:-1]
    # level 1 = current package, each extra level climbs one parent.
    if level > 1:
        parts = parts[:len(parts) - (level - 1)]
    return ".".join(parts)


def import_origins(source: SourceFile) -> Dict[str, str]:
    """Map every import-bound local name to its absolute dotted origin."""
    origins: Dict[str, str] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    origins[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a`` to the top-level module.
                    top = alias.name.split(".")[0]
                    origins[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(source, node.level)
                module = f"{base}.{node.module}" if node.module else base
            else:
                module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                origins[bound] = f"{module}.{alias.name}" if module else alias.name
    return origins


def resolve_call(func: ast.expr, origins: Dict[str, str]) -> Optional[str]:
    """Absolute dotted path a call target resolves to, or None.

    ``Name`` nodes resolve through ``origins`` (falling back to the bare
    name, so builtins like ``open`` and ``set`` resolve to themselves);
    ``Attribute`` chains resolve their root the same way and append the
    attribute path.  Anything else (subscripts, calls-of-calls) is opaque.
    """
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = origins.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def import_targets(source: SourceFile) -> List[Tuple[ast.stmt, str]]:
    """Every import statement with the absolute module it targets.

    ``from X import a, b`` yields one entry (module ``X``); ``import X,
    Y`` yields one per alias.  Used by the layering rule, which cares
    about module-to-module edges rather than bound names.
    """
    targets: List[Tuple[ast.stmt, str]] = []
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(source, node.level)
                module = f"{base}.{node.module}" if node.module else base
            else:
                module = node.module or ""
            if module:
                targets.append((node, module))
            # ``from repro import runs`` binds subpackages without naming
            # them in ``module`` — surface each alias as its own edge so
            # the layering rule can't be sidestepped via the top package.
            if module == "repro":
                for alias in node.names:
                    if alias.name != "*":
                        targets.append((node, f"repro.{alias.name}"))
    return targets
