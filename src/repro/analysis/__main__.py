"""``python -m repro.analysis`` — the dependency-free ``repro check``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
