"""The initial ruleset: the contracts the codebase actually depends on.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.  One module per contract family:

``determinism``  DET — RNG discipline, wall-clock, set-iteration order
``atomicity``    ATM — write-then-rename persistence
``arrays``       ARR — array persistence via the validated .npcol container
``fingerprint``  FPR — RunKey/config fingerprint classification
``layering``     LAY — declarative import-layer map
``tracing``      TRC — trace/replay taping restrictions
``pickling``     PKL — picklable execution payloads
``telemetry``    TEL — observability stays out of hashed records
``population``   POP — async opt-in defaults, replay-pure sampling RNG
"""

from . import (  # noqa: F401  (imported for registration side effect)
    arrays,
    atomicity,
    determinism,
    fingerprint,
    layering,
    pickling,
    population,
    telemetry,
    tracing,
)
