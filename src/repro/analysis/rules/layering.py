"""LAY — the declarative import-layer map.

``docs/architecture.md`` describes the dependency layering in prose;
``LAYER_MAP`` below is the same statement as data, and the rule enforces
it on every import in ``src/``.  The map is *allow-list* shaped: each
``repro.X`` package names the repro packages it may import.  Adding a
package without classifying it here is itself a violation, so the map
can never silently drift from reality.

``LAY001``
    An import edge the layer map does not allow (including imports from
    a package the map has never heard of).

``LAY002``
    A third-party import in a stdlib-only package.  ``repro.ioutil``,
    ``repro.analysis``, and ``repro.telemetry`` must stay importable in a
    bare lint environment — no numpy, no scipy.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Tuple

from ..diagnostics import Diagnostic
from ..imports import import_targets
from ..project import Project, SourceFile
from ..registry import Rule, register

LAYER_MAP: Dict[str, Tuple[str, ...]] = {
    # Leaves: these import no other repro package.  repro.telemetry is a
    # near-leaf observation plane: stdlib-only, importable from anywhere
    # below the presentation layer without creating cycles.
    "repro.ioutil": (),
    "repro.analysis": (),
    "repro.telemetry": (),
    "repro.arrays": ("repro.ioutil",),
    "repro.nn": ("repro.telemetry",),
    "repro.viz": (),
    "repro.manifold": (),
    "repro.cluster": (),
    "repro.data": ("repro.telemetry",),
    # Mid-stack.
    "repro.ssl": ("repro.nn",),
    "repro.fl": ("repro.arrays", "repro.data", "repro.ioutil", "repro.nn",
                 "repro.telemetry"),
    "repro.baselines": ("repro.data", "repro.fl", "repro.nn", "repro.ssl",
                        "repro.telemetry"),
    "repro.core": ("repro.baselines", "repro.cluster", "repro.fl",
                   "repro.nn", "repro.ssl"),
    # Orchestration and presentation.
    "repro.eval": ("repro.baselines", "repro.core", "repro.data", "repro.fl",
                   "repro.ioutil", "repro.nn", "repro.viz"),
    "repro.runs": ("repro.arrays", "repro.eval", "repro.fl", "repro.ioutil",
                   "repro.telemetry"),
    "repro.experiments": ("repro.eval", "repro.fl", "repro.manifold",
                          "repro.runs", "repro.viz"),
    "repro.cli": ("repro.analysis", "repro.eval", "repro.experiments",
                  "repro.fl", "repro.ioutil", "repro.runs",
                  "repro.telemetry"),
}
"""Allowed repro-internal import edges, per package.  The order mirrors
docs/architecture.md's layer map bottom-up."""

STDLIB_ONLY = ("repro.ioutil", "repro.analysis", "repro.telemetry")
"""Packages that must not import anything outside the standard library."""

_STDLIB = set(sys.stdlib_module_names) | {"__future__"}


def _package_of(module: str) -> str:
    """The layer-map key owning ``module`` (``repro.fl.session.state`` →
    ``repro.fl``; single-module packages map to themselves)."""
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module


@register
class LayerMapRule(Rule):
    id = "LAY001"
    summary = "imports must follow the declarative layer map (LAYER_MAP)"
    scope = ("repro",)

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        if source.module == "repro":  # the top package defines no layer
            return
        own = _package_of(source.module)
        if own not in LAYER_MAP:
            yield self.diagnostic(
                source.rel, 1,
                f"package {own} is not classified in the layer map",
                hint="add it to LAYER_MAP in repro/analysis/rules/layering.py "
                     "with the packages it may import")
            return
        allowed = set(LAYER_MAP[own])
        for node, target in import_targets(source):
            if not (target == "repro" or target.startswith("repro.")):
                continue
            pkg = _package_of(target)
            if pkg in ("repro", own) or pkg in allowed:
                continue
            yield self.diagnostic(
                source.rel, node.lineno,
                f"{own} may not import {pkg} "
                f"(allowed: {', '.join(sorted(allowed)) or 'nothing'})",
                hint="either the code belongs in a higher layer or the "
                     "layer map needs a deliberate, reviewed edit")


@register
class StdlibOnlyRule(Rule):
    id = "LAY002"
    summary = "stdlib-only packages (ioutil, analysis, telemetry) must import only the stdlib"
    scope = STDLIB_ONLY

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        own = _package_of(source.module)
        for node, target in import_targets(source):
            top = target.split(".")[0]
            if top == "repro" or top in _STDLIB:
                continue
            yield self.diagnostic(
                source.rel, node.lineno,
                f"{own} is stdlib-only but imports {target}",
                hint="keep heavy deps out so 'repro check' runs in a bare "
                     "lint environment")
