"""DET — bitwise-determinism hazards.

The execution backends' contract (serial == thread == process, bitwise)
holds only if every random draw is a pure function of (seed, streams) and
nothing observable depends on ambient state.  Three rules:

``DET001``
    RNG construction outside the blessed idiom.  ``derive_rng(seed,
    *streams)`` is the single entry point for randomness; direct
    ``np.random.default_rng`` / ``np.random.RandomState`` / module-level
    ``np.random.*`` draws and the stdlib ``random`` module re-introduce
    ambient or collision-prone streams.  The body of ``derive_rng``
    itself is exempt (something has to construct the generator).

``DET002``
    Wall-clock and OS entropy: ``time.time``/``perf_counter``,
    ``datetime.now``, ``os.urandom``, ``uuid.uuid1/4``, ``secrets``.
    Anything these feed diverges between runs and between workers.

``DET003``
    Iterating a set (or passing one to ``list``/``tuple``/``enumerate``/
    ``str.join``).  Set iteration order depends on insertion history and
    hash seeding; feeding it into aggregation or serialization makes
    output order a run artifact.  ``sorted(...)`` over a set is the fix
    and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..diagnostics import Diagnostic
from ..imports import import_origins, resolve_call
from ..project import Project, SourceFile
from ..registry import Rule, register

DET_SCOPE = ("repro.fl", "repro.runs", "repro.nn",
             "repro.baselines", "repro.ssl", "repro.core")
"""Where determinism is load-bearing: the round loop, the store, the
autograd substrate, and every algorithm that runs on them.  Leaf packages
whose generators are always built from an explicit seed argument
(``repro.data``, ``repro.manifold``) sit below ``repro.fl`` in the layer
map and cannot import ``derive_rng`` without breaking LAY001, so they
stay out of scope by design."""

_WALL_CLOCK_ORIGINS = (
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.monotonic", "time.monotonic_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
)
_WALL_CLOCK_PREFIXES = ("secrets.",)


def _blessed_rng_calls(tree: ast.Module) -> Set[int]:
    """ids of Call nodes inside any ``derive_rng`` definition (exempt)."""
    blessed: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == "derive_rng":
            for child in ast.walk(node):
                if isinstance(child, ast.Call):
                    blessed.add(id(child))
    return blessed


@register
class UnblessedRngRule(Rule):
    id = "DET001"
    summary = ("randomness must flow through derive_rng(seed, *streams); "
               "no direct np.random/random construction")
    scope = DET_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        origins = import_origins(source)
        blessed = _blessed_rng_calls(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or id(node) in blessed:
                continue
            target = resolve_call(node.func, origins)
            if target is None:
                continue
            if target.startswith("numpy.random."):
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"direct {target.replace('numpy', 'np')} call",
                    hint="derive the generator with derive_rng(seed, *streams)")
            elif target == "random" or target.startswith("random."):
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"stdlib '{target}' draws from a process-global stream",
                    hint="derive a numpy generator with derive_rng instead")


@register
class WallClockRule(Rule):
    id = "DET002"
    summary = ("no wall-clock or OS entropy where results are computed or "
               "serialized")
    scope = DET_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        origins = import_origins(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node.func, origins)
            if target is None:
                continue
            if target in _WALL_CLOCK_ORIGINS or \
                    any(target.startswith(p) for p in _WALL_CLOCK_PREFIXES):
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"{target}() is run-dependent ambient state",
                    hint="keep it out of anything recorded or hashed; "
                         "suppress with a reason if it is diagnostics-only")


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` is statically known to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIterationRule(Rule):
    id = "DET003"
    summary = ("set iteration order is nondeterministic; sort before "
               "iterating, aggregating, or serializing")
    scope = DET_SCOPE

    def _flag(self, source: SourceFile, node: ast.expr) -> Diagnostic:
        return self.diagnostic(
            source.rel, node.lineno,
            "iteration over a set expression",
            hint="wrap it in sorted(...) to pin the order")

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and _is_set_expr(node.iter):
                yield self._flag(source, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter):
                        yield self._flag(source, comp.iter)
            elif isinstance(node, ast.Call):
                # Order-preserving consumers of an unordered source.
                consumer = None
                if isinstance(node.func, ast.Name) \
                        and node.func.id in ("list", "tuple", "enumerate", "iter"):
                    consumer = node.func.id
                elif isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "join":
                    consumer = "join"
                if consumer and node.args and _is_set_expr(node.args[0]):
                    yield self._flag(source, node.args[0])
