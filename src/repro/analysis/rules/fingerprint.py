"""FPR — fingerprint classification of config and sweep fields.

A :class:`RunKey` fingerprint must hash *everything that determines a
cell's result and nothing that doesn't*.  The dangerous failure is
silent: a new ``FederatedConfig`` knob that changes results but is
accidentally excluded (stale cells get reused), or an execution knob
accidentally included (every stored cell orphaned).  So every field must
be classified, in code, in ``repro/runs/serialize.py``:

``FPR001``
    Every ``FederatedConfig`` field appears in exactly one of
    ``FINGERPRINTED_FIELDS`` (hashes into fingerprints) or
    ``EXECUTION_FIELDS`` (wall-clock-only, excluded); no stale names.

``FPR002``
    Every ``SweepSpec`` field appears in exactly one of
    ``SWEEP_FINGERPRINTED_FIELDS`` (flows into each cell's hashed
    payload) or ``SWEEP_COSMETIC_FIELDS`` (labels only); no stale names.

Both rules read the dataclass definitions and the classification tuples
straight from source ASTs — no imports — so a new field fails the check
the moment it is written, before any test runs it.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import Rule, register

CONFIG_MODULE = "repro.fl.config"
SPEC_MODULE = "repro.runs.spec"
SERIALIZE_MODULE = "repro.runs.serialize"


def _class_fields(source: SourceFile, class_name: str) -> Tuple[int, List[str]]:
    """(line, field names) of a dataclass body; (0, []) when absent."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = [stmt.target.id for stmt in node.body
                      if isinstance(stmt, ast.AnnAssign)
                      and isinstance(stmt.target, ast.Name)]
            return node.lineno, fields
    return 0, []


def _tuple_constant(source: SourceFile, name: str) -> Optional[Tuple[int, List[str]]]:
    """(line, values) of a module-level ``NAME = ("a", "b", ...)``."""
    for stmt in source.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and stmt.targets[0].id == name \
                and isinstance(stmt.value, (ast.Tuple, ast.List)):
            values = [el.value for el in stmt.value.elts
                      if isinstance(el, ast.Constant) and isinstance(el.value, str)]
            return stmt.lineno, values
    return None


class _ClassificationRule(Rule):
    """Shared machinery: dataclass fields == union of two disjoint tuples."""

    dataclass_module = ""
    dataclass_name = ""
    fingerprinted_name = ""
    exempt_name = ""

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        config = project.by_module(self.dataclass_module)
        serialize = project.by_module(SERIALIZE_MODULE)
        if config is None or serialize is None:
            return  # partial tree (e.g. a rule fixture for another family)
        class_line, fields = _class_fields(config, self.dataclass_name)
        if not fields:
            return
        fingerprinted = _tuple_constant(serialize, self.fingerprinted_name)
        exempt = _tuple_constant(serialize, self.exempt_name)
        if fingerprinted is None or exempt is None:
            missing = self.fingerprinted_name if fingerprinted is None \
                else self.exempt_name
            yield self.diagnostic(
                serialize.rel, 1,
                f"contract surface {missing} is missing from "
                f"{SERIALIZE_MODULE}",
                hint=f"declare {missing} = (...) so every "
                     f"{self.dataclass_name} field is classified")
            return
        fp_line, fp_fields = fingerprinted
        ex_line, ex_fields = exempt
        classified = set(fp_fields) | set(ex_fields)
        for name in fields:
            if name not in classified:
                yield self.diagnostic(
                    config.rel, class_line,
                    f"{self.dataclass_name}.{name} is unclassified: not in "
                    f"{self.fingerprinted_name} or {self.exempt_name}",
                    hint="decide whether the field determines results "
                         "(fingerprinted) or only wall-clock (exempt)")
        for name in sorted(set(fp_fields) & set(ex_fields)):
            yield self.diagnostic(
                serialize.rel, fp_line,
                f"{name!r} is listed as both fingerprinted and exempt",
                hint="a field belongs to exactly one classification")
        for name, line, label in (
                [(n, fp_line, self.fingerprinted_name) for n in fp_fields]
                + [(n, ex_line, self.exempt_name) for n in ex_fields]):
            if name not in fields:
                yield self.diagnostic(
                    serialize.rel, line,
                    f"{label} lists {name!r}, which is not a "
                    f"{self.dataclass_name} field",
                    hint="remove the stale entry")


@register
class ConfigClassificationRule(_ClassificationRule):
    id = "FPR001"
    summary = ("every FederatedConfig field must be classified as "
               "fingerprinted or execution-only in runs/serialize.py")
    dataclass_module = CONFIG_MODULE
    dataclass_name = "FederatedConfig"
    fingerprinted_name = "FINGERPRINTED_FIELDS"
    exempt_name = "EXECUTION_FIELDS"


@register
class SweepClassificationRule(_ClassificationRule):
    id = "FPR002"
    summary = ("every SweepSpec field must be classified as fingerprinted "
               "or cosmetic in runs/serialize.py")
    dataclass_module = SPEC_MODULE
    dataclass_name = "SweepSpec"
    fingerprinted_name = "SWEEP_FINGERPRINTED_FIELDS"
    exempt_name = "SWEEP_COSMETIC_FIELDS"
