"""PKL — picklable execution payloads.

The process backend ships ``ClientData`` (including algorithm state in
``client.store``), algorithm instances, and encoder specs to workers by
pickle; an unpicklable member silently degrades execution to serial (the
documented fallback), which is a performance cliff nobody notices in a
test run.  The checker bans the known-unpicklable member kinds at their
source:

``PKL001``
    In a payload-surface class (no ``__getstate__``/``__reduce__`` of its
    own), an instance attribute assigned a lambda, a locally defined
    function, a generator expression, an ``open()`` handle, or a
    threading/multiprocessing/concurrent.futures primitive.

Classes that implement ``__getstate__`` (or ``__reduce__``) opt out —
they have declared how they cross the process boundary.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..diagnostics import Diagnostic
from ..imports import import_origins, resolve_call
from ..project import Project, SourceFile
from ..registry import Rule, register

PKL_SCOPE = (
    "repro.fl.client", "repro.fl.algorithm", "repro.fl.models",
    "repro.baselines", "repro.ssl", "repro.data.shm", "repro.eval.harness",
)
"""The payload surfaces: clients and their stores, algorithms, models,
SSL methods, shared-memory handles, and encoder specs (all documented as
picklable in repro/fl/client.py)."""

_EXEMPTING_METHODS = {"__getstate__", "__reduce__", "__reduce_ex__"}
_UNPICKLABLE_FACTORY_PREFIXES = (
    "threading.", "multiprocessing.", "concurrent.futures.",
)


def _unpicklable_value(value: ast.expr, local_defs: Set[str],
                       origins: dict) -> Optional[str]:
    """Why ``value`` is a known-unpicklable member, or None."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(value, ast.Name) and value.id in local_defs:
        return f"the local function {value.id!r}"
    if isinstance(value, ast.Call):
        target = resolve_call(value.func, origins)
        if target in ("open", "io.open"):
            return "an open file handle"
        if target and any(target.startswith(p)
                          for p in _UNPICKLABLE_FACTORY_PREFIXES):
            return f"a {target} object"
    return None


@register
class UnpicklablePayloadRule(Rule):
    id = "PKL001"
    summary = ("payload classes shipped through ExecutionBackend must not "
               "hold known-unpicklable members")
    scope = PKL_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        origins = import_origins(source)
        for klass in ast.walk(source.tree):
            if not isinstance(klass, ast.ClassDef):
                continue
            method_names = {stmt.name for stmt in klass.body
                            if isinstance(stmt, (ast.FunctionDef,
                                                 ast.AsyncFunctionDef))}
            if method_names & _EXEMPTING_METHODS:
                continue  # the class declares its own pickling protocol
            for method in klass.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                local_defs = {stmt.name for stmt in ast.walk(method)
                              if isinstance(stmt, (ast.FunctionDef,
                                                   ast.AsyncFunctionDef))
                              and stmt is not method}
                for node in ast.walk(method):
                    if not isinstance(node, ast.Assign):
                        continue
                    self_targets = [
                        t for t in node.targets
                        if isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"]
                    if not self_targets:
                        continue
                    why = _unpicklable_value(node.value, local_defs, origins)
                    if why is not None:
                        attr = self_targets[0].attr
                        yield self.diagnostic(
                            source.rel, node.lineno,
                            f"{klass.name}.{attr} holds {why}; the process "
                            f"backend would silently fall back to serial",
                            hint="use a module-level callable / dataclass, "
                                 "or implement __getstate__")
