"""ARR — binary array persistence goes through ``repro.arrays``.

Checkpoint sidecars, store array sidecars, and IPC payloads all share one
container (``.npcol``, :mod:`repro.arrays`): a self-validating format
whose truncated or torn files fail loudly on open.  That guarantee only
holds while the persistence layer has no second, ad-hoc serialization of
array data — a stray ``tobytes()`` has no checksum, and a JSON float
list silently decodes to whatever dtype the reader guesses.

``ARR001``
    An ad-hoc array (de)serialization primitive in an array-persistence
    module: ``ndarray.tobytes``/``tofile``/``tolist`` or the
    ``numpy.save``/``load``/``frombuffer``/``fromfile`` family.  Route
    the arrays through ``repro.arrays.pack_columns``/``write_columns``
    (or the codec's column split) instead.

The one deliberate exception — the legacy schema-1 inline-JSON encoding
in the session codec, kept byte-stable as the compatibility read/write
path — carries an inline allow with its reason.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..diagnostics import Diagnostic
from ..imports import import_origins, resolve_call
from ..project import Project, SourceFile
from ..registry import Rule, register

ARR_SCOPE = ("repro.fl.session", "repro.runs.store", "repro.runs.scheduler",
             "repro.experiments.embeddings")
"""The modules that persist or ship array payloads: session checkpoints
and IPC packing, the run store's sidecars and the scheduler routing them,
and the embedding executor producing the store's bulkiest columns."""

_ADHOC_METHODS = ("tobytes", "tofile", "tolist")

_ADHOC_CALLS = (
    "numpy.save", "numpy.savez", "numpy.savez_compressed", "numpy.load",
    "numpy.frombuffer", "numpy.fromfile", "numpy.memmap",
    "numpy.ndarray.tofile",
)


@register
class AdHocArrayPersistenceRule(Rule):
    id = "ARR001"
    summary = ("array persistence must go through repro.arrays (.npcol "
               "columns), not ad-hoc tobytes/tolist/np.save")
    scope = ARR_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        origins = import_origins(source)
        hint = ("route arrays through repro.arrays (pack_columns/"
                "write_columns) so every byte is checksummed, or suppress "
                "with a reason")
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node.func, origins)
            if target in _ADHOC_CALLS:
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"{target} bypasses the validated .npcol container",
                    hint=hint)
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _ADHOC_METHODS:
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f".{node.func.attr}() is ad-hoc array serialization "
                    "in an array-persistence module",
                    hint=hint)
