"""POP — virtual-population and async-aggregation contracts.

The population plane (:mod:`repro.fl.population`) keeps two promises
that are easy to break silently:

``POP001``
    Async aggregation and availability churn are *opt-in*.  The CI
    bitwise contract covers the sync path, so the dataclass defaults in
    ``FederatedConfig`` must stay ``aggregation = "sync"`` and
    ``availability = None`` — changing either default flips every config
    that never mentions them onto the non-default path (and, because the
    fields are default-omitted from fingerprints, without changing any
    fingerprint).

``POP002``
    No stored generators where participant sets or client realization
    are decided.  In ``repro.fl.sampler`` and ``repro.fl.population``,
    every draw must call ``derive_rng(seed, *streams)`` at the point of
    use: persisting the generator on an attribute makes the next draw
    depend on call history, which breaks sampling round 5 before round
    3, checkpoint rewind, and the availability model's replay-based
    ``state_dict``.  (The availability chain stores *derived state* — a
    cursor it can replay from round 0 — never a live generator.)

Both rules read source ASTs only, so a violation fails ``repro check``
the moment it is written.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import Rule, register

CONFIG_MODULE = "repro.fl.config"

POP_SCOPE = ("repro.fl.sampler", "repro.fl.population")
"""Where replay purity is load-bearing: the modules that decide *which*
clients exist, participate, and drop out each round.  Algorithms and the
session keep their own stored state under the checkpoint codec; these
modules must stay stateless so rewind needs no state at all."""

_OPT_IN_DEFAULTS = {"aggregation": "sync", "availability": None}


def _field_default(class_node: ast.ClassDef, name: str) -> Optional[ast.expr]:
    """The default-value expression of a dataclass field, or ``None``."""
    for stmt in class_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name) \
                and stmt.target.id == name:
            return stmt.value
    return None


@register
class AsyncOptInRule(Rule):
    id = "POP001"
    summary = ("async aggregation and availability churn are opt-in: "
               "FederatedConfig must default aggregation='sync' and "
               "availability=None")

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        config = project.by_module(CONFIG_MODULE)
        if config is None:
            return  # partial tree (e.g. a rule fixture for another family)
        class_node = next(
            (node for node in ast.walk(config.tree)
             if isinstance(node, ast.ClassDef)
             and node.name == "FederatedConfig"), None)
        if class_node is None:
            return
        for name, expected in sorted(_OPT_IN_DEFAULTS.items()):
            if not _has_field(class_node, name):
                continue  # field removed entirely; FPR001 owns that story
            default = _field_default(class_node, name)
            if not (isinstance(default, ast.Constant)
                    and default.value == expected):
                yield self.diagnostic(
                    config.rel,
                    default.lineno if default is not None else class_node.lineno,
                    f"FederatedConfig.{name} must default to the literal "
                    f"{expected!r} (the sync path is the CI bitwise contract)",
                    hint="keep the non-default path behind explicit config "
                         "or CLI opt-in; never flip the default")


def _has_field(class_node: ast.ClassDef, name: str) -> bool:
    return any(isinstance(stmt, ast.AnnAssign)
               and isinstance(stmt.target, ast.Name)
               and stmt.target.id == name
               for stmt in class_node.body)


def _is_derive_rng_call(node: ast.expr) -> bool:
    """Whether ``node`` is (or trivially wraps) a ``derive_rng(...)`` call."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "derive_rng"
    if isinstance(func, ast.Attribute):
        return func.attr == "derive_rng"
    return False


@register
class StoredGeneratorRule(Rule):
    id = "POP002"
    summary = ("sampler and population modules must derive generators at "
               "the point of use, never store them on attributes")
    scope = POP_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not _is_derive_rng_call(value):
                continue
            for target in targets:
                if isinstance(target, ast.Attribute):
                    yield self.diagnostic(
                        source.rel, node.lineno,
                        f"derive_rng(...) result stored on attribute "
                        f"'{ast.unparse(target)}'",
                        hint="a persisted generator makes draws depend on "
                             "call history; re-derive per (seed, round, "
                             "client) at each use instead")
