"""TRC — trace/replay taping restrictions.

``repro.nn.trace`` records one client's forward/loss as a tape and
replays it K-wide; anything non-vectorizable raises ``UntraceableError``
*at record time* — but only if it reaches the tape at all.  Python-side
escapes (``.item()`` pulling a scalar out, boolean-mask indexing whose
output shape depends on data, an eager ``.backward()``) would silently
specialize the tape to the donor client, so the checker bans them where
traces are recorded:

``TRC001``
    Inside a ``with ... patched_parameters(...)`` block — the taped
    region — no ``.item()``, no ``.backward()``, no boolean-mask
    subscripts (``x[y == k]``, ``x[~mask]``).

``TRC002``
    Inside any ``cohort_update`` override — the cohort-level entry point
    whose contract is bitwise equality with the per-client path — no
    ``.item()`` and no boolean-mask subscripts.  (``.backward()`` is
    legal there: replay drives real tensors.)
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..project import Project, SourceFile
from ..registry import Rule, register

TRC_SCOPE = ("repro",)
"""Any repro module may record traces or override cohort_update."""


def _is_bool_mask_subscript(node: ast.Subscript) -> bool:
    """``x[<mask>]`` where the mask is visibly boolean-valued."""
    def boolish(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Compare):
            return True
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Invert):
            return boolish(expr.operand)
        if isinstance(expr, ast.BoolOp):
            return True
        return False

    index = node.slice
    if isinstance(index, ast.Tuple):
        return any(boolish(el) for el in index.elts)
    return boolish(index)


def _untraceable_ops(body: Iterable[ast.stmt],
                     ban_backward: bool) -> Iterator[ast.AST]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "item":
                    yield node
                elif ban_backward and node.func.attr == "backward":
                    yield node
            elif isinstance(node, ast.Subscript) and _is_bool_mask_subscript(node):
                yield node


def _describe(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        return f".{node.func.attr}()"
    return "boolean-mask indexing"


@register
class TapedRegionRule(Rule):
    id = "TRC001"
    summary = ("no .item()/.backward()/bool-mask indexing inside a "
               "patched_parameters taped region")
    scope = TRC_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            taped = any(
                isinstance(item.context_expr, ast.Call)
                and isinstance(item.context_expr.func,
                               (ast.Name, ast.Attribute))
                and (item.context_expr.func.id
                     if isinstance(item.context_expr.func, ast.Name)
                     else item.context_expr.func.attr) == "patched_parameters"
                for item in node.items)
            if not taped:
                continue
            for bad in _untraceable_ops(node.body, ban_backward=True):
                yield self.diagnostic(
                    source.rel, bad.lineno,
                    f"{_describe(bad)} inside a taped region",
                    hint="repro.nn.trace declares this op untraceable; the "
                         "tape would specialize to the donor client")


@register
class CohortUpdateRule(Rule):
    id = "TRC002"
    summary = ("cohort_update overrides must avoid .item() and bool-mask "
               "indexing (untraceable, breaks batched==per-client)")
    scope = TRC_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == "cohort_update":
                for bad in _untraceable_ops(node.body, ban_backward=False):
                    yield self.diagnostic(
                        source.rel, bad.lineno,
                        f"{_describe(bad)} in a cohort_update override",
                        hint="keep cohort bodies vectorizable; push "
                             "client-specific scalar work to the per-client "
                             "fallback path")
