"""TEL — telemetry stays out of the hashed-record surface.

The determinism contract says store cell records, fingerprints, round
histories, and checkpoints are pure functions of their inputs — byte
identical across schedulers, backends, and hosts.  Telemetry measures
wall-clock, which is none of those things, so it must only ever flow
*beside* the hashed artifacts (the ``telemetry/`` sidecar, the timing
index, ``--trace-out`` files), never through the modules that produce
them:

``TEL001``
    A hashed-record surface module imports ``repro.telemetry``.  The
    banned set is everything whose output bytes are fingerprinted or
    compared bitwise: record encoding (``repro.runs.serialize``), cell
    fingerprints (``repro.runs.spec``), the store itself
    (``repro.runs.store`` — it *persists* sidecar text handed to it, but
    must not produce telemetry), round history (``repro.fl.history``),
    and session state serialization (``repro.fl.session.codec``,
    ``repro.fl.session.state``).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..diagnostics import Diagnostic
from ..imports import import_targets
from ..project import Project, SourceFile
from ..registry import Rule, register

RECORD_SURFACE: Tuple[str, ...] = (
    "repro.runs.serialize",
    "repro.runs.spec",
    "repro.runs.store",
    "repro.fl.history",
    "repro.fl.session.codec",
    "repro.fl.session.state",
)
"""Modules whose output bytes are hashed or compared bitwise."""


@register
class RecordSurfaceRule(Rule):
    id = "TEL001"
    summary = ("hashed-record surface modules must not import "
               "repro.telemetry")
    scope = RECORD_SURFACE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        for node, target in import_targets(source):
            if target == "repro.telemetry" \
                    or target.startswith("repro.telemetry."):
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"{source.module} is a hashed-record surface module and "
                    f"may not import {target}",
                    hint="telemetry is sidecar-only: record/export spans in "
                         "the scheduler or session and hand rendered text "
                         "to RunStore.write_telemetry instead")
