"""ATM — atomic write-then-rename persistence.

The run store and session checkpoints promise readers "a missing file or
a complete file, never a torn one" (see :mod:`repro.ioutil`).  That
promise dies the moment any code in the persistence layer writes through
a raw handle, so in those modules every file write must route through
``ioutil.atomic_write_text``:

``ATM001``
    A non-atomic write primitive in a persistence-scoped module:
    ``open(..., "w"/"a"/"x"/...)``, ``.write_text()``/``.write_bytes()``,
    or stream-writing ``json.dump``/``pickle.dump``.  Reads are fine.

Deliberate exceptions exist — the append-only ``index.jsonl`` journal,
the event stream, and ``atomic_write_text``'s own temp-file write — and
each carries an inline allow with its reason.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..diagnostics import Diagnostic
from ..imports import import_origins, resolve_call
from ..project import Project, SourceFile
from ..registry import Rule, register

ATM_SCOPE = ("repro.runs", "repro.fl.session", "repro.ioutil",
             "repro.arrays", "benchmarks")
"""Modules that persist store/checkpoint state, plus the benchmark and
smoke scripts whose JSON artifacts CI parses (a torn artifact fails the
gate with a JSON error instead of the real signal)."""

_WRITE_MODE_CHARS = set("wax+")


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The constant write mode of an ``open``-family call, if any."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        if _WRITE_MODE_CHARS & set(mode_node.value):
            return mode_node.value
    return None


@register
class NonAtomicWriteRule(Rule):
    id = "ATM001"
    summary = ("persistence-layer file writes must go through "
               "ioutil.atomic_write_text (write-then-rename)")
    scope = ATM_SCOPE

    def check_file(self, source: SourceFile,
                   project: Project) -> Iterable[Diagnostic]:
        origins = import_origins(source)
        hint = "use repro.ioutil.atomic_write_text, or suppress with a reason"
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node.func, origins)
            if target in ("open", "io.open", "os.fdopen"):
                mode = _open_write_mode(node)
                if mode is not None:
                    yield self.diagnostic(
                        source.rel, node.lineno,
                        f"raw open(..., {mode!r}) in a persistence module",
                        hint=hint)
            elif target in ("json.dump", "pickle.dump"):
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"{target} writes through a raw stream",
                    hint=f"serialize with {target}s(...) and "
                         f"atomic_write_text the result")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("write_text", "write_bytes"):
                yield self.diagnostic(
                    source.rel, node.lineno,
                    f"Path.{node.func.attr}() is not atomic",
                    hint=hint)
