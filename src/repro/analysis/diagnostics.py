"""Structured diagnostics and the three output formats of ``repro check``.

A :class:`Diagnostic` is one finding: rule id, location, message, and a
fix hint.  Diagnostics sort by (path, line, rule) so output is stable
regardless of rule execution order — the JSON form is golden-testable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Sequence

__all__ = ["Diagnostic", "format_text", "format_json", "format_github"]

JSON_SCHEMA = 1
"""Version stamp of the ``--format json`` payload."""


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule finding, anchored to a source line."""

    path: str
    """Repo-root-relative POSIX path."""
    line: int
    rule: str
    message: str
    hint: str = ""
    """How to fix (or legitimately suppress) the finding."""


def format_text(diagnostics: Sequence[Diagnostic]) -> str:
    """Human-oriented one-line-per-finding rendering."""
    parts: List[str] = []
    for diag in sorted(diagnostics):
        line = f"{diag.path}:{diag.line}: {diag.rule} {diag.message}"
        if diag.hint:
            line += f" [{diag.hint}]"
        parts.append(line)
    return "\n".join(parts)


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    """Machine-oriented rendering; stable key order, golden-testable."""
    payload = {
        "schema": JSON_SCHEMA,
        "diagnostics": [asdict(diag) for diag in sorted(diagnostics)],
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def format_github(diagnostics: Sequence[Diagnostic]) -> str:
    """GitHub Actions workflow-command annotations (``::error ...``)."""
    parts = []
    for diag in sorted(diagnostics):
        message = diag.message
        if diag.hint:
            message += f" ({diag.hint})"
        # Workflow commands are newline-delimited; %0A escapes embedded ones.
        message = message.replace("%", "%25").replace("\n", "%0A")
        parts.append(f"::error file={diag.path},line={diag.line},"
                     f"title={diag.rule}::{message}")
    return "\n".join(parts)
