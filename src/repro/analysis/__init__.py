"""Static invariant checker for the repro codebase (``repro check``).

Six PRs of substrate rest on contracts that used to live only in
docstrings: bitwise determinism across execution backends, atomic
write-then-rename persistence, fingerprint hygiene in :class:`RunKey`,
strict import layering, trace/replay taping restrictions, and picklable
execution payloads.  This package turns each of those contracts into an
enforced rule: AST visitors walk ``src/``, ``benchmarks/`` and
``examples/``, and every violation is either fixed or explicitly
suppressed inline with a reason::

    # repro: allow[DET001] -- standalone convenience; federated paths pass rng

Suppressions are themselves validated — an unused suppression is an
error — so the checker's output is always an exact statement of where
the codebase deviates from its contracts and why.

The package is deliberately dependency-free (stdlib only, no numpy), so
``repro check`` runs in a bare lint environment; contract surfaces that
live in heavier modules (``EXECUTION_FIELDS``, the config field lists)
are read from their sources by AST rather than imported.

See ``docs/invariants.md`` for the catalogue of contracts and rules.
"""

from .diagnostics import Diagnostic, format_github, format_json, format_text
from .project import Project, SourceFile, load_project
from .registry import RULES, Rule, rule_catalog
from .runner import DEFAULT_PATHS, run_check
from .suppressions import SUPPRESSION_RULES, Suppression, file_suppressions

from . import rules  # noqa: E402,F401  (imported for rule registration)

__all__ = [
    "Diagnostic",
    "format_text",
    "format_json",
    "format_github",
    "Project",
    "SourceFile",
    "load_project",
    "Rule",
    "RULES",
    "rule_catalog",
    "run_check",
    "DEFAULT_PATHS",
    "Suppression",
    "SUPPRESSION_RULES",
    "file_suppressions",
]
