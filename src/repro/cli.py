"""Command-line interface: run any experiment of the paper from a shell.

Examples
--------
List the available methods and experiments::

    python -m repro.cli list

Run one method on a chosen workload::

    python -m repro.cli run --method calibre-simclr --dataset cifar10 \
        --setting quantity --param 2 --samples 50 --rounds 25

Parallelize client execution across processes (results are identical to
the serial default — only wall-clock changes)::

    python -m repro.cli run --method calibre-simclr --backend process --workers 4

Regenerate a paper panel::

    python -m repro.cli fig3 --panel 0
    python -m repro.cli fig4 --panel 1
    python -m repro.cli table1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .eval import (
    NonIIDSetting,
    available_methods,
    format_ablation_table,
    format_comparison_table,
    format_series_csv,
    run_experiment,
)
from .fl.execution import available_backends
from .experiments import (
    FIG3_PANELS,
    FIG4_PANELS,
    run_fig3_panel,
    run_fig4_panel,
    run_table1,
    scaled_spec,
)
from .experiments.settings import SCALED_CONFIG

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Calibre reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list methods and experiment panels")

    run_parser = sub.add_parser("run", help="run methods on one workload")
    run_parser.add_argument("--method", action="append", required=True,
                            help="method name (repeatable)")
    run_parser.add_argument("--dataset", default="cifar10",
                            choices=["cifar10", "cifar100", "stl10"])
    run_parser.add_argument("--setting", default="quantity",
                            choices=["quantity", "dirichlet", "iid"])
    run_parser.add_argument("--param", type=float, default=2.0,
                            help="classes per client (quantity) or concentration")
    run_parser.add_argument("--samples", type=int, default=50,
                            help="samples per client")
    run_parser.add_argument("--rounds", type=int, default=SCALED_CONFIG.rounds)
    run_parser.add_argument("--clients", type=int, default=SCALED_CONFIG.num_clients)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--backend", default="serial",
                            choices=available_backends(),
                            help="client-execution engine; results are identical "
                                 "across backends (default: serial)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker count for parallel backends "
                                 "(default: all cores)")
    run_parser.add_argument("--shared-memory", default="auto",
                            choices=["auto", "on", "off"],
                            help="zero-copy shared-memory client-data plane "
                                 "(process backend only): 'auto' enables it "
                                 "when available, 'on' warns if it cannot "
                                 "activate, 'off' pickles datasets inline")
    run_parser.add_argument("--csv", action="store_true",
                            help="also print the CSV series")

    fig3_parser = sub.add_parser("fig3", help="regenerate one Fig. 3 panel")
    fig3_parser.add_argument("--panel", type=int, default=0,
                             choices=range(len(FIG3_PANELS)))
    fig3_parser.add_argument("--seed", type=int, default=0)
    fig3_parser.add_argument("--methods", nargs="*", default=None)

    fig4_parser = sub.add_parser("fig4", help="regenerate one Fig. 4 panel")
    fig4_parser.add_argument("--panel", type=int, default=0,
                             choices=range(len(FIG4_PANELS)))
    fig4_parser.add_argument("--seed", type=int, default=0)
    fig4_parser.add_argument("--novel", type=int, default=6,
                             help="number of novel clients")

    table1_parser = sub.add_parser("table1", help="regenerate Table I")
    table1_parser.add_argument("--seed", type=int, default=0)

    return parser


def _command_list() -> int:
    print("methods:")
    for name in available_methods():
        print(f"  {name}")
    print("\nexecution backends:")
    for name in available_backends():
        print(f"  {name}")
    print("\nfig3 panels:")
    for index, (dataset, label, setting) in enumerate(FIG3_PANELS):
        print(f"  {index}: {dataset} paper:{label} scaled:{setting.label()}")
    print("\nfig4 panels:")
    for index, (dataset, label, setting) in enumerate(FIG4_PANELS):
        print(f"  {index}: {dataset} paper:{label} scaled:{setting.label()}")
    return 0


def _command_run(args) -> int:
    unknown = [m for m in args.method if m not in available_methods()]
    if unknown:
        print(f"unknown methods: {unknown}", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    config = SCALED_CONFIG.with_overrides(
        rounds=args.rounds, num_clients=args.clients,
        clients_per_round=min(SCALED_CONFIG.clients_per_round, args.clients),
        seed=args.seed, backend=args.backend, workers=args.workers,
        shared_memory={"auto": None, "on": True, "off": False}[args.shared_memory],
    )
    spec = scaled_spec(
        args.dataset,
        NonIIDSetting(args.setting, args.param, args.samples),
        args.method,
        seed=args.seed,
        config=config,
        name=f"{args.dataset} {args.setting}({args.param}, {args.samples})",
    )
    outcome = run_experiment(spec, verbose=True)
    print()
    print(format_comparison_table(outcome, title=spec.name))
    if args.csv:
        print()
        print(format_series_csv(outcome))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "fig3":
        run_fig3_panel(args.panel, methods=args.methods or None, seed=args.seed,
                       verbose=True)
        return 0
    if args.command == "fig4":
        run_fig4_panel(args.panel, seed=args.seed, num_novel_clients=args.novel,
                       verbose=True)
        return 0
    if args.command == "table1":
        rows = run_table1(seed=args.seed)
        print(format_ablation_table(rows))
        return 0
    return 2  # unreachable given required=True


if __name__ == "__main__":
    sys.exit(main())
