"""Command-line interface: run any experiment of the paper from a shell.

Examples
--------
List the available methods and experiments::

    python -m repro.cli list

Run one method on a chosen workload::

    python -m repro.cli run --method calibre-simclr --dataset cifar10 \
        --setting quantity --param 2 --samples 50 --rounds 25

Parallelize client execution across processes (results are identical to
the serial default — only wall-clock changes)::

    python -m repro.cli run --method calibre-simclr --backend process --workers 4

Regenerate a paper panel::

    python -m repro.cli fig3 --panel 0
    python -m repro.cli fig4 --panel 1
    python -m repro.cli table1

Run a paper artifact as a persistent, resumable sweep, then regenerate
its table from the store alone (no retraining)::

    python -m repro.cli sweep --exp table1 --runs-dir runs/table1 --seeds 0 1 2
    python -m repro.cli report --exp table1 --runs-dir runs/table1 --seeds 0 1 2

Sweep an embedding figure's grid (``--grid`` is an alias of ``--exp``),
then render the figure as SVG purely from the stored records::

    python -m repro.cli sweep --grid fig5 --runs-dir runs/fig5
    python -m repro.cli figures fig5 --store runs/fig5 --out fig5.svg
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from dataclasses import replace
from typing import List, Optional

from .analysis.cli import add_check_arguments, run_check_command
from .eval import (
    NonIIDSetting,
    available_methods,
    format_ablation_table,
    format_across_seeds_table,
    format_comparison_table,
    format_series_csv,
    format_silhouette_across_seeds,
    format_silhouette_table,
    render_series_svg,
    run_experiment,
)
from .experiments import (
    EMBEDDING_FIGURES,
    FIG3_PANELS,
    FIG4_PANELS,
    TABLE1_SETTING,
    TABLE1_VARIANTS,
    embeddings_sweep,
    execute_embedding_cell,
    fig3_sweep,
    fig4_sweep,
    figure_results_from_records,
    render_figure_svg,
    run_fig3_panel,
    run_fig4_panel,
    run_table1,
    table1_rows_across_seeds,
    table1_rows_from_records,
    table1_sweep,
    scaled_spec,
)
from .experiments.settings import SCALED_CONFIG
from .fl.config import AGGREGATION_POLICIES, AvailabilitySpec
from .fl.execution import available_backends
from .ioutil import atomic_write_text
from .runs import RunStore, outcome_from_records, run_sweep, save_outcome
from .telemetry import (
    Tracer,
    chrome_trace,
    chrome_trace_from_cells,
    load_store_telemetry,
    render_profile,
)

__all__ = ["main", "build_parser"]

SWEEP_EXPERIMENTS = ("table1", "fig3", "fig4") + EMBEDDING_FIGURES
FIGURE_CHOICES = tuple(sorted(EMBEDDING_FIGURES + ("fig3", "fig4")))


def _add_population_arguments(parser: argparse.ArgumentParser) -> None:
    """Population-plane knobs (availability churn + async aggregation).

    Shared by ``run`` and the sweep-grid commands; all of them are
    *semantic* (they change results and therefore cell hashes), and all
    default to off so existing command lines reproduce existing bytes.
    """
    parser.add_argument("--availability", type=float, default=None,
                        metavar="FRAC",
                        help="stationary fraction of clients online per "
                             "round (changes results/cell hashes; "
                             "default: everyone, always)")
    parser.add_argument("--churn", type=float, default=None, metavar="RATE",
                        help="membership flip intensity in [0, 1]: 1 redraws "
                             "who is online every round, values toward 0 "
                             "make membership sticky (only meaningful with "
                             "--availability < 1)")
    parser.add_argument("--dropout", type=float, default=None, metavar="PROB",
                        help="probability a sampled client drops mid-round "
                             "before its update lands (changes results)")
    parser.add_argument("--speed-spread", type=float, default=None,
                        metavar="SIGMA",
                        help="lognormal sigma of per-client speed "
                             "multipliers; orders simulated completions "
                             "under async aggregation")
    parser.add_argument("--aggregation", default="sync",
                        choices=list(AGGREGATION_POLICIES),
                        help="server aggregation policy: 'sync' (default, "
                             "the bitwise-deterministic contract), "
                             "'buffered' (FedBuff-style flushes), or "
                             "'staleness' (per-update staleness weighting)")
    parser.add_argument("--aggregation-buffer", type=int, default=None,
                        metavar="K",
                        help="buffer size for --aggregation buffered "
                             "(default: 10)")
    parser.add_argument("--staleness-decay", type=float, default=None,
                        metavar="D",
                        help="staleness down-weighting exponent for the "
                             "async policies (default: 0.5)")


def _population_overrides(args) -> dict:
    """``FederatedConfig`` overrides from the population-plane flags.

    Empty when every flag is at its default, so the resulting config —
    and every fingerprint derived from it — is byte-identical to a
    pre-population command line.
    """
    overrides = {}
    if (args.availability is not None or args.churn is not None
            or args.dropout is not None or args.speed_spread is not None):
        try:
            overrides["availability"] = AvailabilitySpec(
                availability=(1.0 if args.availability is None
                              else args.availability),
                churn=1.0 if args.churn is None else args.churn,
                dropout=0.0 if args.dropout is None else args.dropout,
                speed_spread=(0.0 if args.speed_spread is None
                              else args.speed_spread),
            )
        except ValueError as error:
            raise SystemExit(f"availability flags: {error}") from error
    if args.aggregation != "sync":
        overrides["aggregation"] = args.aggregation
    if args.aggregation_buffer is not None:
        if args.aggregation_buffer < 1:
            raise SystemExit(f"--aggregation-buffer must be >= 1, "
                             f"got {args.aggregation_buffer}")
        overrides["aggregation_buffer"] = args.aggregation_buffer
    if args.staleness_decay is not None:
        if args.staleness_decay < 0:
            raise SystemExit(f"--staleness-decay must be >= 0, "
                             f"got {args.staleness_decay}")
        overrides["staleness_decay"] = args.staleness_decay
    return overrides


def _population_flags(args) -> List[str]:
    """Echo the population-plane flags (for ``repro report`` hints)."""
    parts = []
    if args.availability is not None:
        parts.append(f"--availability {args.availability}")
    if args.churn is not None:
        parts.append(f"--churn {args.churn}")
    if args.dropout is not None:
        parts.append(f"--dropout {args.dropout}")
    if args.speed_spread is not None:
        parts.append(f"--speed-spread {args.speed_spread}")
    if args.aggregation != "sync":
        parts.append(f"--aggregation {args.aggregation}")
    if args.aggregation_buffer is not None:
        parts.append(f"--aggregation-buffer {args.aggregation_buffer}")
    if args.staleness_decay is not None:
        parts.append(f"--staleness-decay {args.staleness_decay}")
    return parts


def _add_sweep_grid_arguments(parser: argparse.ArgumentParser,
                              experiment_flag: bool = True) -> None:
    """Flags that *define* a sweep grid — shared by ``sweep``, ``report``
    and ``figures``.

    ``report``/``figures`` rebuild the same grid to know which
    content-hashed cells to read, so any flag here that changes results
    must be given identically to every command.  ``figures`` names its
    artifact positionally, so it skips the ``--exp`` flag.
    """
    if experiment_flag:
        parser.add_argument("--exp", "--grid", dest="exp", required=True,
                            choices=SWEEP_EXPERIMENTS,
                            help="which paper artifact's grid to use "
                                 "(--grid is an alias)")
    parser.add_argument("--panel", type=int, default=0,
                        help="panel index for fig3 (0-3) / fig4 (0-1)")
    parser.add_argument("--runs-dir", "--store", dest="runs_dir", required=True,
                        metavar="DIR",
                        help="run-store directory (created on demand by "
                             "'sweep'; --store is an alias)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0],
                        help="seed axis of the grid (default: 0)")
    parser.add_argument("--methods", nargs="*", default=None,
                        help="method subset (default: the artifact's full list)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override config rounds (changes cell hashes)")
    parser.add_argument("--clients", type=int, default=None,
                        help="override config num_clients (changes cell hashes)")
    parser.add_argument("--samples", type=int, default=None,
                        help="override samples per client (changes cell hashes)")
    parser.add_argument("--novel", type=int, default=6,
                        help="novel clients per cell (fig4 only)")
    parser.add_argument("--embed-clients", type=int, default=None,
                        help="clients sampled into an embedding figure "
                             "(changes cell hashes; embedding grids only)")
    parser.add_argument("--embed-samples", type=int, default=None,
                        help="samples embedded per client "
                             "(changes cell hashes; embedding grids only)")
    parser.add_argument("--tsne-iterations", type=int, default=None,
                        help="t-SNE gradient steps "
                             "(changes cell hashes; embedding grids only)")
    _add_population_arguments(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Calibre reproduction command-line interface"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list methods and experiment panels")

    check_parser = sub.add_parser(
        "check",
        help="run the static invariant checker over the codebase",
        description="AST-check src/, benchmarks/ and examples/ against the "
                    "repo's determinism, atomicity, fingerprint, layering, "
                    "tracing and pickling contracts (docs/invariants.md). "
                    "Exit 0 means every invariant holds; 'python -m "
                    "repro.analysis' is the stdlib-only spelling.")
    add_check_arguments(check_parser)

    run_parser = sub.add_parser("run", help="run methods on one workload")
    run_parser.add_argument("--method", action="append", required=True,
                            help="method name (repeatable)")
    run_parser.add_argument("--dataset", default="cifar10",
                            choices=["cifar10", "cifar100", "stl10"])
    run_parser.add_argument("--setting", default="quantity",
                            choices=["quantity", "dirichlet", "iid"])
    run_parser.add_argument("--param", type=float, default=2.0,
                            help="classes per client (quantity) or concentration")
    run_parser.add_argument("--samples", type=int, default=50,
                            help="samples per client")
    run_parser.add_argument("--rounds", type=int, default=SCALED_CONFIG.rounds)
    run_parser.add_argument("--clients", type=int, default=SCALED_CONFIG.num_clients)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--backend", default="serial",
                            choices=available_backends(),
                            help="client-execution engine; results are identical "
                                 "across backends (default: serial)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker count for parallel backends "
                                 "(default: all cores)")
    run_parser.add_argument("--client-batch", type=int, default=None,
                            metavar="K",
                            help="cohort-vectorized client execution: omit "
                                 "for auto (batch homogeneous cohorts whole), "
                                 "1 to disable, K>=2 to cap cohort size; "
                                 "results are bitwise identical either way")
    run_parser.add_argument("--shared-memory", default="auto",
                            choices=["auto", "on", "off"],
                            help="zero-copy shared-memory client-data plane "
                                 "(process backend only): 'auto' enables it "
                                 "when available, 'on' warns if it cannot "
                                 "activate, 'off' pickles datasets inline")
    run_parser.add_argument("--csv", action="store_true",
                            help="also print the CSV series")
    run_parser.add_argument("--out", default=None, metavar="PATH",
                            help="persist the full ExperimentOutcome as JSON "
                                 "(same serializer as the sweep run store)")
    run_parser.add_argument("--checkpoints", default=None, metavar="DIR",
                            help="write a round-level session checkpoint per "
                                 "method under DIR (atomic, one file per "
                                 "method, overwritten each round)")
    run_parser.add_argument("--resume", action="store_true",
                            help="resume each method from its checkpoint in "
                                 "--checkpoints if one exists; only the "
                                 "remaining rounds recompute and the result "
                                 "is bitwise identical to an uninterrupted run")
    run_parser.add_argument("--checkpoint-every", type=int, default=1,
                            metavar="K",
                            help="checkpoint after every K-th round "
                                 "(default: 1; larger K trades at most K-1 "
                                 "recomputed rounds for less write I/O)")
    run_parser.add_argument("--trace-out", default=None, metavar="PATH",
                            help="record span telemetry for the whole run "
                                 "and write it as Chrome trace-event JSON "
                                 "(open in Perfetto or chrome://tracing); "
                                 "results are identical with or without it")
    _add_population_arguments(run_parser)

    fig3_parser = sub.add_parser("fig3", help="regenerate one Fig. 3 panel")
    fig3_parser.add_argument("--panel", type=int, default=0,
                             choices=range(len(FIG3_PANELS)))
    fig3_parser.add_argument("--seed", type=int, default=0)
    fig3_parser.add_argument("--methods", nargs="*", default=None)

    fig4_parser = sub.add_parser("fig4", help="regenerate one Fig. 4 panel")
    fig4_parser.add_argument("--panel", type=int, default=0,
                             choices=range(len(FIG4_PANELS)))
    fig4_parser.add_argument("--seed", type=int, default=0)
    fig4_parser.add_argument("--novel", type=int, default=6,
                             help="number of novel clients")

    table1_parser = sub.add_parser("table1", help="regenerate Table I")
    table1_parser.add_argument("--seed", type=int, default=0)

    sweep_parser = sub.add_parser(
        "sweep",
        help="run a paper artifact as a persistent, resumable sweep",
        description="Expand an artifact's grid into content-hashed cells, "
                    "skip the ones already in the run store, and dispatch "
                    "the rest; a killed sweep resumes instead of restarting.")
    _add_sweep_grid_arguments(sweep_parser)
    sweep_parser.add_argument("--scheduler", default="serial",
                              choices=available_backends(),
                              help="experiment-level execution backend; cell "
                                   "results are identical across schedulers "
                                   "(default: serial)")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="concurrent cells for parallel schedulers "
                                   "(default: all cores)")
    sweep_parser.add_argument("--client-batch", type=int, default=None,
                              metavar="K",
                              help="cohort-vectorized client execution inside "
                                   "each cell: omit for auto, 1 to disable, "
                                   "K>=2 to cap cohort size; store bytes are "
                                   "identical either way")
    sweep_parser.add_argument("--max-cells", type=int, default=None,
                              help="execute at most N pending cells this pass "
                                   "(budgeted/smoke runs); the rest defer")
    sweep_parser.add_argument("--round-checkpoints", action="store_true",
                              help="checkpoint in-flight cells per round under "
                                   "<runs-dir>/checkpoints/; a killed sweep "
                                   "resumes mid-cell from the last finished "
                                   "round instead of restarting the cell")
    sweep_parser.add_argument("--checkpoint-every", type=int, default=1,
                              metavar="K",
                              help="with --round-checkpoints: checkpoint "
                                   "after every K-th round (default: 1)")
    sweep_parser.add_argument("--no-telemetry", action="store_true",
                              help="skip the per-cell telemetry/<hash>.jsonl "
                                   "span sidecars (store records are "
                                   "byte-identical either way)")
    sweep_parser.add_argument("--trace-out", default=None, metavar="PATH",
                              help="after the sweep, combine the store's "
                                   "telemetry sidecars into one Chrome "
                                   "trace-event JSON (one process row per "
                                   "cell; open in Perfetto)")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-cell progress lines")

    report_parser = sub.add_parser(
        "report",
        help="regenerate an artifact's tables from the run store (no retraining)",
        description="Rebuild the same grid as 'repro sweep' and render its "
                    "tables purely from stored cell records.")
    _add_sweep_grid_arguments(report_parser)
    report_parser.add_argument("--csv", action="store_true",
                               help="also print the CSV series (fig3/fig4)")
    report_parser.add_argument("--across-seeds", action="store_true",
                               help="collapse the seed axis into mean ± std "
                                    "rows instead of printing one table per "
                                    "seed")
    report_parser.add_argument("--timings", action="store_true",
                               help="also print per-cell wall-clock (and "
                                    "mean per-round time) recorded in the "
                                    "store's index.jsonl")

    figures_parser = sub.add_parser(
        "figures",
        help="render a paper figure as SVG from the run store (no retraining)",
        description="Rebuild a figure's sweep grid, read its records from "
                    "the run store, and write the figure as a standalone "
                    "SVG — embedding figures (fig1/2/5-8) and the "
                    "accuracy-fairness scatters (fig3/fig4) alike.")
    figures_parser.add_argument("figure", choices=FIGURE_CHOICES,
                                help="which paper figure to render")
    _add_sweep_grid_arguments(figures_parser, experiment_flag=False)
    figures_parser.add_argument("--seed", type=int, default=None,
                                help="which seed's records to render "
                                     "(default: the grid's single seed; "
                                     "required when --seeds lists several)")
    figures_parser.add_argument("--out", default=None, metavar="PATH",
                                help="output SVG path (default: <figure>.svg, "
                                     "fig3/fig4: <figure>-panel<P>.svg)")

    profile_parser = sub.add_parser(
        "profile",
        help="summarize a run store's telemetry sidecars (hot phases, "
             "stragglers, counters)",
        description="Read every telemetry/<fingerprint>.jsonl sidecar under "
                    "the store and print, per cell, the time spent per "
                    "phase, client-update statistics (including straggler "
                    "spread: slowest client minus the round median), "
                    "per-worker utilization, and counter totals. Purely "
                    "read-only diagnostics.")
    profile_parser.add_argument("store", metavar="DIR",
                                help="run-store directory (the --runs-dir of "
                                     "a sweep run with telemetry on)")
    profile_parser.add_argument("--top", type=int, default=0, metavar="N",
                                help="show only the N busiest workers per "
                                     "cell (default: all)")

    return parser


def _command_list() -> int:
    print("methods:")
    for name in available_methods():
        print(f"  {name}")
    print("\nexecution backends:")
    for name in available_backends():
        print(f"  {name}")
    print("\nfig3 panels:")
    for index, (dataset, label, setting) in enumerate(FIG3_PANELS):
        print(f"  {index}: {dataset} paper:{label} scaled:{setting.label()}")
    print("\nfig4 panels:")
    for index, (dataset, label, setting) in enumerate(FIG4_PANELS):
        print(f"  {index}: {dataset} paper:{label} scaled:{setting.label()}")
    print("\nsweep experiments (repro sweep/report --exp ...):")
    for name in SWEEP_EXPERIMENTS:
        print(f"  {name}")
    print("\nrenderable figures (repro figures ...):")
    for name in FIGURE_CHOICES:
        print(f"  {name}")
    return 0


def _command_run(args) -> int:
    unknown = [m for m in args.method if m not in available_methods()]
    if unknown:
        print(f"unknown methods: {unknown}", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.client_batch is not None and args.client_batch < 1:
        print(f"--client-batch must be >= 1, got {args.client_batch}",
              file=sys.stderr)
        return 2
    if args.resume and not args.checkpoints:
        print("--resume requires --checkpoints DIR", file=sys.stderr)
        return 2
    if args.checkpoint_every < 1:
        print(f"--checkpoint-every must be >= 1, got {args.checkpoint_every}",
              file=sys.stderr)
        return 2
    config = SCALED_CONFIG.with_overrides(
        rounds=args.rounds, num_clients=args.clients,
        clients_per_round=min(SCALED_CONFIG.clients_per_round, args.clients),
        seed=args.seed, backend=args.backend, workers=args.workers,
        shared_memory={"auto": None, "on": True, "off": False}[args.shared_memory],
        client_batch=args.client_batch,
        **_population_overrides(args),
    )
    spec = scaled_spec(
        args.dataset,
        NonIIDSetting(args.setting, args.param, args.samples),
        args.method,
        seed=args.seed,
        config=config,
        name=f"{args.dataset} {args.setting}({args.param}, {args.samples})",
    )
    # With --trace-out, an ambient tracer spans the entire run: every
    # method's session, worker fragments included, lands on one timeline.
    tracer = Tracer() if args.trace_out else None
    try:
        with tracer.activate() if tracer is not None else nullcontext():
            outcome = run_experiment(spec, verbose=True,
                                     checkpoint_dir=args.checkpoints,
                                     resume=args.resume,
                                     checkpoint_every=args.checkpoint_every)
    except ValueError as error:
        if not args.resume:
            raise
        # A stale checkpoint from different settings must fail loudly but
        # cleanly: the session refuses the restore by context fingerprint.
        print(f"resume failed: {error}", file=sys.stderr)
        return 1
    print()
    print(format_comparison_table(outcome, title=spec.name))
    if args.csv:
        print()
        print(format_series_csv(outcome))
    if args.out:
        path = save_outcome(outcome, args.out)
        print(f"\nwrote {path}")
    if tracer is not None:
        payload = chrome_trace(tracer, process_name=spec.name)
        path = atomic_write_text(args.trace_out,
                                 json.dumps(payload, sort_keys=True))
        print(f"wrote trace {path} ({len(payload['traceEvents'])} events; "
              "open in https://ui.perfetto.dev)")
    return 0


def _build_sweep(args, experiment: Optional[str] = None):
    """Build the (deterministic) sweep grid described by CLI flags."""
    experiment = experiment if experiment is not None else args.exp
    if args.methods:
        unknown = [m for m in args.methods if m not in available_methods()]
        if unknown:
            raise SystemExit(f"unknown methods: {unknown}")
    overrides = {}
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if args.clients is not None:
        overrides["num_clients"] = args.clients
        overrides["clients_per_round"] = min(SCALED_CONFIG.clients_per_round,
                                             args.clients)
    overrides.update(_population_overrides(args))
    config = SCALED_CONFIG.with_overrides(**overrides) if overrides else None

    if experiment in EMBEDDING_FIGURES:
        return embeddings_sweep(
            experiment, methods=args.methods or None, seeds=args.seeds,
            config=config, samples_per_client=args.samples,
            embed_clients=args.embed_clients, embed_samples=args.embed_samples,
            tsne_iterations=args.tsne_iterations,
        )
    if experiment == "table1":
        setting = TABLE1_SETTING
        if args.samples is not None:
            setting = replace(setting, samples_per_client=args.samples)
        return table1_sweep(variants=args.methods or TABLE1_VARIANTS,
                            seeds=args.seeds, setting=setting, config=config)
    try:
        if experiment == "fig3":
            sweep = fig3_sweep(args.panel, methods=args.methods, seeds=args.seeds,
                               config=config, samples_per_client=args.samples)
        else:
            sweep = fig4_sweep(args.panel, methods=args.methods, seeds=args.seeds,
                               num_novel_clients=args.novel, config=config,
                               samples_per_client=args.samples)
    except IndexError as error:
        raise SystemExit(f"--panel: {error}") from error
    return sweep


def _grid_flags(args) -> str:
    """Echo the grid-defining flags so a hinted ``repro report`` command
    rebuilds exactly the swept grid (fingerprints must match the store)."""
    parts = [f"--exp {args.exp}", f"--runs-dir {args.runs_dir}"]
    if args.exp in ("fig3", "fig4"):
        parts.append(f"--panel {args.panel}")
    if args.seeds != [0]:
        parts.append("--seeds " + " ".join(str(seed) for seed in args.seeds))
    if args.methods:
        parts.append("--methods " + " ".join(args.methods))
    if args.rounds is not None:
        parts.append(f"--rounds {args.rounds}")
    if args.clients is not None:
        parts.append(f"--clients {args.clients}")
    if args.samples is not None:
        parts.append(f"--samples {args.samples}")
    if args.exp == "fig4" and args.novel != 6:
        parts.append(f"--novel {args.novel}")
    if args.embed_clients is not None:
        parts.append(f"--embed-clients {args.embed_clients}")
    if args.embed_samples is not None:
        parts.append(f"--embed-samples {args.embed_samples}")
    if args.tsne_iterations is not None:
        parts.append(f"--tsne-iterations {args.tsne_iterations}")
    parts.extend(_population_flags(args))
    return " ".join(parts)


def _command_sweep(args) -> int:
    if args.checkpoint_every < 1:
        print(f"--checkpoint-every must be >= 1, got {args.checkpoint_every}",
              file=sys.stderr)
        return 2
    if args.client_batch is not None and args.client_batch < 1:
        print(f"--client-batch must be >= 1, got {args.client_batch}",
              file=sys.stderr)
        return 2
    sweep = _build_sweep(args)
    store = RunStore(args.runs_dir)
    executor = (execute_embedding_cell if args.exp in EMBEDDING_FIGURES
                else None)
    summary = run_sweep(sweep, store=store, backend=args.scheduler,
                        workers=args.jobs, max_cells=args.max_cells,
                        client_batch=args.client_batch,
                        round_checkpoints=args.round_checkpoints,
                        checkpoint_every=args.checkpoint_every,
                        executor=executor,
                        telemetry=not args.no_telemetry,
                        verbose=not args.quiet)
    print(summary.describe())
    print(f"store: {store.root} ({len(store)} cells)")
    if args.trace_out:
        cells = load_store_telemetry(str(store.root))
        if not cells:
            print("no telemetry sidecars to combine (swept with "
                  "--no-telemetry, or nothing executed yet)", file=sys.stderr)
        else:
            labeled = [(f"{fingerprint[:12]} "
                        f"{cell.meta.get('label', '')}".strip(), cell)
                       for fingerprint, cell in cells]
            payload = chrome_trace_from_cells(labeled)
            path = atomic_write_text(args.trace_out,
                                     json.dumps(payload, sort_keys=True))
            print(f"wrote trace {path} ({len(cells)} cells; open in "
                  "https://ui.perfetto.dev)")
    if summary.complete:
        flags = _grid_flags(args)
        print(f"complete — regenerate tables anytime with: repro report {flags}")
        if args.exp in EMBEDDING_FIGURES:
            print(f"render the figure with: repro figures {args.exp} "
                  + flags.replace(f"--exp {args.exp} ", ""))
    return 0


def _report_title(base: str, seed: int, many_seeds: bool) -> str:
    return f"{base} [seed {seed}]" if many_seeds else base


def _print_timings(store: RunStore, cells) -> None:
    """Render the per-cell wall-clock block (``repro report --timings``).

    Timings are index-only diagnostics: cells swept before timing existed
    (or re-indexed from records alone) simply have none recorded.
    """
    timings = store.timings()
    print("cell timings (from index.jsonl):")
    totals = []
    rows_missing = 0
    rows_resumed = 0
    rows_churned = 0
    for key in cells:
        timing = timings.get(key.fingerprint)
        if timing is None:
            rows_missing += 1
            continue
        # Churn-affected cells (active availability model) ran fewer or
        # different clients per round; their wall clocks are flagged so
        # they never read as baseline numbers.  The index marker is
        # authoritative; the config fallback covers cells indexed before
        # the marker existed.
        availability = key.config.availability
        churned = bool(timing.get("churn")) or (
            availability is not None and availability.is_active)
        marker = " (churn)" if churned else ""
        if churned:
            rows_churned += 1
        wall = timing.get("wall_clock_s")
        if wall is None:
            # A resumed cell carries the marker instead of numbers: its
            # elapsed covered only the recomputed tail of the run.
            if timing.get("resumed"):
                rows_resumed += 1
                print(f"  {key.fingerprint}   (resumed)            "
                      f"{key.label()}{marker}")
            else:
                rows_missing += 1
            continue
        per_round = timing.get("mean_round_s")
        totals.append(wall)
        per_round_text = f" ({per_round:8.3f}s/round)" if per_round else ""
        print(f"  {key.fingerprint}  {wall:9.3f}s{per_round_text}  "
              f"{key.label()}{marker}")
    if totals:
        print(f"  total {sum(totals):.3f}s over {len(totals)} cells, "
              f"mean {sum(totals) / len(totals):.3f}s/cell")
    if rows_resumed:
        print(f"  ({rows_resumed} cell(s) finished from a mid-cell "
              "checkpoint: no comparable wall clock)")
    if rows_churned:
        print(f"  ({rows_churned} cell(s) ran under availability churn: "
              "wall clocks cover a reduced client load)")
    if rows_missing:
        print(f"  ({rows_missing} cell(s) have no recorded timing)")


def _across_seeds_pairs(cells, records, novel: bool = False):
    """method → per-seed (mean, variance) pairs, in the grid's seed order."""
    per_method = {}
    report_key = "novel_report" if novel else "report"
    for key, record in zip(cells, records):
        report = record.get(report_key)
        if report is None:
            continue
        per_method.setdefault(key.method, []).append(
            (report["mean"], report["variance"]))
    return per_method


def _silhouette_pairs(cells, records):
    """method → per-seed (tsne, feature) silhouettes, in grid seed order."""
    per_method = {}
    for key, record in zip(cells, records):
        embedding = record.get("embedding")
        if embedding is None:
            continue
        per_method.setdefault(key.method, []).append(
            (embedding["silhouette"], embedding["feature_silhouette"]))
    return per_method


def _report_across_seeds(args, cells, records) -> int:
    seeds_label = f"[across seeds {' '.join(str(s) for s in args.seeds)}]"
    if args.exp in EMBEDDING_FIGURES:
        print(format_silhouette_across_seeds(
            _silhouette_pairs(cells, records),
            title=f"{args.exp} silhouettes {seeds_label}"))
        return 0
    if args.exp == "table1":
        rows = table1_rows_across_seeds(
            cells, records, variants=args.methods or TABLE1_VARIANTS,
            seeds=args.seeds)
        print(format_ablation_table(rows, title=f"Table I {seeds_label}"))
        return 0
    panels = FIG3_PANELS if args.exp == "fig3" else FIG4_PANELS
    dataset, paper_label, _setting = panels[args.panel]
    name = f"{args.exp}-panel{args.panel} {dataset} paper:{paper_label}"
    print(format_across_seeds_table(_across_seeds_pairs(cells, records),
                                    title=f"{name} {seeds_label}"))
    novel_pairs = _across_seeds_pairs(cells, records, novel=True)
    if novel_pairs:
        print()
        print(format_across_seeds_table(
            novel_pairs, title=f"{name} [novel] {seeds_label}"))
    return 0


def _command_report(args) -> int:
    sweep = _build_sweep(args)
    try:
        store = RunStore(args.runs_dir, create=False)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    cells = sweep.cells()
    missing = store.missing(cells)
    if missing:
        print(f"{len(missing)} of {len(cells)} cells missing from {store.root}; "
              f"finish the sweep first:", file=sys.stderr)
        for key in missing[:10]:
            print(f"  {key.fingerprint}  {key.label()}", file=sys.stderr)
        if len(missing) > 10:
            print(f"  ... and {len(missing) - 10} more", file=sys.stderr)
        return 1
    records = store.load_records(cells)
    if args.across_seeds:
        status = _report_across_seeds(args, cells, records)
        if args.timings:
            print()
            _print_timings(store, cells)
        return status
    many_seeds = len(args.seeds) > 1
    first = True
    for seed in args.seeds:
        if not first:
            print()
        first = False
        if args.exp in EMBEDDING_FIGURES:
            results = figure_results_from_records(
                cells, records, methods=args.methods or None, seed=seed,
                store=store)
            print(format_silhouette_table(
                results, title=_report_title(f"{args.exp} silhouettes",
                                             seed, many_seeds)))
            continue
        if args.exp == "table1":
            rows = table1_rows_from_records(
                cells, records, variants=args.methods or TABLE1_VARIANTS, seed=seed)
            print(format_ablation_table(
                rows, title=_report_title("Table I", seed, many_seeds)))
            continue
        panels = FIG3_PANELS if args.exp == "fig3" else FIG4_PANELS
        dataset, paper_label, _setting = panels[args.panel]
        name = f"{args.exp}-panel{args.panel} {dataset} paper:{paper_label}"
        spec = sweep.to_experiment_spec(seed=seed, name=name)
        seed_records = [record for key, record in zip(cells, records)
                        if key.seed == seed]
        outcome = outcome_from_records(spec, seed_records)
        print(format_comparison_table(
            outcome, title=_report_title(spec.name, seed, many_seeds)))
        if outcome.novel_reports:
            print(format_comparison_table(
                outcome, novel=True,
                title=_report_title(spec.name + " [novel]", seed, many_seeds)))
        if args.csv:
            print(format_series_csv(outcome))
    if args.timings:
        print()
        _print_timings(store, cells)
    return 0


def _command_figures(args) -> int:
    """Render one paper figure from the run store alone (no retraining)."""
    # 'figures' renders one seed of the grid. The grid axis (--seeds) must
    # match what was swept, so never rewrite it silently from --seed.
    if args.seed is None:
        if len(args.seeds) > 1:
            print(f"--seeds lists {args.seeds}; pick one to render with "
                  "--seed N", file=sys.stderr)
            return 2
        args.seed = args.seeds[0]
    elif args.seed not in args.seeds:
        if args.seeds == [0]:
            # --seeds was left at its default; follow --seed.
            args.seeds = [args.seed]
        else:
            print(f"--seed {args.seed} is not in the swept grid's --seeds "
                  f"{args.seeds}", file=sys.stderr)
            return 2
    sweep = _build_sweep(args, experiment=args.figure)
    try:
        store = RunStore(args.runs_dir, create=False)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    cells = [key for key in sweep.cells() if key.seed == args.seed]
    missing = store.missing(cells)
    if missing:
        print(f"{len(missing)} of {len(cells)} cells missing from {store.root}; "
              f"run the sweep first (repro sweep --exp {args.figure} ...):",
              file=sys.stderr)
        for key in missing[:10]:
            print(f"  {key.fingerprint}  {key.label()}", file=sys.stderr)
        return 1
    records = store.load_records(cells)
    if args.figure in EMBEDDING_FIGURES:
        results = figure_results_from_records(
            cells, records, methods=args.methods or None, seed=args.seed,
            store=store)
        svg = render_figure_svg(args.figure, results)
        print(format_silhouette_table(results, title=f"{args.figure} silhouettes"))
        default_out = f"{args.figure}.svg"
    else:
        panels = FIG3_PANELS if args.figure == "fig3" else FIG4_PANELS
        dataset, paper_label, _setting = panels[args.panel]
        name = f"{args.figure}-panel{args.panel} {dataset} paper:{paper_label}"
        spec = sweep.to_experiment_spec(seed=args.seed, name=name)
        outcome = outcome_from_records(spec, records)
        svg = render_series_svg(outcome, title=name)
        default_out = f"{args.figure}-panel{args.panel}.svg"
    path = atomic_write_text(args.out or default_out, svg)
    print(f"wrote {path}")
    return 0


def _command_profile(args) -> int:
    try:
        store = RunStore(args.store, create=False)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    cells = load_store_telemetry(str(store.root))
    if not cells:
        print(f"no telemetry sidecars under {store.telemetry_dir} "
              "(sweep with telemetry on — the default — to produce them)",
              file=sys.stderr)
        return 1
    print(render_profile(cells, top=args.top), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "check":
        return run_check_command(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "fig3":
        run_fig3_panel(args.panel, methods=args.methods or None, seed=args.seed,
                       verbose=True)
        return 0
    if args.command == "fig4":
        run_fig4_panel(args.panel, seed=args.seed, num_novel_clients=args.novel,
                       verbose=True)
        return 0
    if args.command == "table1":
        rows = run_table1(seed=args.seed)
        print(format_ablation_table(rows))
        return 0
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "figures":
        return _command_figures(args)
    if args.command == "profile":
        return _command_profile(args)
    return 2  # unreachable given required=True


if __name__ == "__main__":
    sys.exit(main())
