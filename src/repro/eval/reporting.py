"""Text rendering of experiment outcomes: the rows/series the paper plots."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .harness import ExperimentOutcome
from .metrics import FairnessReport

__all__ = ["format_comparison_table", "format_report_table", "format_ablation_table",
           "format_series_csv", "format_across_seeds_table"]


def format_report_table(reports: Dict[str, FairnessReport], title: str) -> str:
    """The comparison-table body over bare fairness reports.

    This is the store-friendly core of :func:`format_comparison_table`:
    ``repro report`` rebuilds ``reports`` from persisted run records and
    must produce bytes identical to a live run, so both paths share this
    renderer.
    """
    lines = [title,
             f"{'method':22s} {'mean':>8s} {'variance':>10s} {'std':>8s} "
             f"{'min':>8s} {'max':>8s}"]
    for name in sorted(reports, key=lambda m: -reports[m].mean):
        report = reports[name]
        lines.append(
            f"{name:22s} {report.mean:8.4f} {report.variance:10.5f} "
            f"{report.std:8.4f} {report.minimum:8.4f} {report.maximum:8.4f}"
        )
    return "\n".join(lines)


def format_comparison_table(outcome: ExperimentOutcome, novel: bool = False,
                            title: Optional[str] = None) -> str:
    """A Fig. 3/4-style table: method, mean accuracy, variance, extremes."""
    source = outcome.novel_reports if novel else outcome.reports
    header_title = title or (
        f"{outcome.spec.dataset} {outcome.spec.setting.label()}"
        + (" [novel clients]" if novel else "")
    )
    return format_report_table(source, header_title)


def _toggle_mark(flag: bool) -> str:
    """The 4-column on/off cell of the ablation table's L_n / L_p toggles."""
    return "  ✓ " if flag else "    "


def format_ablation_table(rows: Sequence[Dict], title: str = "Table I") -> str:
    """Table I layout: L_n / L_p toggles against accuracy mean ± std.

    Each row dict needs keys ``ln`` (bool), ``lp`` (bool) and per-variant
    ``{variant: (mean, std)}`` entries under ``results``.
    """
    if not rows:
        raise ValueError("no ablation rows")
    variants = sorted(rows[0]["results"])
    header = f"{'L_n':>4s} {'L_p':>4s}  " + "  ".join(f"{v:>24s}" for v in variants)
    lines = [title, header]
    for row in rows:
        cells = []
        for variant in variants:
            mean, std = row["results"][variant]
            cells.append(f"{100 * mean:10.2f} ± {100 * std:5.2f}".rjust(24))
        lines.append(f"{_toggle_mark(row['ln'])}{_toggle_mark(row['lp'])}  "
                     + "  ".join(cells))
    return "\n".join(lines)


def format_across_seeds_table(per_method: Dict[str, List[Tuple[float, float]]],
                              title: str) -> str:
    """Multi-seed aggregation: collapse seeds into mean ± std rows.

    ``per_method`` maps each method to its per-seed ``(mean_accuracy,
    accuracy_variance)`` pairs; the rendered row reports the across-seed
    mean ± std of both columns (the Cali3F-style presentation).  Stds are
    population stds (``ddof=0``), matching the paper's fairness variance
    convention, so a single seed renders ``± 0.0000`` rather than NaN.
    Methods sort by across-seed mean accuracy, best first.
    """
    if not per_method:
        raise ValueError("no methods to aggregate")
    lines = [title,
             f"{'method':22s} {'mean':>8s} {'±std':>8s} "
             f"{'variance':>10s} {'±std':>10s} {'seeds':>6s}"]
    aggregated = {
        name: (np.asarray([m for m, _ in pairs], dtype=np.float64),
               np.asarray([v for _, v in pairs], dtype=np.float64))
        for name, pairs in per_method.items()
    }
    for name in sorted(aggregated, key=lambda m: -float(aggregated[m][0].mean())):
        means, variances = aggregated[name]
        lines.append(
            f"{name:22s} {means.mean():8.4f} {means.std():8.4f} "
            f"{variances.mean():10.5f} {variances.std():10.5f} "
            f"{means.size:6d}"
        )
    return "\n".join(lines)


def format_series_csv(outcome: ExperimentOutcome, novel: bool = False) -> str:
    """CSV of (method, mean, variance) — the data behind one scatter panel."""
    rows = ["method,mean_accuracy,accuracy_variance"]
    for entry in outcome.series(novel=novel):
        rows.append(f"{entry['method']},{entry['mean']:.6f},{entry['variance']:.8f}")
    return "\n".join(rows)
