"""Rendering of experiment outcomes: the rows/series/figures the paper plots.

Text tables and CSV series for terminals, plus the SVG renderers behind
``repro figures`` — every renderer here is a pure function of its
inputs, so outputs rebuilt from the run store are byte-identical to live
runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..viz.svg import accuracy_fairness_panel, render_accuracy_fairness_panels
from .harness import ExperimentOutcome
from .metrics import FairnessReport

__all__ = ["format_comparison_table", "format_report_table", "format_ablation_table",
           "format_series_csv", "format_across_seeds_table", "render_series_svg",
           "format_silhouette_table", "format_silhouette_across_seeds"]


def format_report_table(reports: Dict[str, FairnessReport], title: str) -> str:
    """The comparison-table body over bare fairness reports.

    This is the store-friendly core of :func:`format_comparison_table`:
    ``repro report`` rebuilds ``reports`` from persisted run records and
    must produce bytes identical to a live run, so both paths share this
    renderer.
    """
    lines = [title,
             f"{'method':22s} {'mean':>8s} {'variance':>10s} {'std':>8s} "
             f"{'min':>8s} {'max':>8s}"]
    for name in sorted(reports, key=lambda m: -reports[m].mean):
        report = reports[name]
        lines.append(
            f"{name:22s} {report.mean:8.4f} {report.variance:10.5f} "
            f"{report.std:8.4f} {report.minimum:8.4f} {report.maximum:8.4f}"
        )
    return "\n".join(lines)


def format_comparison_table(outcome: ExperimentOutcome, novel: bool = False,
                            title: Optional[str] = None) -> str:
    """A Fig. 3/4-style table: method, mean accuracy, variance, extremes."""
    source = outcome.novel_reports if novel else outcome.reports
    header_title = title or (
        f"{outcome.spec.dataset} {outcome.spec.setting.label()}"
        + (" [novel clients]" if novel else "")
    )
    return format_report_table(source, header_title)


def _toggle_mark(flag: bool) -> str:
    """The 4-column on/off cell of the ablation table's L_n / L_p toggles."""
    return "  ✓ " if flag else "    "


def format_ablation_table(rows: Sequence[Dict], title: str = "Table I") -> str:
    """Table I layout: L_n / L_p toggles against accuracy mean ± std.

    Each row dict needs keys ``ln`` (bool), ``lp`` (bool) and per-variant
    ``{variant: (mean, std)}`` entries under ``results``.
    """
    if not rows:
        raise ValueError("no ablation rows")
    variants = sorted(rows[0]["results"])
    header = f"{'L_n':>4s} {'L_p':>4s}  " + "  ".join(f"{v:>24s}" for v in variants)
    lines = [title, header]
    for row in rows:
        cells = []
        for variant in variants:
            mean, std = row["results"][variant]
            cells.append(f"{100 * mean:10.2f} ± {100 * std:5.2f}".rjust(24))
        lines.append(f"{_toggle_mark(row['ln'])}{_toggle_mark(row['lp'])}  "
                     + "  ".join(cells))
    return "\n".join(lines)


def format_across_seeds_table(per_method: Dict[str, List[Tuple[float, float]]],
                              title: str) -> str:
    """Multi-seed aggregation: collapse seeds into mean ± std rows.

    ``per_method`` maps each method to its per-seed ``(mean_accuracy,
    accuracy_variance)`` pairs; the rendered row reports the across-seed
    mean ± std of both columns (the Cali3F-style presentation).  Stds are
    population stds (``ddof=0``), matching the paper's fairness variance
    convention, so a single seed renders ``± 0.0000`` rather than NaN.
    Methods sort by across-seed mean accuracy, best first.
    """
    if not per_method:
        raise ValueError("no methods to aggregate")
    lines = [title,
             f"{'method':22s} {'mean':>8s} {'±std':>8s} "
             f"{'variance':>10s} {'±std':>10s} {'seeds':>6s}"]
    aggregated = {
        name: (np.asarray([m for m, _ in pairs], dtype=np.float64),
               np.asarray([v for _, v in pairs], dtype=np.float64))
        for name, pairs in per_method.items()
    }
    for name in sorted(aggregated, key=lambda m: -float(aggregated[m][0].mean())):
        means, variances = aggregated[name]
        lines.append(
            f"{name:22s} {means.mean():8.4f} {means.std():8.4f} "
            f"{variances.mean():10.5f} {variances.std():10.5f} "
            f"{means.size:6d}"
        )
    return "\n".join(lines)


def format_series_csv(outcome: ExperimentOutcome, novel: bool = False) -> str:
    """CSV of (method, mean, variance) — the data behind one scatter panel."""
    rows = ["method,mean_accuracy,accuracy_variance"]
    for entry in outcome.series(novel=novel):
        rows.append(f"{entry['method']},{entry['mean']:.6f},{entry['variance']:.8f}")
    return "\n".join(rows)


def render_series_svg(outcome: ExperimentOutcome, title: Optional[str] = None,
                      include_novel: bool = True) -> str:
    """The Fig. 3/4 accuracy-fairness scatter as a standalone SVG.

    One labeled point per method (mean accuracy vs. accuracy variance;
    the paper's fair-and-accurate region is bottom-right).  When the
    outcome carries novel-client reports and ``include_novel`` is set, a
    second ``[novel clients]`` panel renders beside the first — the
    Fig. 4 layout.  Deterministic: the same outcome (live or rebuilt
    from store records) renders identical bytes.
    """
    panels = [accuracy_fairness_panel(outcome.series(), title="training clients")]
    if include_novel and outcome.novel_reports:
        panels.append(accuracy_fairness_panel(outcome.series(novel=True),
                                              title="novel clients"))
    header = title if title is not None else (
        f"{outcome.spec.dataset} {outcome.spec.setting.label()}")
    return render_accuracy_fairness_panels(panels, title=header)


def format_silhouette_table(results: Sequence, title: str) -> str:
    """Silhouette scores of one embedding figure, one row per method.

    ``results`` are :class:`~repro.experiments.EmbeddingResult`-shaped
    objects (``method``/``silhouette``/``feature_silhouette``/
    ``per_client_silhouette`` attributes).  Rows keep the figure's method
    order — the paper's claims are about *pairs* (calibrated vs. not), so
    no resorting by score.
    """
    results = list(results)
    if not results:
        raise ValueError("no embedding results to tabulate")
    lines = [title,
             f"{'method':22s} {'tsne_sil':>9s} {'feat_sil':>9s} "
             f"{'clients':>8s} {'points':>7s}"]
    for result in results:
        lines.append(
            f"{result.method:22s} {result.silhouette:+9.4f} "
            f"{result.feature_silhouette:+9.4f} "
            f"{len(result.per_client_silhouette):8d} "
            f"{len(result.labels):7d}"
        )
    return "\n".join(lines)


def format_silhouette_across_seeds(
    per_method: Dict[str, List[Tuple[float, float]]], title: str
) -> str:
    """Embedding silhouettes collapsed across seeds: mean ± std rows.

    ``per_method`` maps each method to per-seed ``(tsne_silhouette,
    feature_silhouette)`` pairs.  Stds are population stds (``ddof=0``),
    matching :func:`format_across_seeds_table`; method order is the
    figure's method order (insertion order of ``per_method``).
    """
    if not per_method:
        raise ValueError("no methods to aggregate")
    lines = [title,
             f"{'method':22s} {'tsne_sil':>9s} {'±std':>8s} "
             f"{'feat_sil':>9s} {'±std':>8s} {'seeds':>6s}"]
    for name, pairs in per_method.items():
        tsne = np.asarray([t for t, _ in pairs], dtype=np.float64)
        feat = np.asarray([f for _, f in pairs], dtype=np.float64)
        lines.append(
            f"{name:22s} {tsne.mean():+9.4f} {tsne.std():8.4f} "
            f"{feat.mean():+9.4f} {feat.std():8.4f} {tsne.size:6d}"
        )
    return "\n".join(lines)
