"""``repro.eval`` — fairness metrics, the method registry, and the harness."""

from .harness import (
    EncoderSpec,
    ExperimentOutcome,
    ExperimentSpec,
    NonIIDSetting,
    checkpoint_path_for,
    make_dataset,
    make_encoder_factory,
    make_partitions,
    run_experiment,
)
from .metrics import FairnessReport, accuracy_variance, fairness_report, mean_accuracy
from .registry import (
    METHOD_BUILDERS,
    available_methods,
    build_method,
    valid_overrides,
)
from .reporting import (
    format_ablation_table,
    format_across_seeds_table,
    format_comparison_table,
    format_report_table,
    format_series_csv,
    format_silhouette_across_seeds,
    format_silhouette_table,
    render_series_svg,
)

__all__ = [
    "NonIIDSetting",
    "ExperimentSpec",
    "ExperimentOutcome",
    "run_experiment",
    "make_dataset",
    "make_encoder_factory",
    "EncoderSpec",
    "make_partitions",
    "FairnessReport",
    "fairness_report",
    "mean_accuracy",
    "accuracy_variance",
    "METHOD_BUILDERS",
    "available_methods",
    "build_method",
    "valid_overrides",
    "checkpoint_path_for",
    "format_comparison_table",
    "format_report_table",
    "format_ablation_table",
    "format_across_seeds_table",
    "format_series_csv",
    "render_series_svg",
    "format_silhouette_table",
    "format_silhouette_across_seeds",
]
