"""Fairness and performance metrics over per-client accuracy vectors.

The paper reports mean accuracy (overall performance) and the variance of
client accuracies (model fairness, §III-A: "fairness is defined as the case
if ... clients can generate personalized models with similar performance").
Additional distributional metrics (worst-decile accuracy, fairness gap) are
provided for the extended analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["FairnessReport", "fairness_report", "mean_accuracy", "accuracy_variance"]


def _as_vector(accuracies: Sequence[float]) -> np.ndarray:
    vector = np.asarray(list(accuracies), dtype=np.float64)
    if vector.size == 0:
        raise ValueError("empty accuracy vector")
    if np.any((vector < 0) | (vector > 1)):
        raise ValueError("accuracies must lie in [0, 1]")
    return vector


def mean_accuracy(accuracies: Sequence[float]) -> float:
    return float(_as_vector(accuracies).mean())


def accuracy_variance(accuracies: Sequence[float]) -> float:
    """Population variance — the paper's fairness measure (lower = fairer)."""
    return float(_as_vector(accuracies).var())


@dataclass
class FairnessReport:
    """Summary statistics of one method's per-client accuracies."""

    mean: float
    variance: float
    std: float
    minimum: float
    maximum: float
    fairness_gap: float  # max - min
    worst_decile_mean: float  # mean of the lowest 10% of clients
    num_clients: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "variance": self.variance,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "fairness_gap": self.fairness_gap,
            "worst_decile_mean": self.worst_decile_mean,
            "num_clients": self.num_clients,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "FairnessReport":
        """Inverse of :meth:`as_dict` (run-store records round-trip through it)."""
        return cls(
            mean=float(payload["mean"]),
            variance=float(payload["variance"]),
            std=float(payload["std"]),
            minimum=float(payload["min"]),
            maximum=float(payload["max"]),
            fairness_gap=float(payload["fairness_gap"]),
            worst_decile_mean=float(payload["worst_decile_mean"]),
            num_clients=int(payload["num_clients"]),
        )


def fairness_report(accuracies: Sequence[float]) -> FairnessReport:
    vector = _as_vector(accuracies)
    sorted_acc = np.sort(vector)
    decile = max(1, int(np.ceil(vector.size * 0.1)))
    # Pairwise summation can put the mean an ulp outside [min, max] (e.g.
    # three identical accuracies); clamp so min <= mean <= max holds exactly.
    mean = min(max(float(vector.mean()), float(vector.min())), float(vector.max()))
    return FairnessReport(
        mean=mean,
        variance=float(vector.var()),
        std=float(vector.std()),
        minimum=float(vector.min()),
        maximum=float(vector.max()),
        fairness_gap=float(vector.max() - vector.min()),
        worst_decile_mean=float(sorted_acc[:decile].mean()),
        num_clients=int(vector.size),
    )
