"""Method registry: every row of the paper's comparison plots by name.

``build_method(name, ...)`` constructs any algorithm the paper evaluates,
so experiment harnesses and benchmarks select methods with plain strings:

* supervised FL: ``fedavg``, ``fedavg-ft``, ``scaffold``, ``scaffold-ft``,
  ``lg-fedavg``, ``fedper``, ``fedrep``, ``fedbabu``, ``perfedavg``,
  ``apfl``, ``ditto``;
* self-supervised pFL: ``pfl-simclr``, ``pfl-byol``, ``pfl-simsiam``,
  ``pfl-mocov2``, ``pfl-swav``, ``pfl-smog``, ``fedema``;
* the paper's contribution: ``calibre-simclr``, ``calibre-byol``,
  ``calibre-simsiam``, ``calibre-mocov2``, ``calibre-swav``,
  ``calibre-smog``;
* local controls: ``script-fair``, ``script-convergent``.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, FrozenSet, List

from ..baselines import (
    APFL,
    Ditto,
    FedBABU,
    FedEMA,
    FedPer,
    FedRep,
    LGFedAvg,
    PerFedAvg,
    PFLSSL,
    Scaffold,
    ScriptLocal,
    SupervisedFL,
)
from ..core import Calibre
from ..fl.algorithm import FederatedAlgorithm
from ..fl.config import FederatedConfig, suggest_unknown_keys

__all__ = ["METHOD_BUILDERS", "available_methods", "build_method",
           "valid_overrides"]

_SSL_VARIANTS = ("simclr", "byol", "simsiam", "mocov2", "swav", "smog")


def _supervised(ctor, **fixed):
    # ``fixed`` values are defaults here, not reservations: the builder
    # merges overrides *over* them, so they stay user-overridable.
    def build(config, num_classes, encoder_factory, **overrides):
        return ctor(config, num_classes, encoder_factory, **{**fixed, **overrides})

    build.algorithm_class = ctor
    build.fixed_overrides = frozenset()
    return build


def _script(convergent: bool):
    def build(config, num_classes, encoder_factory, **overrides):
        return ScriptLocal(config, num_classes, convergent=convergent, **overrides)

    build.algorithm_class = ScriptLocal
    build.fixed_overrides = frozenset({"convergent"})
    return build


def _pfl_ssl(ssl_name: str):
    def build(config, num_classes, encoder_factory, **overrides):
        return PFLSSL(config, num_classes, encoder_factory, ssl_name=ssl_name,
                      **overrides)

    build.algorithm_class = PFLSSL
    build.fixed_overrides = frozenset({"ssl_name"})
    return build


def _calibre(ssl_name: str):
    def build(config, num_classes, encoder_factory, **overrides):
        return Calibre(config, num_classes, encoder_factory, ssl_name=ssl_name,
                       **overrides)

    build.algorithm_class = Calibre
    build.fixed_overrides = frozenset({"ssl_name"})
    return build


METHOD_BUILDERS: Dict[str, Callable[..., FederatedAlgorithm]] = {
    "fedavg": _supervised(SupervisedFL, fine_tune_head=False),
    "fedavg-ft": _supervised(SupervisedFL, fine_tune_head=True),
    "scaffold": _supervised(Scaffold, fine_tune_head=False),
    "scaffold-ft": _supervised(Scaffold, fine_tune_head=True),
    "lg-fedavg": _supervised(LGFedAvg),
    "fedper": _supervised(FedPer),
    "fedrep": _supervised(FedRep),
    "fedbabu": _supervised(FedBABU),
    "perfedavg": _supervised(PerFedAvg),
    "apfl": _supervised(APFL),
    "ditto": _supervised(Ditto),
    "fedema": _supervised(FedEMA),
    "script-fair": _script(convergent=False),
    "script-convergent": _script(convergent=True),
}
for _variant in _SSL_VARIANTS:
    METHOD_BUILDERS[f"pfl-{_variant}"] = _pfl_ssl(_variant)
    METHOD_BUILDERS[f"calibre-{_variant}"] = _calibre(_variant)


def available_methods() -> List[str]:
    return sorted(METHOD_BUILDERS)


# Constructor parameters that the builder itself supplies — never valid as
# user overrides.
_RESERVED_PARAMS = frozenset({"self", "config", "num_classes", "encoder_factory"})


def _init_keyword_names(cls) -> FrozenSet[str]:
    """All keyword names accepted along ``cls``'s ``__init__`` MRO chain.

    Walks base classes only while the current ``__init__`` forwards
    ``**kwargs`` upward (e.g. ``Calibre`` → ``PFLSSL``), so the result is
    exactly what a keyword argument can reach.
    """
    names = set()
    for klass in cls.__mro__:
        init = klass.__dict__.get("__init__")
        if init is None:
            continue
        parameters = inspect.signature(init).parameters.values()
        names.update(
            parameter.name for parameter in parameters
            if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                  inspect.Parameter.KEYWORD_ONLY)
            and parameter.name not in _RESERVED_PARAMS
        )
        if not any(parameter.kind is inspect.Parameter.VAR_KEYWORD
                   for parameter in parameters):
            break
    return frozenset(names)


def valid_overrides(name: str) -> FrozenSet[str]:
    """The override keywords ``build_method(name, ...)`` accepts.

    Constructor parameters the builder itself pins (``ssl_name`` for the
    pfl-*/calibre-* registrations, ``convergent`` for the script
    controls) are excluded: the registry *name* selects them, so passing
    one would otherwise die as a duplicate-keyword ``TypeError`` deep in
    the constructor.
    """
    key = name.lower()
    if key not in METHOD_BUILDERS:
        raise KeyError(f"unknown method '{name}'; available: {available_methods()}")
    builder = METHOD_BUILDERS[key]
    return _init_keyword_names(builder.algorithm_class) - builder.fixed_overrides


def build_method(
    name: str,
    config: FederatedConfig,
    num_classes: int,
    encoder_factory,
    **overrides,
) -> FederatedAlgorithm:
    """Construct a registered algorithm by name.

    Unknown override keywords are rejected up front with a did-you-mean
    hint (the valid set is derived from the algorithm's ``__init__``
    chain), instead of surfacing as a ``TypeError`` from deep inside the
    constructor — or worse, silently changing nothing.
    """
    key = name.lower()
    if key not in METHOD_BUILDERS:
        raise KeyError(f"unknown method '{name}'; available: {available_methods()}")
    if overrides:
        valid = valid_overrides(key)
        unknown = set(overrides) - valid
        if unknown:
            raise TypeError(
                suggest_unknown_keys(unknown, valid,
                                     f"override(s) for method '{name}'"))
    return METHOD_BUILDERS[key](config, num_classes, encoder_factory, **overrides)
