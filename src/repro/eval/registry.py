"""Method registry: every row of the paper's comparison plots by name.

``build_method(name, ...)`` constructs any algorithm the paper evaluates,
so experiment harnesses and benchmarks select methods with plain strings:

* supervised FL: ``fedavg``, ``fedavg-ft``, ``scaffold``, ``scaffold-ft``,
  ``lg-fedavg``, ``fedper``, ``fedrep``, ``fedbabu``, ``perfedavg``,
  ``apfl``, ``ditto``;
* self-supervised pFL: ``pfl-simclr``, ``pfl-byol``, ``pfl-simsiam``,
  ``pfl-mocov2``, ``pfl-swav``, ``pfl-smog``, ``fedema``;
* the paper's contribution: ``calibre-simclr``, ``calibre-byol``,
  ``calibre-simsiam``, ``calibre-mocov2``, ``calibre-swav``,
  ``calibre-smog``;
* local controls: ``script-fair``, ``script-convergent``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..baselines import (
    APFL,
    Ditto,
    FedBABU,
    FedEMA,
    FedPer,
    FedRep,
    LGFedAvg,
    PerFedAvg,
    PFLSSL,
    Scaffold,
    ScriptLocal,
    SupervisedFL,
)
from ..core import Calibre
from ..fl.algorithm import FederatedAlgorithm
from ..fl.config import FederatedConfig

__all__ = ["METHOD_BUILDERS", "available_methods", "build_method"]

_SSL_VARIANTS = ("simclr", "byol", "simsiam", "mocov2", "swav", "smog")


def _supervised(ctor, **fixed):
    def build(config, num_classes, encoder_factory, **overrides):
        return ctor(config, num_classes, encoder_factory, **{**fixed, **overrides})

    return build


def _script(convergent: bool):
    def build(config, num_classes, encoder_factory, **overrides):
        return ScriptLocal(config, num_classes, convergent=convergent, **overrides)

    return build


def _pfl_ssl(ssl_name: str):
    def build(config, num_classes, encoder_factory, **overrides):
        return PFLSSL(config, num_classes, encoder_factory, ssl_name=ssl_name,
                      **overrides)

    return build


def _calibre(ssl_name: str):
    def build(config, num_classes, encoder_factory, **overrides):
        return Calibre(config, num_classes, encoder_factory, ssl_name=ssl_name,
                       **overrides)

    return build


METHOD_BUILDERS: Dict[str, Callable[..., FederatedAlgorithm]] = {
    "fedavg": _supervised(SupervisedFL, fine_tune_head=False),
    "fedavg-ft": _supervised(SupervisedFL, fine_tune_head=True),
    "scaffold": _supervised(Scaffold, fine_tune_head=False),
    "scaffold-ft": _supervised(Scaffold, fine_tune_head=True),
    "lg-fedavg": _supervised(LGFedAvg),
    "fedper": _supervised(FedPer),
    "fedrep": _supervised(FedRep),
    "fedbabu": _supervised(FedBABU),
    "perfedavg": _supervised(PerFedAvg),
    "apfl": _supervised(APFL),
    "ditto": _supervised(Ditto),
    "fedema": _supervised(FedEMA),
    "script-fair": _script(convergent=False),
    "script-convergent": _script(convergent=True),
}
for _variant in _SSL_VARIANTS:
    METHOD_BUILDERS[f"pfl-{_variant}"] = _pfl_ssl(_variant)
    METHOD_BUILDERS[f"calibre-{_variant}"] = _calibre(_variant)


def available_methods() -> List[str]:
    return sorted(METHOD_BUILDERS)


def build_method(
    name: str,
    config: FederatedConfig,
    num_classes: int,
    encoder_factory,
    **overrides,
) -> FederatedAlgorithm:
    """Construct a registered algorithm by name."""
    key = name.lower()
    if key not in METHOD_BUILDERS:
        raise KeyError(f"unknown method '{name}'; available: {available_methods()}")
    return METHOD_BUILDERS[key](config, num_classes, encoder_factory, **overrides)
