"""End-to-end experiment harness.

An :class:`ExperimentSpec` captures one panel of the paper's evaluation —
dataset, non-i.i.d. setting, federated configuration, and a method list —
and :func:`run_experiment` executes every method on *identical partitions*
(fresh client objects per method, so per-client algorithm state never
leaks between methods) and returns comparable summaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..data.partition import partition_dirichlet, partition_quantity_label
from ..data.synthetic import (
    SyntheticImageDataset,
    make_cifar10_like,
    make_cifar100_like,
    make_stl10_like,
)
from ..fl.client import build_federation, build_novel_clients
from ..fl.config import FederatedConfig
from ..fl.history import RunResult
from ..fl.session import RoundCheckpointer, TrainingSession
from ..ioutil import safe_filename
from ..nn import MLPEncoder, SmallConvEncoder, resnet9, resnet18
from .metrics import FairnessReport, fairness_report
from .registry import build_method

__all__ = ["NonIIDSetting", "ExperimentSpec", "ExperimentOutcome", "run_experiment",
           "make_dataset", "make_encoder_factory", "make_partitions", "EncoderSpec",
           "checkpoint_path_for", "spec_context"]

DATASET_FACTORIES = {
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "stl10": make_stl10_like,
}

ENCODER_KINDS = ("mlp", "smallconv", "resnet9", "resnet18")


@dataclass(frozen=True)
class NonIIDSetting:
    """The paper's ``(S, #samples)`` / ``(0.3, #samples)`` notation.

    ``kind`` is "quantity" (Q-non-i.i.d.) or "dirichlet" (D-non-i.i.d.);
    ``parameter`` is S (classes per client) or the Dirichlet concentration.
    """

    kind: str
    parameter: float
    samples_per_client: int

    def __post_init__(self):
        if self.kind not in ("quantity", "dirichlet", "iid"):
            raise ValueError(f"unknown non-iid kind '{self.kind}'")
        if self.samples_per_client < 4:
            raise ValueError("samples_per_client must be >= 4")

    def label(self) -> str:
        if self.kind == "quantity":
            return f"({int(self.parameter)}, {self.samples_per_client})"
        if self.kind == "dirichlet":
            return f"({self.parameter}, {self.samples_per_client})"
        return f"(iid, {self.samples_per_client})"


def make_partitions(labels: np.ndarray, num_clients: int, setting: NonIIDSetting,
                    rng: np.random.Generator) -> List[np.ndarray]:
    if setting.kind == "quantity":
        return partition_quantity_label(
            labels, num_clients, int(setting.parameter),
            samples_per_client=setting.samples_per_client, rng=rng,
        )
    if setting.kind == "dirichlet":
        return partition_dirichlet(
            labels, num_clients, setting.parameter,
            samples_per_client=setting.samples_per_client, rng=rng,
        )
    from ..data.partition import partition_iid

    return partition_iid(labels, num_clients, rng,
                         samples_per_client=setting.samples_per_client)


def make_dataset(name: str, seed: int = 0, **kwargs) -> SyntheticImageDataset:
    key = name.lower()
    if key not in DATASET_FACTORIES:
        raise KeyError(f"unknown dataset '{name}'; available: {sorted(DATASET_FACTORIES)}")
    return DATASET_FACTORIES[key](seed=seed, **kwargs)


@dataclass(frozen=True)
class EncoderSpec:
    """Picklable zero-argument encoder constructor for a chosen backbone.

    Satisfies the :data:`repro.ssl.EncoderFactory` callable protocol.
    Algorithms hold their encoder factory, and the process execution
    backend ships algorithms to workers by pickle — so the factory is a
    plain dataclass rather than a closure.  Each call reseeds its own
    generator so all model replicas (online/target/key networks) start
    from identical weights.
    """

    kind: str
    channels: int
    image_size: int
    width: int = 8
    hidden_dims: Sequence[int] = (64, 32)
    seed: int = 42

    def __post_init__(self):
        if self.kind not in ENCODER_KINDS:
            raise KeyError(f"unknown encoder '{self.kind}'; available: {ENCODER_KINDS}")

    def __call__(self):
        rng = np.random.default_rng(self.seed)
        if self.kind == "mlp":
            input_dim = self.channels * self.image_size * self.image_size
            return MLPEncoder(input_dim, hidden_dims=tuple(self.hidden_dims), rng=rng)
        if self.kind == "smallconv":
            return SmallConvEncoder(in_channels=self.channels, width=self.width, rng=rng)
        if self.kind == "resnet9":
            return resnet9(width=self.width, in_channels=self.channels, rng=rng)
        return resnet18(width=self.width, in_channels=self.channels, rng=rng)


def make_encoder_factory(kind: str, dataset: SyntheticImageDataset,
                         width: int = 8, hidden_dims=(64, 32), seed: int = 42
                         ) -> EncoderSpec:
    """Build a picklable encoder factory for the chosen backbone."""
    return EncoderSpec(
        kind=kind.lower(),
        channels=dataset.channels,
        image_size=dataset.image_size,
        width=width,
        hidden_dims=tuple(hidden_dims),
        seed=seed,
    )


@dataclass
class ExperimentSpec:
    """One comparison panel: dataset + setting + config + methods."""

    dataset: str
    setting: NonIIDSetting
    config: FederatedConfig
    methods: Sequence[str]
    encoder: str = "mlp"
    encoder_width: int = 8
    encoder_hidden_dims: Sequence[int] = (64, 32)
    dataset_kwargs: Dict = field(default_factory=dict)
    method_overrides: Dict[str, Dict] = field(default_factory=dict)
    seed: int = 0
    name: str = ""


@dataclass
class ExperimentOutcome:
    """All methods' results for one spec."""

    spec: ExperimentSpec
    results: Dict[str, RunResult]
    reports: Dict[str, FairnessReport]
    novel_reports: Dict[str, FairnessReport] = field(default_factory=dict)

    def series(self, novel: bool = False) -> List[Dict]:
        """Rows of (method, mean, variance) — the paper's scatter series."""
        source = self.novel_reports if novel else self.reports
        return [
            {"method": name, "mean": report.mean, "variance": report.variance}
            for name, report in source.items()
        ]


def checkpoint_path_for(checkpoint_dir: Union[str, Path], method: str) -> Path:
    """Where ``run_experiment`` checkpoints ``method`` under ``checkpoint_dir``."""
    return Path(checkpoint_dir) / f"{safe_filename(method)}.json"


def spec_context(spec: ExperimentSpec, method_name: str) -> str:
    """The session-context fingerprint for one method of a spec.

    Everything that determines the method's result goes in (the same
    philosophy as a :class:`~repro.runs.spec.RunKey` fingerprint, minus
    the execution knobs), so ``--resume`` against a checkpoint from a
    different dataset/setting/config/override grid fails loudly in
    ``TrainingSession.restore_state`` instead of silently reporting the
    stale run.
    """
    import hashlib
    import json

    config = {name: value for name, value in asdict(spec.config).items()
              if name not in ("backend", "workers", "shared_memory",
                              "client_batch")}
    payload = {
        "dataset": spec.dataset,
        "setting": [spec.setting.kind, float(spec.setting.parameter),
                    int(spec.setting.samples_per_client)],
        "config": config,
        "method": method_name,
        "overrides": spec.method_overrides.get(method_name, {}),
        "encoder": [spec.encoder, int(spec.encoder_width),
                    [int(dim) for dim in spec.encoder_hidden_dims]],
        "dataset_kwargs": spec.dataset_kwargs,
        "seed": int(spec.seed),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode()).hexdigest()
    return digest[:16]


def run_experiment(spec: ExperimentSpec, verbose: bool = False,
                   backend: Optional[str] = None,
                   workers: Optional[int] = None,
                   client_batch: Optional[int] = None,
                   checkpoint_dir: Union[str, Path, None] = None,
                   resume: bool = False,
                   checkpoint_every: int = 1,
                   session_hook: Optional[Callable[[str, TrainingSession], None]]
                   = None) -> ExperimentOutcome:
    """Run every method of ``spec`` on identical data partitions.

    ``backend``/``workers`` override the spec's execution engine (see
    :mod:`repro.fl.execution`); results are identical across backends, only
    wall-clock time changes.

    ``checkpoint_dir`` enables round-level checkpointing: each method's
    :class:`~repro.fl.session.TrainingSession` writes its serialized
    :class:`~repro.fl.session.ServerState` to
    ``<checkpoint_dir>/<method>.json`` (atomically) every
    ``checkpoint_every`` completed rounds.  With ``resume=True`` an
    existing checkpoint is loaded first, so a killed run recomputes only
    the remaining rounds — and, because resume is bitwise exact, returns
    the same outcome the uninterrupted run would have.  ``session_hook``
    receives ``(method_name, session)`` right before training starts —
    the seam for attaching custom callbacks (eval cadence, early
    stopping, history streaming).
    """
    if backend is not None or workers is not None or client_batch is not None:
        spec = replace(spec, config=spec.config.with_overrides(
            **({"backend": backend} if backend is not None else {}),
            **({"workers": workers} if workers is not None else {}),
            **({"client_batch": client_batch} if client_batch is not None
               else {}),
        ))
    dataset = make_dataset(spec.dataset, seed=spec.seed, **spec.dataset_kwargs)
    partition_rng = np.random.default_rng(spec.seed + 1)
    partitions = make_partitions(
        dataset.train.labels, spec.config.num_clients, spec.setting, partition_rng
    )
    encoder_factory = make_encoder_factory(
        spec.encoder, dataset, width=spec.encoder_width,
        hidden_dims=tuple(spec.encoder_hidden_dims), seed=spec.seed + 42,
    )

    def novel_partition_fn(labels, num_clients, rng):
        novel_setting = replace(
            spec.setting,
            samples_per_client=min(
                spec.setting.samples_per_client, max(labels.shape[0] // num_clients, 4)
            ),
        )
        return make_partitions(labels, num_clients, novel_setting, rng)

    results: Dict[str, RunResult] = {}
    reports: Dict[str, FairnessReport] = {}
    novel_reports: Dict[str, FairnessReport] = {}
    for method_name in spec.methods:
        # Fresh clients per method: identical data, clean per-client stores.
        clients = build_federation(dataset, partitions,
                                   test_fraction=spec.config.test_fraction,
                                   seed=spec.seed + 2)
        novel_clients = build_novel_clients(
            dataset, spec.config.num_novel_clients, novel_partition_fn,
            test_fraction=spec.config.test_fraction, seed=spec.seed + 3,
        )
        algorithm = build_method(
            method_name, spec.config, dataset.num_classes, encoder_factory,
            **spec.method_overrides.get(method_name, {}),
        )
        session = TrainingSession(algorithm, clients, spec.config,
                                  novel_clients=novel_clients, verbose=verbose,
                                  context=spec_context(spec, method_name))
        if checkpoint_dir is not None:
            path = checkpoint_path_for(checkpoint_dir, method_name)
            if resume and path.is_file():
                session.load_checkpoint(path)
                if verbose and session.round_index > 0:
                    print(f"  [resume] {method_name} at round "
                          f"{session.round_index}/{spec.config.rounds}")
            session.add_callback(RoundCheckpointer(path, every=checkpoint_every))
        if session_hook is not None:
            session_hook(method_name, session)
        result = session.execute()
        results[method_name] = result
        reports[method_name] = fairness_report(result.accuracy_vector())
        if result.novel_accuracies:
            novel_reports[method_name] = fairness_report(
                result.accuracy_vector(novel=True)
            )
        if verbose:
            report = reports[method_name]
            print(f"  {method_name:20s} mean={report.mean:.4f} var={report.variance:.5f}")
    return ExperimentOutcome(spec=spec, results=results, reports=reports,
                             novel_reports=novel_reports)
