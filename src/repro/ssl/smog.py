"""SMoG (Pang et al., ECCV 2022): synchronous momentum grouping.

Samples are assigned to a bank of group centers; the other view must
predict the assigned group contrastively, and group centers are updated
synchronously by momentum from the features assigned to them.  Like SwAV,
SMoG carries its own prototype machinery, which the paper's Table I shows
conflicting with Calibre's L_n.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import EncoderFactory, SSLMethod, SSLOutputs

__all__ = ["SMoG"]


class SMoG(SSLMethod):
    name = "smog"

    def __init__(
        self,
        encoder_factory: EncoderFactory,
        projection_dim: int = 32,
        hidden_dim: int = 64,
        num_groups: int = 16,
        temperature: float = 0.1,
        group_momentum: float = 0.9,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder_factory, projection_dim, hidden_dim, rng=rng)
        if num_groups < 2:
            raise ValueError("need at least two groups")
        if not 0.0 <= group_momentum < 1.0:
            raise ValueError("group_momentum must be in [0, 1)")
        self.temperature = temperature
        self.group_momentum = group_momentum
        self.num_groups = num_groups
        # repro: allow[DET001] -- unseeded convenience fallback; federated paths always pass rng
        generator = rng if rng is not None else np.random.default_rng()
        groups = generator.standard_normal((num_groups, projection_dim))
        self.groups = groups / np.linalg.norm(groups, axis=1, keepdims=True)
        self._pending_features: Optional[np.ndarray] = None
        self._pending_assignments: Optional[np.ndarray] = None

    def _group_logits(self, h: Tensor) -> Tensor:
        normalized = F.normalize(h, axis=1)
        groups = Tensor(self.groups.astype(h.data.dtype))
        return (normalized @ groups.transpose()) / self.temperature

    def compute(self, view_e: np.ndarray, view_o: np.ndarray) -> SSLOutputs:
        from ..nn.losses import cross_entropy

        z_e, z_o, h_e, h_o = self._forward_views(view_e, view_o)
        logits_e = self._group_logits(h_e)
        logits_o = self._group_logits(h_o)
        assignments_e = logits_e.data.argmax(axis=1)
        assignments_o = logits_o.data.argmax(axis=1)
        # Swapped group prediction: each view predicts the other's assignment.
        loss = 0.5 * (
            cross_entropy(logits_e, assignments_o) + cross_entropy(logits_o, assignments_e)
        )
        features = h_e.data / np.maximum(
            np.linalg.norm(h_e.data, axis=1, keepdims=True), 1e-12
        )
        self._pending_features = features
        self._pending_assignments = assignments_e
        return SSLOutputs(z_e=z_e, z_o=z_o, h_e=h_e, h_o=h_o, loss=loss)

    def post_step(self) -> None:
        """Synchronous momentum update of the assigned group centers."""
        if self._pending_features is None:
            return
        for group_id in np.unique(self._pending_assignments):
            members = self._pending_features[self._pending_assignments == group_id]
            update = members.mean(axis=0)
            blended = (
                self.group_momentum * self.groups[group_id]
                + (1.0 - self.group_momentum) * update
            )
            self.groups[group_id] = blended / max(np.linalg.norm(blended), 1e-12)
        self._pending_features = None
        self._pending_assignments = None

    def extra_state(self):
        return {"groups": self.groups.copy()}

    def load_extra_state(self, state) -> None:
        self.groups[...] = state["groups"]
