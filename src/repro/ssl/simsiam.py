"""SimSiam (Chen & He, 2021): siamese representation learning without
negatives, relying on a predictor head and stop-gradient."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import EncoderFactory, SSLMethod, SSLOutputs
from .heads import PredictionMLP
from .losses import negative_cosine_similarity

__all__ = ["SimSiam"]


class SimSiam(SSLMethod):
    name = "simsiam"
    # Encoder/projector/predictor MLPs + stop-gradient cosine loss are all
    # traceable primitives; no post_step or extra state.
    supports_client_batching = True

    def __init__(
        self,
        encoder_factory: EncoderFactory,
        projection_dim: int = 32,
        hidden_dim: int = 64,
        predictor_hidden_dim: int = 16,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder_factory, projection_dim, hidden_dim, rng=rng)
        self.predictor = PredictionMLP(projection_dim, predictor_hidden_dim,
                                       projection_dim, rng=rng)

    def compute(self, view_e: np.ndarray, view_o: np.ndarray) -> SSLOutputs:
        z_e, z_o, h_e, h_o = self._forward_views(view_e, view_o)
        p_e = self.predictor(h_e)
        p_o = self.predictor(h_o)
        loss = 0.5 * (
            negative_cosine_similarity(p_e, h_o)
            + negative_cosine_similarity(p_o, h_e)
        )
        return SSLOutputs(z_e=z_e, z_o=z_o, h_e=h_e, h_o=h_o, loss=loss)
