"""SimCLR (Chen et al., 2020): contrastive learning with NT-Xent.

The paper's strongest variant, Calibre (SimCLR), builds on this method; the
NT-Xent objective "simultaneously measures the inter- and intra-relations of
positive and negative samples" (§V-E), which is why it cooperates best with
the prototype regularizers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import EncoderFactory, SSLMethod, SSLOutputs
from .losses import nt_xent

__all__ = ["SimCLR"]


class SimCLR(SSLMethod):
    name = "simclr"
    # Pure encoder/projector forward + NT-Xent: fully traceable, no
    # post_step or extra state, so homogeneous cohorts can vectorize it.
    supports_client_batching = True

    def __init__(
        self,
        encoder_factory: EncoderFactory,
        projection_dim: int = 32,
        hidden_dim: int = 64,
        temperature: float = 0.5,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder_factory, projection_dim, hidden_dim, rng=rng)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def compute(self, view_e: np.ndarray, view_o: np.ndarray) -> SSLOutputs:
        z_e, z_o, h_e, h_o = self._forward_views(view_e, view_o)
        loss = nt_xent(h_e, h_o, self.temperature)
        return SSLOutputs(z_e=z_e, z_o=z_o, h_e=h_e, h_o=h_o, loss=loss)
