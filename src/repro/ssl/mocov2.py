"""MoCo v2 (He et al., 2020; Chen et al., 2020): momentum contrast with a
negative-key queue.

A query network (encoder + projector, the FL global model) is contrasted
against keys produced by a momentum network; past keys persist in a local
FIFO queue of negatives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.tensor import Tensor, no_grad
from .base import EncoderFactory, SSLMethod, SSLOutputs
from .ema import EMAUpdater
from .heads import ProjectionMLP
from .losses import info_nce_with_queue

__all__ = ["MoCoV2"]


class MoCoV2(SSLMethod):
    name = "mocov2"

    def __init__(
        self,
        encoder_factory: EncoderFactory,
        projection_dim: int = 32,
        hidden_dim: int = 64,
        queue_size: int = 256,
        temperature: float = 0.2,
        key_decay: float = 0.99,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(encoder_factory, projection_dim, hidden_dim, rng=rng)
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.temperature = temperature
        self.queue_size = queue_size
        self.key_encoder = encoder_factory()
        self.key_projector = ProjectionMLP(self.feature_dim, hidden_dim,
                                           projection_dim, rng=rng)
        self._encoder_ema = EMAUpdater(self.encoder, self.key_encoder, key_decay)
        self._projector_ema = EMAUpdater(self.projector, self.key_projector, key_decay)

        # repro: allow[DET001] -- unseeded convenience fallback; federated paths always pass rng
        generator = rng if rng is not None else np.random.default_rng()
        queue = generator.standard_normal((queue_size, projection_dim))
        self.queue = queue / np.linalg.norm(queue, axis=1, keepdims=True)
        self._queue_cursor = 0
        self._pending_keys: Optional[np.ndarray] = None

    def compute(self, view_e: np.ndarray, view_o: np.ndarray) -> SSLOutputs:
        z_e, z_o, h_e, h_o = self._forward_views(view_e, view_o)
        with no_grad():
            self.key_encoder.eval()
            self.key_projector.eval()
            key_e = self.key_projector(self.key_encoder(Tensor(view_e)))
            key_o = self.key_projector(self.key_encoder(Tensor(view_o)))
        loss = 0.5 * (
            info_nce_with_queue(h_e, key_o, self.queue, self.temperature)
            + info_nce_with_queue(h_o, key_e, self.queue, self.temperature)
        )
        keys = np.concatenate([key_e.data, key_o.data], axis=0)
        self._pending_keys = keys / np.maximum(
            np.linalg.norm(keys, axis=1, keepdims=True), 1e-12
        )
        return SSLOutputs(z_e=z_e, z_o=z_o, h_e=h_e, h_o=h_o, loss=loss)

    def post_step(self) -> None:
        self._encoder_ema.update()
        self._projector_ema.update()
        if self._pending_keys is None:
            return
        for key in self._pending_keys[: self.queue_size]:
            self.queue[self._queue_cursor] = key
            self._queue_cursor = (self._queue_cursor + 1) % self.queue_size
        self._pending_keys = None

    def extra_state(self):
        return {
            "queue": self.queue.copy(),
            "queue_cursor": np.array([self._queue_cursor], dtype=np.int64),
        }

    def load_extra_state(self, state) -> None:
        self.queue[...] = state["queue"]
        self._queue_cursor = int(state["queue_cursor"][0])
